"""Checked harnesses: worlds, steps, and safety invariants.

Each harness packages one protocol state machine into the explorer's
interface:

- ``make_world(seed)`` — build the machine plus its drivers on a fresh
  :class:`Simulator`, returning a :class:`World` whose ``chooser`` the
  step consults;
- ``step(world)`` — one bounded burst of activity (choices + simulated
  time);
- ``invariants(world)`` — side-effect-free safety checks, run at every
  explored state;
- ``fingerprint(world)`` — a canonical, hashable abstraction of the
  state for the visited set (absolute sim time is abstracted away where
  the machine's behaviour depends only on relative timers, so revisited
  configurations actually prune);
- ``fault_plan(world)`` — the concrete fault events this path placed,
  exported with counterexamples;
- ``finalize(world)`` — optional end-of-trace (depth-limit leaf)
  checks, e.g. "the transfer completes once the network heals".

Deepcopy rules (checkpointing copies the whole world): callbacks must
be bound methods or callable objects — a lambda is atomic to deepcopy
and would keep pointing at the *original* world.  :class:`SimClock`
exists exactly for this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.choices import Chooser
from repro.core.congestion import RateController
from repro.core.degradation import DegradationController
from repro.core.protocol import MartpReceiver
from repro.core.resilience import BreakerState, CircuitBreaker
from repro.core.traffic import Priority, StreamSpec, TrafficClass
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultEvent, FaultInjector, FaultPlan
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue
from repro.transport.mptcp import MptcpReceiver, MptcpSender
from repro.transport.tcp import TcpConnection


@dataclass
class World:
    """Everything one explored state consists of."""

    sim: Simulator
    chooser: Chooser
    roots: Dict[str, object] = field(default_factory=dict)


class SimClock:
    """Deepcopy-safe ``clock()`` callable bound to a simulator.

    ``lambda: sim.now`` is atomic to deepcopy — a checkpointed breaker
    would keep reading the *original* simulator's clock after restore.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now


class Harness:
    """Interface + defaults; concrete harnesses override the rest."""

    name = ""
    description = ""
    #: invariant label -> docs/PROTOCOL.md section it checks.
    invariant_docs: Dict[str, str] = {}

    def make_world(self, seed: int) -> World:
        raise NotImplementedError

    def step(self, world: World) -> None:
        raise NotImplementedError

    def invariants(self, world: World) -> List[str]:
        raise NotImplementedError

    def fingerprint(self, world: World) -> Tuple:
        raise NotImplementedError

    def fault_plan(self, world: World) -> Optional[FaultPlan]:
        return None

    def finalize(self, world: World) -> Optional[List[str]]:
        """End-of-trace checks at a depth-limit leaf; ``None`` when the
        harness declines to drain this leaf."""
        return None


# ======================================================================
# CircuitBreaker (docs/PROTOCOL.md §8.3 — offload failover guard)
# ======================================================================

@dataclass
class _BreakerModel:
    """Driver-side shadow state for the breaker harness."""

    outstanding: int = 0          # admitted requests not yet completed
    violations: List[str] = field(default_factory=list)
    attempts: int = 0
    denials: int = 0


class BreakerHarness(Harness):
    """``core.resilience.CircuitBreaker`` under every request schedule.

    Invariants (PROTOCOL.md §8.3):

    - *never wedges closed*: CLOSED implies the consecutive-failure
      count is below the threshold (at the threshold it must open);
    - *never wedges open*: once the cooldown has elapsed, the next
      request must be admitted as the half-open probe;
    - *half-open admits exactly one probe*: further requests are denied
      until the probe completes;
    - the adaptive cooldown stays within ``[base, cap]``.

    ``allow_request`` mutates (OPEN -> HALF_OPEN), so admission-legality
    checks run in the driver at call time — ``invariants`` itself stays
    side-effect-free.
    """

    name = "breaker"
    description = "CircuitBreaker admission/transition legality"
    invariant_docs = {
        "wedged-closed": "docs/PROTOCOL.md §8.3 (breaker opens at threshold)",
        "wedged-open": "docs/PROTOCOL.md §8.3 (cooldown elapses -> probe)",
        "probe-budget": "docs/PROTOCOL.md §8.3 (half-open admits one probe)",
        "cooldown-range": "docs/PROTOCOL.md §8.3 (bounded backoff)",
    }

    #: Idle/hold durations the explorer can choose between: a short
    #: tick, most of the cooldown, and past the cooldown cap.
    DT_CHOICES = (0.05, 0.25, 0.9)

    def __init__(self, breaker_cls=CircuitBreaker) -> None:
        self._breaker_cls = breaker_cls

    def make_world(self, seed: int) -> World:
        sim = Simulator(seed=seed)
        breaker = self._breaker_cls(
            clock=SimClock(sim), failure_threshold=2,
            cooldown=0.2, cooldown_factor=2.0, cooldown_cap=0.8,
        )
        return World(sim=sim, chooser=Chooser(),
                     roots={"breaker": breaker, "model": _BreakerModel()})

    def step(self, world: World) -> None:
        sim = world.sim
        breaker: CircuitBreaker = world.roots["breaker"]
        model: _BreakerModel = world.roots["model"]

        actions = []
        if model.outstanding < 2:
            actions.append("attempt")
        actions.append("idle")
        if model.outstanding > 0:
            actions.extend(["complete-success", "complete-failure"])
        action = actions[world.chooser.choose("breaker.action", len(actions))]

        if action == "attempt":
            model.attempts += 1
            state_before = breaker.state
            # The admission predicate, recomputed from observable state
            # with the spec's exact `elapsed >= cooldown` comparison.
            # An epsilon here would be wrong: dt sums can land a few
            # ulps under the cooldown (first thing this harness found),
            # and at that float boundary the spec answer is "deny".
            should_admit = (
                state_before is not BreakerState.OPEN
                or sim.now - breaker._opened_at >= breaker._cooldown
            )
            allowed = breaker.allow_request()
            if state_before is BreakerState.CLOSED and not allowed:
                model.violations.append(
                    "wedged-closed: CLOSED breaker denied a request")
            if state_before is BreakerState.OPEN:
                if should_admit and not allowed:
                    model.violations.append(
                        "wedged-open: cooldown elapsed but the probe "
                        "request was denied")
                if not should_admit and allowed:
                    model.violations.append(
                        f"early-admit: OPEN breaker admitted a request "
                        f"with {breaker.cooldown_remaining:.3f}s cooldown "
                        "remaining")
            if state_before is BreakerState.HALF_OPEN and allowed:
                model.violations.append(
                    "probe-budget: HALF_OPEN admitted a second probe "
                    "while one is outstanding")
            if allowed:
                model.outstanding += 1
            else:
                model.denials += 1
        elif action == "complete-success":
            model.outstanding -= 1
            breaker.record_success()
        elif action == "complete-failure":
            model.outstanding -= 1
            breaker.record_failure()

        dt = self.DT_CHOICES[world.chooser.choose("breaker.dt",
                                                  len(self.DT_CHOICES))]
        sim.run(until=sim.now + dt)

    def invariants(self, world: World) -> List[str]:
        breaker: CircuitBreaker = world.roots["breaker"]
        model: _BreakerModel = world.roots["model"]
        out = list(model.violations)
        if (breaker.state is BreakerState.CLOSED
                and breaker.failures >= breaker.failure_threshold):
            out.append(
                f"wedged-closed: CLOSED with {breaker.failures} consecutive "
                f"failures (threshold {breaker.failure_threshold})")
        if breaker._cooldown > breaker.cooldown_cap + 1e-12:
            out.append(
                f"cooldown-range: cooldown {breaker._cooldown} exceeds cap "
                f"{breaker.cooldown_cap}")
        if breaker._cooldown < breaker.base_cooldown - 1e-12:
            out.append(
                f"cooldown-range: cooldown {breaker._cooldown} fell below "
                f"base {breaker.base_cooldown}")
        if breaker.state is BreakerState.OPEN and breaker._opened_at is None:
            out.append("wedged-open: OPEN with no opened_at timestamp")
        return out

    def fingerprint(self, world: World) -> Tuple:
        breaker: CircuitBreaker = world.roots["breaker"]
        model: _BreakerModel = world.roots["model"]
        # Absolute time is abstracted to the cooldown remainder: breaker
        # behaviour depends only on (state, failures, cooldown,
        # remaining), so recurring configurations prune.
        return (
            breaker.state.name,
            min(breaker.failures, breaker.failure_threshold),
            round(breaker._cooldown, 6),
            round(breaker.cooldown_remaining, 6),
            model.outstanding,
            len(model.violations),
        )

    def fault_plan(self, world: World) -> Optional[FaultPlan]:
        return FaultPlan()        # the schedule *is* the choice trace


# ======================================================================
# DegradationController + MARTP receiver (PROTOCOL.md §4, §6)
# ======================================================================

def _check_streams() -> List[StreamSpec]:
    return [
        StreamSpec(stream_id=0, name="metadata",
                   traffic_class=TrafficClass.CRITICAL,
                   priority=Priority.HIGHEST,
                   nominal_rate_bps=200_000.0, min_rate_bps=100_000.0,
                   message_bytes=200, deadline=1.0),
        StreamSpec(stream_id=1, name="reference",
                   traffic_class=TrafficClass.LOSS_RECOVERY,
                   priority=Priority.MEDIUM_NO_DISCARD,
                   nominal_rate_bps=1_200_000.0, min_rate_bps=300_000.0,
                   message_bytes=1200, adjustable=True, deadline=0.1),
        StreamSpec(stream_id=2, name="interframes",
                   traffic_class=TrafficClass.FULL_BEST_EFFORT,
                   priority=Priority.LOWEST,
                   nominal_rate_bps=1_000_000.0, min_rate_bps=200_000.0,
                   message_bytes=1200, deadline=0.075),
    ]


@dataclass
class _DegradationModel:
    """Driver-side shadow state for the degradation harness."""

    delivered: Dict[Tuple[int, int], int] = field(default_factory=dict)
    ordered_log: List[int] = field(default_factory=list)
    next_seq: Dict[int, int] = field(default_factory=dict)
    last_quality: Optional[Tuple[float, ...]] = None
    heavy_streak: int = 0
    clean_streak: int = 0
    violations: List[str] = field(default_factory=list)

    def on_message(self, stream_id: int, seq: int, latency: float) -> None:
        key = (stream_id, seq)
        self.delivered[key] = self.delivered.get(key, 0) + 1
        if stream_id == 0:
            self.ordered_log.append(seq)


class DegradationHarness(Harness):
    """Degradation ladder + receiver dedup under loss/recovery schedules.

    Invariants (PROTOCOL.md §4 allocation, §6 delivery):

    - non-discardable floors are always funded, congested or not;
    - per-stream quality is monotonically non-increasing while
      congestion is sustained (>= 2 consecutive heavy rounds);
    - after ``REPROMOTE_ROUNDS`` clean rounds every stream is back at
      full quality (recovery re-promotes — bounded liveness checked as
      safety);
    - no (stream, seq) message is delivered to the application twice,
      including stale duplicates older than the receiver's NACK-window
      prune floor;
    - the ordered (CRITICAL) stream is delivered in seq order.
    """

    name = "degradation"
    description = "degradation ladder monotonicity + receiver dedup"
    invariant_docs = {
        "floor-funding": "docs/PROTOCOL.md §4 (floors are hard guarantees)",
        "quality-monotonic": "docs/PROTOCOL.md §4 (degradation order)",
        "re-promotion": "docs/PROTOCOL.md §4 (recovery restores quality)",
        "no-double-delivery": "docs/PROTOCOL.md §6 (at-most-once delivery)",
        "ordered-delivery": "docs/PROTOCOL.md §6 (CRITICAL is in-order)",
    }

    #: Clean rounds after which full quality must be restored.
    REPROMOTE_ROUNDS = 8
    STEP_DT = 0.15
    BURST = 300                   # seqs to jump so pruning engages

    def make_world(self, seed: int) -> World:
        sim = Simulator(seed=seed)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 10e6, 10e6, delay=0.01)
        net.build_routes()
        streams = _check_streams()
        model = _DegradationModel(next_seq={0: 0, 2: 0})
        receiver = MartpReceiver(net["server"], 7000, streams,
                                 on_message=model.on_message)
        rate = RateController(initial_bps=2.4e6, min_bps=64_000.0)
        controller = DegradationController(streams)
        return World(sim=sim, chooser=Chooser(), roots={
            "net": net, "receiver": receiver, "rate": rate,
            "controller": controller, "model": model,
            "streams": streams,
        })

    # ------------------------------------------------------------------
    def _packet(self, world: World, stream_id: int, seq: int) -> Packet:
        sim = world.sim
        return Packet(
            src="client", dst="server", src_port=6000, dst_port=7000,
            size=528, kind="martp-data", flow="martp:check",
            payload={
                "stream": stream_id, "seq": seq, "created": sim.now,
                "msg_deadline": 1.0, "parity": False, "retransmit": False,
                "ts": sim.now, "path": "wifi",
            },
            created_at=sim.now,
        )

    def step(self, world: World) -> None:
        sim = world.sim
        rate: RateController = world.roots["rate"]
        controller: DegradationController = world.roots["controller"]
        receiver: MartpReceiver = world.roots["receiver"]
        model: _DegradationModel = world.roots["model"]
        now = sim.now

        regime = world.chooser.choose("deg.regime", 3)
        if regime == 0:           # clear air
            rate.on_loss(0.0, now)
            rate.on_rtt_sample(0.02, now)
            model.clean_streak += 1
            model.heavy_streak = 0
        elif regime == 1:         # mild wireless loss, no queuing
            rate.on_loss(0.05, now)
            rate.on_rtt_sample(0.022, now)
            model.clean_streak = 0
            model.heavy_streak = 0
        else:                     # sustained congestion
            rate.on_loss(0.3, now)
            rate.on_rtt_sample(0.08, now)
            model.clean_streak = 0
            model.heavy_streak += 1
        allocation = controller.allocate(rate.budget_bps, now)
        quality = tuple(allocation.quality[s.stream_id]
                        for s in world.roots["streams"])
        self._note_quality(world, allocation, quality)

        delivery = world.chooser.choose("deg.rx", 5)
        if delivery == 0:         # in-order delivery on both checked streams
            for stream_id in (0, 2):
                receiver._on_packet(
                    self._packet(world, stream_id, model.next_seq[stream_id]))
                model.next_seq[stream_id] += 1
        elif delivery == 1:       # gap: skip one seq on the ordered stream
            model.next_seq[0] += 1
            receiver._on_packet(self._packet(world, 0, model.next_seq[0]))
            model.next_seq[0] += 1
        elif delivery == 2:       # burst: drive the best-effort stream
            base = model.next_seq[2]            # across its prune window
            for seq in range(base, base + self.BURST):
                receiver._on_packet(self._packet(world, 2, seq))
            model.next_seq[2] = base + self.BURST
        elif delivery == 3:       # stale duplicate (below any prune floor)
            if model.next_seq[2] > 0:
                receiver._on_packet(self._packet(world, 2, 0))
        else:                     # recent duplicate
            if model.next_seq[2] > 0:
                receiver._on_packet(
                    self._packet(world, 2, model.next_seq[2] - 1))

        sim.run(until=now + self.STEP_DT)

    def _note_quality(self, world: World, allocation, quality) -> None:
        model: _DegradationModel = world.roots["model"]
        streams: List[StreamSpec] = world.roots["streams"]
        for spec in streams:
            if not spec.priority.may_discard:
                if allocation.rates_bps[spec.stream_id] < spec.min_rate_bps - 1e-9:
                    model.violations.append(
                        f"floor-funding: stream {spec.stream_id} got "
                        f"{allocation.rates_bps[spec.stream_id]:.0f} bps, "
                        f"floor {spec.min_rate_bps:.0f}")
        if model.heavy_streak >= 2 and model.last_quality is not None:
            for spec, q_now, q_prev in zip(streams, quality, model.last_quality):
                if q_now > q_prev + 1e-9:
                    model.violations.append(
                        f"quality-monotonic: stream {spec.stream_id} rose "
                        f"{q_prev:.4f} -> {q_now:.4f} under sustained "
                        "congestion")
        if model.clean_streak >= self.REPROMOTE_ROUNDS:
            for spec, q_now in zip(streams, quality):
                if q_now < 1.0 - 1e-9:
                    model.violations.append(
                        f"re-promotion: stream {spec.stream_id} stuck at "
                        f"quality {q_now:.4f} after {model.clean_streak} "
                        "clean rounds")
        model.last_quality = quality

    def invariants(self, world: World) -> List[str]:
        model: _DegradationModel = world.roots["model"]
        out = list(model.violations)
        for (stream_id, seq), count in sorted(model.delivered.items()):
            if count > 1:
                out.append(
                    f"no-double-delivery: ({stream_id}, {seq}) delivered "
                    f"{count} times")
        for prev, cur in zip(model.ordered_log, model.ordered_log[1:]):
            if cur <= prev:
                out.append(
                    f"ordered-delivery: stream 0 delivered seq {cur} after "
                    f"{prev}")
        return out

    def fingerprint(self, world: World) -> Tuple:
        rate: RateController = world.roots["rate"]
        receiver: MartpReceiver = world.roots["receiver"]
        model: _DegradationModel = world.roots["model"]
        rx0 = receiver.stream_stats(0)
        rx2 = receiver.stream_stats(2)
        return (
            round(rate.budget_bps, 3),
            model.last_quality,
            model.heavy_streak,
            min(model.clean_streak, self.REPROMOTE_ROUNDS),
            tuple(sorted(model.next_seq.items())),
            (rx0.received, rx0.cum_ack, len(model.ordered_log)),
            (rx2.received, rx2.duplicates, rx2.prune_floor),
        )

    def fault_plan(self, world: World) -> Optional[FaultPlan]:
        return FaultPlan()        # loss regimes ride in the choice trace


# ======================================================================
# MPTCP handover (PROTOCOL.md §5, §8 — multipath data plane)
# ======================================================================

@dataclass
class _MptcpModel:
    """Driver-side shadow state for the handover harness."""

    #: Sized so the transfer spans the whole explored horizon on the
    #: harness's slow links — a transfer that completes inside the
    #: first step would make every later action a no-op and collapse
    #: the tree.
    total_bytes: int = 400_000
    fault_events: List[FaultEvent] = field(default_factory=list)


class MptcpHandoverHarness(Harness):
    """MPTCP subflow migration under failovers, faults and reorderings.

    Invariants (PROTOCOL.md §5, §8):

    - no duplicate delivery counted as new data:
      ``bytes_delivered_unique`` never exceeds the bytes sent, and raw
      delivery always splits exactly into unique + duplicate;
    - no reordering escapes reassembly: the in-order contiguous prefix
      never exceeds the unique total;
    - no data loss across migration: once the trace ends with a usable
      subflow, draining the network delivers every byte exactly once
      (checked at depth-limit leaves).
    """

    name = "mptcp"
    description = "MPTCP handover: loss/dup/reorder across migration"
    invariant_docs = {
        "no-duplicate-delivery": "docs/PROTOCOL.md §5 (DSN reassembly)",
        "delivery-conservation": "docs/PROTOCOL.md §5 (DSN reassembly)",
        "no-data-loss": "docs/PROTOCOL.md §8 (handover re-injection)",
    }

    STEP_DT = 0.25
    MAX_TIE_DECISIONS = 2         # explored scheduler ties per step
    MAX_DRAINS = 40               # full leaf drains per exploration

    def __init__(self) -> None:
        self._drains = 0

    def make_world(self, seed: int) -> World:
        self._drains = 0
        sim = Simulator(seed=seed)
        net = Network(sim)
        net.add_host("client-wifi")
        net.add_host("client-lte")
        net.add_host("server")
        net.add_duplex("server", "client-wifi", 10e6, 2e6, delay=0.01,
                       queue_up=DropTailQueue(64))
        net.add_duplex("server", "client-lte", 10e6, 1e6, delay=0.03,
                       queue_up=DropTailQueue(64))
        net.build_routes()
        receiver = MptcpReceiver(net["server"], [80, 81])
        subflows = [
            TcpConnection(net["client-wifi"], 5000, "server", 80),
            TcpConnection(net["client-lte"], 5001, "server", 81),
        ]
        sender = MptcpSender(subflows)
        receiver.attach_sender(sender)
        model = _MptcpModel()
        injector = FaultInjector(net)
        sender.connect()
        sender.send(model.total_bytes)
        return World(sim=sim, chooser=Chooser(), roots={
            "net": net, "sender": sender, "receiver": receiver,
            "injector": injector, "model": model,
        })

    def _wifi_links(self, net: Network) -> List[str]:
        return [link.name for link in net.path_links("client-wifi", "server")]

    def _lte_links(self, net: Network) -> List[str]:
        return [link.name for link in net.path_links("client-lte", "server")]

    def step(self, world: World) -> None:
        sim = world.sim
        net: Network = world.roots["net"]
        sender: MptcpSender = world.roots["sender"]
        injector: FaultInjector = world.roots["injector"]
        model: _MptcpModel = world.roots["model"]

        action = world.chooser.choose("mptcp.action", 5)
        if action == 1:
            sender.set_alive(0, not sender._alive[0])
        elif action == 2:
            sender.set_alive(1, not sender._alive[1])
        elif action in (3, 4):
            links = (self._wifi_links(net) if action == 3
                     else self._lte_links(net))
            event = FaultEvent.blackout(sim.now, 0.3, links)
            injector.schedule(event)
            model.fault_events.append(event)

        # Advance one step interval, exploring same-timestamp orderings
        # for the first MAX_TIE_DECISIONS ties (engine order beyond).
        target = sim.now + self.STEP_DT
        tie_decisions = 0
        while True:
            ties = sim.pending_ties()
            if not ties or ties[0].time > target:
                break
            if len(ties) > 1 and tie_decisions < self.MAX_TIE_DECISIONS:
                pick = world.chooser.choose("mptcp.sched", min(len(ties), 3))
                tie_decisions += 1
                sim.fire_event(ties[pick])
            else:
                sim.fire_event(ties[0])
        if target > sim.now:
            sim.run(until=target)

    def invariants(self, world: World) -> List[str]:
        sender: MptcpSender = world.roots["sender"]
        receiver: MptcpReceiver = world.roots["receiver"]
        model: _MptcpModel = world.roots["model"]
        out: List[str] = []
        if receiver.bytes_delivered_unique > model.total_bytes:
            out.append(
                f"no-duplicate-delivery: {receiver.bytes_delivered_unique} "
                f"unique bytes delivered of {model.total_bytes} sent")
        if receiver.bytes_received != (receiver.bytes_delivered_unique
                                       + receiver.duplicate_bytes):
            out.append(
                f"delivery-conservation: raw {receiver.bytes_received} != "
                f"unique {receiver.bytes_delivered_unique} + duplicates "
                f"{receiver.duplicate_bytes}")
        if receiver.bytes_contiguous > receiver.bytes_delivered_unique:
            out.append(
                f"delivery-conservation: contiguous prefix "
                f"{receiver.bytes_contiguous} exceeds unique total "
                f"{receiver.bytes_delivered_unique}")
        if sender._pending_bytes < 0:
            out.append(f"delivery-conservation: negative pending byte count "
                       f"{sender._pending_bytes}")
        return out

    def fingerprint(self, world: World) -> Tuple:
        sender: MptcpSender = world.roots["sender"]
        receiver: MptcpReceiver = world.roots["receiver"]
        # Congestion state and in-flight data are part of the state:
        # collapsing them would prune branches whose future behaviour
        # (retransmits, window growth) genuinely differs.
        subflow_state = tuple(
            (s.state, s.snd_una, s.snd_nxt, s.app_bytes,
             round(s.cwnd, 3), s.bytes_in_flight,
             round(s.srtt, 6) if s.srtt is not None else None)
            for s in sender.subflows
        )
        return (
            subflow_state,
            tuple(sorted(sender._alive.items())),
            sender._pending_bytes,
            receiver.bytes_delivered_unique,
            receiver.duplicate_bytes,
            receiver.bytes_contiguous,
            len(world.roots["model"].fault_events),
        )

    def fault_plan(self, world: World) -> Optional[FaultPlan]:
        model: _MptcpModel = world.roots["model"]
        return FaultPlan(list(model.fault_events))

    def finalize(self, world: World) -> Optional[List[str]]:
        sender: MptcpSender = world.roots["sender"]
        receiver: MptcpReceiver = world.roots["receiver"]
        model: _MptcpModel = world.roots["model"]
        if not any(sender._alive.values()):
            return None           # nothing left to carry the data
        if self._drains >= self.MAX_DRAINS:
            return None
        self._drains += 1
        sim = world.sim
        sim.run(until=sim.now + 30.0)
        out: List[str] = []
        if receiver.bytes_delivered_unique != model.total_bytes:
            out.append(
                f"no-data-loss: drained to "
                f"{receiver.bytes_delivered_unique} unique bytes of "
                f"{model.total_bytes} sent")
        if receiver.bytes_contiguous != model.total_bytes:
            out.append(
                f"no-data-loss: in-order prefix stalled at "
                f"{receiver.bytes_contiguous} of {model.total_bytes}")
        out.extend(self.invariants(world))
        return out


# ======================================================================
# Seeded violation (CI self-check)
# ======================================================================

class _LeakyBreaker(CircuitBreaker):
    """Deliberately buggy: HALF_OPEN admits unlimited probes.

    Exists so CI can verify the whole pipeline end to end — the
    explorer must find the violation, export a counterexample, and the
    normal-engine replay must reproduce it byte-identically.
    """

    def allow_request(self) -> bool:
        if self.state is BreakerState.HALF_OPEN:
            return True           # BUG: the probe budget is ignored
        return super().allow_request()


class SeededViolationHarness(BreakerHarness):
    """Breaker harness over :class:`_LeakyBreaker` — must always fail."""

    name = "selfcheck"
    description = "seeded probe-budget bug (pipeline self-check)"

    def __init__(self) -> None:
        super().__init__(breaker_cls=_LeakyBreaker)


#: The checked harnesses, in CLI order.  ``selfcheck`` is deliberately
#: excluded from "all": it exists to prove the pipeline catches bugs.
HARNESSES: Dict[str, type] = {
    "breaker": BreakerHarness,
    "degradation": DegradationHarness,
    "mptcp": MptcpHandoverHarness,
    "selfcheck": SeededViolationHarness,
}

DEFAULT_HARNESSES = ("breaker", "degradation", "mptcp")
