"""Counterexamples: serialization, replay, and obs-trace export.

A violation found by the explorer is only useful if it can be
reproduced *outside* the explorer.  A :class:`Counterexample` therefore
carries everything a fresh process needs: the harness name, the seed,
the per-step choice scripts, and the materialized :class:`FaultPlan`
(for harnesses that place faults).  :func:`replay_counterexample`
rebuilds the world from the seed in the normal engine, replays the
scripts linearly with a strict :class:`ReplayController` (no
checkpoints, no search), and compares the resulting canonical state
byte-for-byte against the recorded one — the determinism gate's
``(scenario, seed)``-purity is what makes this equality meaningful.

Replay also emits one obs span per step (choice picks as attributes)
so the failure can be opened in Perfetto or a qlog viewer for triage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.check.choices import ReplayController
from repro.obs.export import chrome_trace_json, qlog_lines, validate_chrome_trace
from repro.obs.spans import Tracer

#: Format marker for counterexample artifacts.
COUNTEREXAMPLE_VERSION = 1


def state_digest(fingerprint: Any) -> str:
    """Stable content hash of a harness's canonical state tuple."""
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()


@dataclass
class Counterexample:
    """A replayable witness of an invariant violation."""

    harness: str
    seed: int
    #: Per-step pick scripts: ``trace[k]`` steers every decision inside
    #: harness step ``k``.
    trace: List[List[int]]
    violations: List[str]
    #: ``repr`` of the violating state's canonical fingerprint — the
    #: byte string replay must reproduce exactly.
    state: str
    digest: str
    #: Materialized fault schedule (``FaultPlan.to_dict()``), when the
    #: harness places faults; replayable on its own in the normal engine.
    fault_plan: Optional[dict] = None
    version: int = COUNTEREXAMPLE_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "harness": self.harness,
            "seed": self.seed,
            "trace": [list(step) for step in self.trace],
            "violations": list(self.violations),
            "state": self.state,
            "digest": self.digest,
            "fault_plan": self.fault_plan,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        return cls(
            harness=data["harness"],
            seed=data["seed"],
            trace=[list(step) for step in data["trace"]],
            violations=list(data["violations"]),
            state=data["state"],
            digest=data["digest"],
            fault_plan=data.get("fault_plan"),
            version=data.get("version", COUNTEREXAMPLE_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        return cls.from_dict(json.loads(text))


@dataclass
class ReplayResult:
    """Outcome of re-running a counterexample in the normal engine."""

    counterexample: Counterexample
    violations: List[str]
    state: str
    digest: str
    #: Annotated decision log per step: (tag, arity, picked).
    choice_log: List[List[tuple]] = field(default_factory=list)
    tracer: Optional[Tracer] = None

    @property
    def reproduced(self) -> bool:
        """Replay reached the same violation in the same state,
        byte-identically."""
        return bool(self.violations) and self.state == self.counterexample.state

    def chrome_trace(self) -> dict:
        text = chrome_trace_json(self.tracer)
        problems = validate_chrome_trace(text)
        if problems:
            raise ValueError("invalid chrome trace: " + "; ".join(problems))
        return json.loads(text)

    def qlog(self) -> str:
        """Newline-delimited qlog records, one JSON object per line."""
        return qlog_lines(tracer=self.tracer)


def replay_counterexample(counterexample: Counterexample,
                          harness) -> ReplayResult:
    """Deterministically re-run a counterexample, linearly.

    No checkpoints, no branching: the world is rebuilt from the seed
    and each recorded step script is replayed with a strict controller
    that raises :class:`~repro.check.choices.ReplayDivergence` on any
    mismatch.  Returns the final invariant verdict, the canonical state
    (compare to ``counterexample.state`` for byte-identity), and an obs
    tracer holding one span per replayed step.
    """
    if harness.name != counterexample.harness:
        raise ValueError(
            f"counterexample is for harness {counterexample.harness!r}, "
            f"got {harness.name!r}")
    world = harness.make_world(counterexample.seed)
    tracer = Tracer(world.sim)
    root_span = tracer.start_span(
        f"check:{harness.name}", cat="check",
        seed=counterexample.seed, steps=len(counterexample.trace))
    choice_log: List[List[tuple]] = []
    violations = harness.invariants(world)
    if not violations:
        for step_index, picks in enumerate(counterexample.trace):
            controller = ReplayController(picks)
            world.chooser.controller = controller
            span = tracer.start_span(
                f"step:{step_index}", cat="check", parent=root_span,
                picks=",".join(str(p) for p in picks))
            harness.step(world)
            tracer.finish(
                span,
                choices=";".join(f"{tag}[{arity}]={picked}"
                                 for tag, arity, picked in controller.log))
            world.chooser.controller = None
            choice_log.append(list(controller.log))
        violations = harness.invariants(world)
        if not violations:
            leaf = harness.finalize(world)
            if leaf:
                violations = leaf
    fingerprint = harness.fingerprint(world)
    tracer.finish(root_span, violations="; ".join(violations))
    return ReplayResult(
        counterexample=counterexample,
        violations=violations,
        state=repr(fingerprint),
        digest=state_digest(fingerprint),
        choice_log=choice_log,
        tracer=tracer,
    )
