"""``python -m repro check`` — run the bounded explorer from the CLI.

Exit codes:

- 0: all requested harnesses explored clean (and ``--min-states`` met);
  with ``--selfcheck``, the seeded violation was found AND its
  normal-engine replay reproduced it byte-identically with valid
  Perfetto/qlog exports;
- 1: an invariant violation was found (counterexample artifacts are
  written to ``--out``), or a self-check expectation failed;
- 3: the exploration came in under ``--min-states`` (coverage
  regression) — the CI gate for "the small budget still explores
  >= 10^4 states".

This file is deliberately harness-domain (wall-clock states/sec); the
explorer itself is sim-domain and never reads a clock.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List

from repro.check.explorer import Budget, ExploreResult, explore
from repro.check.harnesses import DEFAULT_HARNESSES, HARNESSES
from repro.check.invariants import replay_counterexample

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / \
    "benchmarks" / "results" / "check"

#: Per-harness budgets.  "small" is the CI gate: together the three
#: default harnesses must clear 10^4 explored states in a couple of
#: minutes.  "full" digs deeper for local soak runs.
BUDGETS: Dict[str, Dict[str, Budget]] = {
    "small": {
        "breaker": Budget(max_states=4_500, max_depth=14, max_branch=48),
        "degradation": Budget(max_states=6_000, max_depth=9, max_branch=32),
        "mptcp": Budget(max_states=5_000, max_depth=8, max_branch=32),
        "selfcheck": Budget(max_states=4_500, max_depth=14, max_branch=48),
    },
    "full": {
        "breaker": Budget(max_states=20_000, max_depth=20, max_branch=64),
        "degradation": Budget(max_states=25_000, max_depth=12, max_branch=48),
        "mptcp": Budget(max_states=20_000, max_depth=10, max_branch=48),
        "selfcheck": Budget(max_states=20_000, max_depth=20, max_branch=64),
    },
}


def configure_parser(parser) -> None:
    parser.add_argument(
        "--harness", default="all",
        choices=["all", *sorted(HARNESSES)],
        help="harness to explore (default: all three checked harnesses; "
             "'selfcheck' is the seeded-violation pipeline test)")
    parser.add_argument(
        "--budget", default="small", choices=sorted(BUDGETS),
        help="exploration budget preset (default: small — the CI gate)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for harness worlds (default: 0)")
    parser.add_argument(
        "--out", default=None,
        help=f"artifact directory (default: {RESULTS_DIR})")
    parser.add_argument(
        "--min-states", type=int, default=0,
        help="fail (exit 3) when fewer total states were explored")
    parser.add_argument(
        "--selfcheck", action="store_true",
        help="run the seeded-violation harness and verify the full "
             "find -> export -> replay -> obs-trace pipeline")


def _write_artifacts(out_dir: pathlib.Path, harness, result: ExploreResult):
    """Write counterexample + replay artifacts; return replay results."""
    replays = []
    out_dir.mkdir(parents=True, exist_ok=True)
    for index, cex in enumerate(result.violations):
        stem = f"counterexample-{result.harness}-{index}"
        (out_dir / f"{stem}.json").write_text(cex.to_json() + "\n")
        replay = replay_counterexample(cex, harness)
        replays.append(replay)
        chrome = replay.chrome_trace()
        (out_dir / f"{stem}.trace.json").write_text(
            json.dumps(chrome, indent=2, sort_keys=True) + "\n")
        (out_dir / f"{stem}.qlog").write_text(replay.qlog() + "\n")
    return replays


def _print_result(result: ExploreResult, elapsed: float) -> None:
    rate = result.states / elapsed if elapsed > 0 else 0.0
    status = "FAIL" if result.violations else "ok"
    print(f"  {result.harness:<12} {status:<5} states={result.states:<6} "
          f"unique={result.unique_states:<6} pruned={result.pruned_visited:<5} "
          f"depth-hits={result.depth_limit_hits:<5} "
          f"truncated={result.truncated_branches:<4} "
          f"drained={result.finalized_leaves:<3} "
          f"({rate:,.0f} states/s)")
    for cex in result.violations:
        for message in cex.violations:
            print(f"      violation: {message}")


def run(args) -> int:
    out_dir = pathlib.Path(args.out) if args.out else RESULTS_DIR
    if args.selfcheck:
        names = ["selfcheck"]
    elif args.harness == "all":
        names = list(DEFAULT_HARNESSES)
    else:
        names = [args.harness]

    total_states = 0
    failed = False
    summaries: List[dict] = []
    print(f"repro check: budget={args.budget} seed={args.seed}")
    for name in names:
        harness = HARNESSES[name]()
        budget = BUDGETS[args.budget][name]
        t0 = time.perf_counter()
        result = explore(harness, args.seed, budget)
        elapsed = time.perf_counter() - t0
        total_states += result.states
        _print_result(result, elapsed)
        replays = _write_artifacts(out_dir, harness, result) \
            if result.violations else []
        summaries.append({
            **result.to_dict(),
            "elapsed_s": elapsed,
            "replays_reproduced": [r.reproduced for r in replays],
        })
        if name == "selfcheck" or args.selfcheck:
            if not result.violations:
                print("  selfcheck FAILED: seeded violation was not found")
                failed = True
            elif not all(r.reproduced for r in replays):
                print("  selfcheck FAILED: replay did not reproduce the "
                      "violation byte-identically")
                failed = True
            else:
                print(f"  selfcheck: counterexample found, replay "
                      f"reproduced byte-identically "
                      f"(digest {result.violations[0].digest[:16]}...), "
                      f"obs trace valid -> {out_dir}")
        elif result.violations:
            failed = True
            reproduced = all(r.reproduced for r in replays)
            print(f"      counterexample(s) written to {out_dir} "
                  f"(replay reproduced: {reproduced})")

    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "summary.json").write_text(
        json.dumps({"budget": args.budget, "seed": args.seed,
                    "total_states": total_states,
                    "harnesses": summaries}, indent=2, sort_keys=True) + "\n")
    print(f"  total: {total_states} states explored "
          f"-> {out_dir / 'summary.json'}")

    if failed:
        return 1
    if args.min_states and total_states < args.min_states:
        print(f"repro check: coverage regression — {total_states} states "
              f"< --min-states {args.min_states}")
        return 3
    return 0
