"""Choice oracles: how the explorer steers a simulation run.

A harness world carries one :class:`Chooser`.  Wherever the harness (or
instrumented model code) faces a nondeterministic decision — which of
several same-timestamp events fires first, whether a fault lands now,
which delivery outcome a packet gets — it calls
``chooser.choose(tag, arity)`` and branches on the returned index.

The chooser itself holds no policy.  It delegates to a pluggable
*controller*:

- ``None`` (default): always pick 0 — the engine's native order.  A
  world running outside the explorer behaves exactly like the normal
  simulator.
- :class:`ScriptController`: replay a scripted prefix of picks, default
  to 0 beyond it, and *record* every decision (tag, arity, picked).
  The explorer uses the recording to enumerate sibling branches.
- :class:`ReplayController`: strictly follow a recorded script during
  counterexample replay, flagging divergence instead of guessing.

Deepcopy contract: checkpointing deep-copies the whole world, chooser
included.  The controller is deliberately *excluded* from the copy
(``Chooser.__deepcopy__``) — a restored world starts neutral and the
explorer installs the controller for the branch it is about to run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: One recorded decision: (tag, arity, picked).
ChoiceRecord = Tuple[str, int, int]


class ChoiceError(ValueError):
    """A script pick that does not fit the arity offered at runtime."""


class ReplayDivergence(RuntimeError):
    """A counterexample replay made different choices than recorded."""


class Chooser:
    """The world's decision point, steered by a pluggable controller."""

    def __init__(self) -> None:
        self.controller = None

    def choose(self, tag: str, arity: int) -> int:
        """Pick one of ``arity`` alternatives for decision ``tag``.

        ``arity <= 1`` is not a decision and is never recorded — guard
        arms that collapse to a single alternative stay invisible to
        the explorer instead of bloating every script.
        """
        if arity <= 1:
            return 0
        if self.controller is None:
            return 0
        return self.controller.choose(tag, arity)

    def __deepcopy__(self, memo):
        clone = Chooser()
        memo[id(self)] = clone
        return clone


class ScriptController:
    """Replay a scripted pick prefix, defaulting to 0 beyond it.

    Every decision is logged; :meth:`sibling_scripts` turns the
    defaulted tail into the scripts of the unexplored sibling branches
    (``picks[:i] + [v]`` for each defaulted position ``i`` and each
    alternative ``v >= 1``).
    """

    def __init__(self, script: List[int]) -> None:
        self.script = list(script)
        self.log: List[ChoiceRecord] = []

    def choose(self, tag: str, arity: int) -> int:
        position = len(self.log)
        if position < len(self.script):
            picked = self.script[position]
            if not 0 <= picked < arity:
                raise ChoiceError(
                    f"script pick {picked} at position {position} ({tag}) "
                    f"out of range for arity {arity}")
        else:
            picked = 0
        self.log.append((tag, arity, picked))
        return picked

    @property
    def picks(self) -> List[int]:
        return [picked for _, _, picked in self.log]

    def sibling_scripts(self) -> List[List[int]]:
        picks = self.picks
        out: List[List[int]] = []
        for i in range(len(self.script), len(self.log)):
            _tag, arity, _picked = self.log[i]
            for alternative in range(1, arity):
                out.append(picks[:i] + [alternative])
        return out


class ReplayController:
    """Strictly follow a recorded script; raise on any mismatch.

    Counterexample replay must reproduce the recorded run exactly — a
    silent fallback to defaults would mask a broken artifact, so
    exhausting the script mid-step or meeting a different arity raises
    :class:`ReplayDivergence`.
    """

    def __init__(self, script: List[int],
                 expected_log: Optional[List[ChoiceRecord]] = None) -> None:
        self.script = list(script)
        self.expected_log = list(expected_log) if expected_log else None
        self.log: List[ChoiceRecord] = []

    def choose(self, tag: str, arity: int) -> int:
        position = len(self.log)
        if position >= len(self.script):
            raise ReplayDivergence(
                f"replay made more choices than recorded: extra decision "
                f"{tag!r} (arity {arity}) at position {position}")
        picked = self.script[position]
        if not 0 <= picked < arity:
            raise ReplayDivergence(
                f"recorded pick {picked} at position {position} ({tag}) "
                f"does not fit replayed arity {arity}")
        if self.expected_log is not None:
            exp_tag, exp_arity, exp_picked = self.expected_log[position]
            if (exp_tag, exp_arity, exp_picked) != (tag, arity, picked):
                raise ReplayDivergence(
                    f"decision #{position} diverged: recorded "
                    f"({exp_tag!r}, {exp_arity}, {exp_picked}), replayed "
                    f"({tag!r}, {arity}, {picked})")
        self.log.append((tag, arity, picked))
        return picked

    @property
    def exhausted(self) -> bool:
        return len(self.log) == len(self.script)
