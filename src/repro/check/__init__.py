"""repro.check — bounded state-space exploration for protocol machines.

ROADMAP item 5: the determinism gate (PR 4) makes every interleaving of
the simulation replayable from ``(scenario, seed)``; this package
exploits that to *enumerate* interleavings instead of sampling them.
An explorer forks execution at declared decision points (same-timestamp
event orderings, fault placements, loss/timeout outcomes), checks
safety invariants at every explored state, and exports any violation as
a replayable counterexample — a choice trace plus ``FaultPlan`` + seed
that reproduces the failure in the normal engine, with a Perfetto/qlog
obs trace for triage.

See ``docs/CHECKING.md`` for the exploration model and
``python -m repro check --help`` for the CLI.
"""

from repro.check.choices import (
    ChoiceError,
    Chooser,
    ReplayController,
    ReplayDivergence,
    ScriptController,
)
from repro.check.explorer import Budget, ExploreResult, explore
from repro.check.harnesses import HARNESSES, World
from repro.check.invariants import Counterexample, ReplayResult, replay_counterexample

__all__ = [
    "Budget",
    "ChoiceError",
    "Chooser",
    "Counterexample",
    "ExploreResult",
    "HARNESSES",
    "ReplayController",
    "ReplayDivergence",
    "ReplayResult",
    "ScriptController",
    "World",
    "explore",
    "replay_counterexample",
]
