"""Integration: smart glasses offloading through a companion smartphone.

Table I gives smart glasses *Bluetooth only* network access — the paper
notes "a smartphone may work as a companion device to a pair of smart
glasses".  The glasses reach the world exclusively through the phone:

    glasses --Bluetooth--> phone --WiFi--> cloud

These tests verify the relay topology end-to-end: the Bluetooth leg is
the bandwidth bottleneck (full-frame offload can't fit; feature offload
can), while the latency overhead of the extra hop is modest.
"""


from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import CLOUD, SMART_GLASSES
from repro.mar.offload import FeatureOffload, FullOffload, OffloadExecutor
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.wireless.profiles import BLUETOOTH, WIFI_HOME

ORIENTATION = APP_ARCHETYPES["orientation"]
GAMING = APP_ARCHETYPES["gaming"]


def glasses_topology(seed=71):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("glasses")
    net.add_host("phone")
    net.add_host("cloud")
    BLUETOOTH.build_duplex(net, "phone", "glasses", static=True,
                           uplink_buffer_packets=100)
    WIFI_HOME.build_duplex(net, "cloud", "phone", static=True)
    net.build_routes()
    return sim, net


def test_glasses_reach_cloud_through_phone():
    sim, net = glasses_topology()
    links = net.path_links("glasses", "cloud")
    assert [l.dst.name for l in links] == ["phone", "cloud"]


def test_bluetooth_is_the_bottleneck():
    sim, net = glasses_topology()
    assert net.bottleneck_rate("glasses", "cloud") == BLUETOOTH.up_mean


def test_feature_offload_fits_bluetooth_full_does_not():
    # Offered uplink rates vs the ~1.8 Mb/s Bluetooth ceiling.
    assert ORIENTATION.feature_uplink_bps < BLUETOOTH.up_mean
    assert ORIENTATION.uplink_bps > BLUETOOTH.up_mean


def test_feature_offload_session_over_relay():
    sim, net = glasses_topology()
    executor = OffloadExecutor(net, "glasses", "cloud", ORIENTATION,
                               FeatureOffload(), SMART_GLASSES,
                               server_device=CLOUD)
    result = executor.run(n_frames=120)
    # Bluetooth's ~1 % packet loss costs whole frames under naive UDP
    # fragmentation (no recovery): ~5-15 % frame loss is the honest
    # price of skipping a reliability layer on this leg.
    assert result.loss_rate < 0.15
    # Two-hop RTT: Bluetooth (~30 ms) + home WiFi (~4 ms) legs.
    assert 0.025 < result.mean_link_rtt < 0.06
    assert result.frames_completed > 100


def test_full_offload_over_relay_saturates_bluetooth():
    sim, net = glasses_topology()
    executor = OffloadExecutor(net, "glasses", "cloud", GAMING,
                               FullOffload(), SMART_GLASSES,
                               server_device=CLOUD)
    result = executor.run(n_frames=120)
    # The gaming full-frame stream (~8 Mb/s) cannot fit 1.8 Mb/s: frames
    # queue up and blow their deadline wholesale.
    assert result.deadline_hit_rate < 0.2
    # For the lighter orientation app, full offload still saturates the
    # Bluetooth leg while feature offload fits inside it.
    sim2, net2 = glasses_topology()
    full_exec = OffloadExecutor(net2, "glasses", "cloud", ORIENTATION,
                                FullOffload(), SMART_GLASSES,
                                server_device=CLOUD)
    full_result = full_exec.run(n_frames=120)
    sim3, net3 = glasses_topology()
    feature_exec = OffloadExecutor(net3, "glasses", "cloud", ORIENTATION,
                                   FeatureOffload(), SMART_GLASSES,
                                   server_device=CLOUD)
    feature_result = feature_exec.run(n_frames=120)
    assert feature_result.mean_offloaded_latency < full_result.mean_offloaded_latency


def test_glasses_extraction_too_slow_for_gaming():
    """The paper: 'even simple feature extraction can considerably slow
    down the process' on low-end hardware — on glasses the extraction
    stage alone (45 % of p(a)) blows the gaming deadline, so the
    CloudRidAR split is *worse* than shipping the frame."""
    extraction = SMART_GLASSES.execution_time(GAMING.megacycles_per_frame * 0.45)
    assert extraction > GAMING.deadline
