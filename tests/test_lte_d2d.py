"""Tests for the LTE cell model and D2D links."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.wireless.d2d import D2DLink, OutOfRangeError, d2d_energy_per_bit, rate_at_distance
from repro.wireless.lte import LteCell
from repro.wireless.profiles import LTE, LTE_DIRECT, WIFI_DIRECT


def lte_net():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_router("core")
    for i in range(4):
        net.add_host(f"ue{i}")
    return sim, net


class TestLteCell:
    def test_single_ue_gets_full_capacity(self):
        sim, net = lte_net()
        cell = LteCell(net, "core", capacity_down_bps=100e6, capacity_up_bps=40e6)
        links = cell.attach("ue0")
        assert links["down"].rate_bps == 100e6
        assert links["up"].rate_bps == 40e6

    def test_capacity_shared_on_attach(self):
        sim, net = lte_net()
        cell = LteCell(net, "core", capacity_down_bps=100e6)
        first = cell.attach("ue0")
        cell.attach("ue1")
        assert first["down"].rate_bps == pytest.approx(50e6)

    def test_detach_rescales_up(self):
        sim, net = lte_net()
        cell = LteCell(net, "core", capacity_down_bps=100e6)
        first = cell.attach("ue0")
        cell.attach("ue1")
        cell.detach("ue1")
        assert first["down"].rate_bps == pytest.approx(100e6)

    def test_reattach_idempotent(self):
        sim, net = lte_net()
        cell = LteCell(net, "core")
        a = cell.attach("ue0")
        b = cell.attach("ue0")
        assert a is b
        assert cell.attached == 1

    def test_detach_unknown_is_noop(self):
        sim, net = lte_net()
        cell = LteCell(net, "core")
        cell.detach("ghost")
        assert cell.attached == 0

    def test_traffic_flows_through_cell(self):
        sim, net = lte_net()
        cell = LteCell(net, "core")
        cell.attach("ue0")
        net.build_routes()
        got = []
        net["ue0"].default_handler = got.append
        net["core"].send(Packet(src="core", dst="ue0", size=1000, dst_port=1))
        sim.run(until=1.0)
        assert len(got) == 1


class TestD2DRate:
    def test_close_and_still_near_nominal(self):
        rate = rate_at_distance(WIFI_DIRECT, 5.0)
        assert rate > 0.9 * WIFI_DIRECT.down_mean

    def test_rate_decays_with_distance(self):
        near = rate_at_distance(WIFI_DIRECT, 10.0)
        far = rate_at_distance(WIFI_DIRECT, 180.0)
        assert far < near * 0.4

    def test_out_of_range_raises(self):
        with pytest.raises(OutOfRangeError):
            rate_at_distance(WIFI_DIRECT, 250.0)

    def test_mobility_hurts_wifi_direct_more(self):
        wifi_static = rate_at_distance(WIFI_DIRECT, 50.0, 0.0)
        wifi_moving = rate_at_distance(WIFI_DIRECT, 50.0, 5.0)
        lte_static = rate_at_distance(LTE_DIRECT, 50.0, 0.0)
        lte_moving = rate_at_distance(LTE_DIRECT, 50.0, 5.0)
        assert wifi_moving / wifi_static < lte_moving / lte_static

    def test_non_d2d_profile_rejected(self):
        with pytest.raises(ValueError):
            rate_at_distance(LTE, 10.0)


class TestD2DLink:
    def make(self, profile=WIFI_DIRECT, distance=20.0):
        sim = Simulator(seed=2)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = D2DLink(net, "a", "b", profile=profile, distance_m=distance)
        net.build_routes()
        return sim, net, link

    def test_bidirectional_traffic(self):
        sim, net, _ = self.make()
        got_a, got_b = [], []
        net["a"].default_handler = got_a.append
        net["b"].default_handler = got_b.append
        net["a"].send(Packet(src="a", dst="b", size=500, dst_port=1))
        net["b"].send(Packet(src="b", dst="a", size=500, dst_port=1))
        sim.run(until=1.0)
        assert got_a and got_b

    def test_update_geometry_rescales(self):
        sim, net, link = self.make(distance=10.0)
        before = link.rate_bps
        link.update_geometry(distance_m=150.0)
        assert link.rate_bps < before
        assert link.ab.rate_bps == link.rate_bps

    def test_infrastructure_profile_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(ValueError):
            D2DLink(net, "a", "b", profile=LTE)


class TestD2DEnergy:
    def test_lte_direct_wins_with_many_peers(self):
        lte = d2d_energy_per_bit(LTE_DIRECT, n_peers=50, transfer_bytes=1_000_000)
        wifi = d2d_energy_per_bit(WIFI_DIRECT, n_peers=50, transfer_bytes=1_000_000)
        assert lte < wifi

    def test_wifi_direct_wins_for_small_transfers(self):
        lte = d2d_energy_per_bit(LTE_DIRECT, n_peers=2, transfer_bytes=20_000)
        wifi = d2d_energy_per_bit(WIFI_DIRECT, n_peers=2, transfer_bytes=20_000)
        assert wifi < lte

    def test_non_d2d_rejected(self):
        with pytest.raises(ValueError):
            d2d_energy_per_bit(LTE, 2, 1000)
