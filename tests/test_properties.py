"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import percentile, summarize
from repro.core.degradation import DegradationController
from repro.core.reliability import FecDecoder, FecEncoder
from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass
from repro.edge.placement import PlacementProblem, solve_greedy, solve_local_search
from repro.edge.topology import CityTopology
from repro.mar.cache import ObjectCache
from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue, FQCoDelQueue
from repro.vision.homography import estimate_homography, reprojection_error
from repro.vision.synthetic import apply_homography

# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_engine_fires_all_events_in_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)


# ----------------------------------------------------------------------
# Queues
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=50),
    st.lists(st.integers(min_value=1, max_value=1500), min_size=0, max_size=100),
)
def test_droptail_conservation(capacity, sizes):
    """accepted == dequeued + still-queued, and drops accounted."""
    q = DropTailQueue(capacity=capacity)
    accepted = sum(1 for s in sizes if q.enqueue(Packet(src="a", dst="b", size=s), 0.0))
    assert accepted + q.drops == len(sizes)
    dequeued = 0
    while q.dequeue(0.0) is not None:
        dequeued += 1
    assert dequeued == accepted
    assert q.backlog_bytes == 0


@given(st.lists(st.tuples(st.sampled_from("abcd"), st.integers(1, 1500)), max_size=120))
def test_fqcodel_conservation(items):
    q = FQCoDelQueue(capacity=1000)
    for flow, size in items:
        q.enqueue(Packet(src="a", dst="b", size=size, flow=flow), 0.0)
    out = 0
    while q.dequeue(0.0) is not None:
        out += 1
    assert out + q.drops == len(items)
    assert len(q) == 0


# ----------------------------------------------------------------------
# Degradation controller
# ----------------------------------------------------------------------

priorities = st.sampled_from(list(Priority))


@st.composite
def stream_sets(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    streams = []
    for i in range(n):
        nominal = draw(st.floats(min_value=1e3, max_value=1e7))
        # Floors are either absent or meaningful (denormal floats like
        # 5e-324 are not realistic rate declarations).
        floor = draw(st.one_of(st.just(0.0),
                               st.floats(min_value=1.0, max_value=nominal)))
        streams.append(
            StreamSpec(
                stream_id=i,
                name=f"s{i}",
                traffic_class=TrafficClass.FULL_BEST_EFFORT,
                priority=draw(priorities),
                nominal_rate_bps=nominal,
                min_rate_bps=floor,
            )
        )
    return streams


@given(stream_sets(), st.floats(min_value=0.0, max_value=1e8))
def test_allocation_invariants(streams, budget):
    ctl = DegradationController(streams)
    alloc = ctl.allocate(budget)
    for spec in streams:
        rate = alloc.rate(spec.stream_id)
        # Never exceed nominal.
        assert rate <= spec.nominal_rate_bps + 1e-6
        # Either dropped (0) or at least the floor.
        assert rate == 0.0 or rate >= min(spec.min_rate_bps, spec.nominal_rate_bps) - 1e-6
        # Non-discardable streams are never dropped below their floor.
        if not spec.priority.may_discard:
            assert rate >= spec.min_rate_bps - 1e-6
    # Without overcommit, the budget is respected.
    if not alloc.overcommitted:
        assert alloc.total_bps <= budget + 1e-6


@given(stream_sets(), st.floats(min_value=0.0, max_value=1e8),
       st.floats(min_value=0.0, max_value=1e8))
def test_allocation_monotone_in_budget(streams, b1, b2):
    """A larger budget never shrinks the total allocation nor the
    top-priority stream's share.

    (Per-stream monotonicity does NOT hold in general: a larger budget
    can fund a higher-priority stream's floor, legitimately displacing
    a lower-priority stream that the smaller budget happened to feed.)
    """
    lo, hi = min(b1, b2), max(b1, b2)
    ctl = DegradationController(streams)
    a_lo = ctl.allocate(lo)
    a_hi = ctl.allocate(hi)
    assert a_hi.total_bps >= a_lo.total_bps - 1e-6


@given(stream_sets(), st.floats(min_value=0.0, max_value=1e8))
def test_allocation_strict_priority_dominance(streams, budget):
    """If any stream receives budget, every stream at a strictly more
    important priority level is either dropped (unfundable floor) or
    fully satisfied — lower levels never take from higher ones."""
    ctl = DegradationController(streams)
    alloc = ctl.allocate(budget)
    if alloc.overcommitted:
        # Budget below the guaranteed floors: non-discardable streams
        # keep their floors regardless of level; dominance is suspended.
        return
    for b in streams:
        if alloc.rate(b.stream_id) <= 1e-6:
            continue
        for a in streams:
            if a.priority < b.priority and a.stream_id not in alloc.dropped:
                assert alloc.rate(a.stream_id) >= a.nominal_rate_bps * (1 - 1e-9) - 1e-6


# ----------------------------------------------------------------------
# FEC
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=60),
    st.data(),
)
def test_fec_recovers_any_single_loss_per_group(group_size, n_messages, data):
    enc = FecEncoder(group_size=group_size)
    dec = FecDecoder(group_size=group_size)
    n_groups = n_messages // group_size
    lost = set()
    for g in range(n_groups):
        if data.draw(st.booleans(), label=f"lose_in_group_{g}"):
            lost.add(g * group_size + data.draw(
                st.integers(0, group_size - 1), label=f"victim_{g}"))
    parity_idx = 0
    for i in range(n_messages):
        parity = enc.push(
            Message(stream_id=0, seq=i, size=100, created_at=0.0, deadline=1.0)
        )
        if i not in lost:
            dec.on_data(i)
        if parity is not None:
            dec.on_parity(parity_idx)
            parity_idx += 1
    assert set(dec.recovered) == lost


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


@given(st.lists(st.tuples(st.sampled_from("abcdefgh"), st.integers(1, 500)), max_size=200),
       st.integers(min_value=100, max_value=2000))
def test_cache_never_exceeds_capacity(requests, capacity):
    cache = ObjectCache(capacity_bytes=capacity)
    for key, size in requests:
        cache.request(key, size)
        assert cache.used_bytes <= capacity
    assert cache.hits + cache.misses == len(requests)


# ----------------------------------------------------------------------
# Homography
# ----------------------------------------------------------------------


@st.composite
def nice_homographies(draw):
    angle = draw(st.floats(min_value=-0.3, max_value=0.3))
    scale = draw(st.floats(min_value=0.8, max_value=1.2))
    tx = draw(st.floats(min_value=-30, max_value=30))
    ty = draw(st.floats(min_value=-30, max_value=30))
    return np.array(
        [
            [scale * math.cos(angle), -scale * math.sin(angle), tx],
            [scale * math.sin(angle), scale * math.cos(angle), ty],
            [0.0, 0.0, 1.0],
        ]
    )


@given(nice_homographies())
@settings(max_examples=30)
def test_homography_recovered_from_perfect_correspondences(h_true):
    src = np.array(
        [[20.0, 20.0], [300.0, 30.0], [40.0, 220.0], [280.0, 200.0],
         [160.0, 120.0], [100.0, 60.0]]
    )
    dst = apply_homography(h_true, src)
    h_est = estimate_homography(src, dst)
    errs = reprojection_error(h_est, src, dst)
    assert errs.max() < 1e-6


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
def test_percentile_within_range(data):
    p50 = percentile(data, 50)
    assert min(data) <= p50 <= max(data)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
def test_summary_consistency(data):
    s = summarize(data)
    assert s.minimum <= s.p5 <= s.p50 <= s.p95 <= s.maximum
    # The mean may sit 1 ulp outside [min, max] from summation rounding.
    slack = 4 * max(abs(s.minimum), abs(s.maximum)) * 2.3e-16
    assert s.minimum - slack <= s.mean <= s.maximum + slack


# ----------------------------------------------------------------------
# Edge placement
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_placement_cover_and_local_search_dominance(seed):
    topo = CityTopology.random_city(n_users=40, n_sites=12, seed=seed)
    problem = PlacementProblem(topo)
    greedy = solve_greedy(problem)
    if not greedy.feasible:
        return  # infeasible instances have no cover to check
    assert problem.is_cover(greedy.chosen)
    ls = solve_local_search(problem)
    assert ls.feasible
    assert problem.is_cover(ls.chosen)
    assert ls.n_datacenters <= greedy.n_datacenters
