"""Tests for the bandwidth estimates of Section III-B and sensor suites."""

import pytest

from repro.mar.sensors import STANDARD_SENSOR_SUITE, SensorStream, suite_bitrate_bps
from repro.mar.video import (
    VideoSource,
    camera_fov_rate_bps,
    compressed_bitrate,
    raw_retina_rate_bps,
    uncompressed_bitrate,
)


class TestBandwidthEstimates:
    def test_retina_rate_range(self):
        lo, hi = raw_retina_rate_bps()
        assert (lo, hi) == (6e6, 10e6)

    def test_fov_scaling_lands_in_paper_range(self):
        # Paper: "around 9 to 12 Gb/s" for a 60-70 degree camera FOV.
        lo60, _ = camera_fov_rate_bps(60.0)
        _, hi70 = camera_fov_rate_bps(70.0)
        assert 5e9 < lo60 < 13e9
        assert 9e9 < hi70 < 13e9

    def test_uncompressed_4k60_rate(self):
        rate = uncompressed_bitrate(3840, 2160, 60, 12)
        # ~5.97 Gb/s = ~711 MiB/s (the paper's figure in byte units).
        assert rate == pytest.approx(5.97e9, rel=0.01)
        assert rate / 8 / 2**20 == pytest.approx(711, rel=0.01)

    def test_compression_brings_4k_to_tens_of_mbps(self):
        raw = uncompressed_bitrate(3840, 2160, 60, 12)
        compressed = compressed_bitrate(raw, ratio=250)
        assert 15e6 < compressed < 35e6

    def test_compression_ratio_validation(self):
        with pytest.raises(ValueError):
            compressed_bitrate(1e9, ratio=1.0)


class TestVideoSource:
    def test_gop_pattern(self):
        src = VideoSource(gop=5)
        flags = [src.frame(i).is_reference for i in range(10)]
        assert flags == [True, False, False, False, False] * 2

    def test_frame_sizes(self):
        src = VideoSource(ref_bytes=20000, inter_bytes=4000)
        assert src.frame(0).size_bytes == 20000
        assert src.frame(1).size_bytes == 4000

    def test_bitrate_formula(self):
        src = VideoSource(fps=30, gop=10, ref_bytes=10000, inter_bytes=1000)
        per_gop = 10000 + 9 * 1000
        assert src.bitrate_bps == pytest.approx(per_gop * 8 * 3)

    def test_frames_iterator_duration(self):
        src = VideoSource(fps=30)
        frames = list(src.frames(2.0))
        assert len(frames) == 60
        assert frames[-1].timestamp == pytest.approx(59 / 30)

    def test_scale_quality(self):
        src = VideoSource(ref_bytes=20000, inter_bytes=4000)
        half = src.scale_quality(0.5)
        assert half.ref_bytes == 10000
        assert half.inter_bytes == 2000
        assert half.bitrate_bps == pytest.approx(src.bitrate_bps / 2, rel=0.01)

    def test_scale_quality_validation(self):
        with pytest.raises(ValueError):
            VideoSource().scale_quality(0.0)
        with pytest.raises(ValueError):
            VideoSource().scale_quality(1.5)

    def test_gop_validation(self):
        with pytest.raises(ValueError):
            VideoSource(gop=0)


class TestSensors:
    def test_suite_contains_imu_and_gps(self):
        assert "imu" in STANDARD_SENSOR_SUITE
        assert "gps" in STANDARD_SENSOR_SUITE

    def test_stream_bitrate(self):
        imu = STANDARD_SENSOR_SUITE["imu"]
        assert imu.bitrate_bps == pytest.approx(100 * 36 * 8)

    def test_suite_bitrate_small_relative_to_video(self):
        total = suite_bitrate_bps()
        assert total < 100_000  # sensors are thin flows

    def test_sample_generation(self):
        s = SensorStream("x", rate_hz=10.0, sample_bytes=8)
        samples = list(s.samples(1.0))
        assert len(samples) == 10
        assert samples[1][0] == pytest.approx(0.1)
        assert all(size == 8 for _, size in samples)
