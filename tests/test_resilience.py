"""Tests for the resilience layer: RTT estimation, backoff, heartbeat
liveness, circuit breaking, and the resilient executor's failover.
"""

import random

import pytest

from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    DecorrelatedBackoff,
    HeartbeatMonitor,
    Liveness,
    ResilienceMetrics,
    RttEstimator,
    ServiceMode,
)
from repro.core.session import ScenarioBuilder
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, ResilientOffloadExecutor
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector, FaultPlan

APP = APP_ARCHETYPES["orientation"]


class TestRttEstimator:
    def test_initial_timeout_then_adapts(self):
        est = RttEstimator(initial=0.2, floor=0.02, cap=2.0)
        assert est.timeout() == 0.2
        est.sample(0.01)
        # srtt=10ms, rttvar=5ms -> 30ms timer
        assert est.timeout() == pytest.approx(0.03)
        for _ in range(20):
            est.sample(0.01)
        assert est.timeout() < 0.03                # variance decays
        assert est.timeout() >= est.floor

    def test_clamps(self):
        est = RttEstimator(floor=0.05, cap=0.5)
        est.sample(1e-6)
        assert est.timeout() == 0.05
        est.sample(10.0)
        assert est.timeout() == 0.5

    def test_negative_sample_ignored(self):
        est = RttEstimator()
        est.sample(-1.0)
        assert est.samples == 0 and est.srtt is None


class TestDecorrelatedBackoff:
    def test_bounds_and_growth(self):
        rng = random.Random(1)
        bo = DecorrelatedBackoff(rng, base=0.1, cap=2.0)
        delays = [bo.next() for _ in range(50)]
        assert all(0.1 <= d <= 2.0 for d in delays)
        # Geometric growth in expectation: later delays dwarf the base.
        assert max(delays) > 0.5

    def test_reset(self):
        rng = random.Random(2)
        bo = DecorrelatedBackoff(rng, base=0.1, cap=5.0)
        for _ in range(10):
            bo.next()
        bo.reset()
        assert bo.next() <= 0.3                    # back near base

    def test_deterministic_given_rng(self):
        a = [DecorrelatedBackoff(random.Random(3), 0.1, 5.0).next() for _ in range(1)]
        b = [DecorrelatedBackoff(random.Random(3), 0.1, 5.0).next() for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            DecorrelatedBackoff(random.Random(0), base=0.0)
        with pytest.raises(ValueError):
            DecorrelatedBackoff(random.Random(0), base=1.0, cap=0.5)


class TestCircuitBreaker:
    def clock(self):
        return self.now

    def test_closed_to_open_to_half_open_to_closed(self):
        self.now = 0.0
        br = CircuitBreaker(self.clock, failure_threshold=3, cooldown=1.0)
        assert br.allow_request()
        br.record_failure(); br.record_failure()
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert not br.allow_request()              # cooldown not elapsed
        self.now = 1.0
        assert br.allow_request()                  # the half-open probe
        assert br.state is BreakerState.HALF_OPEN
        assert not br.allow_request()              # only one probe at a time
        br.record_success()
        assert br.state is BreakerState.CLOSED
        assert br.failures == 0

    def test_failed_probe_grows_cooldown(self):
        self.now = 0.0
        br = CircuitBreaker(self.clock, failure_threshold=1, cooldown=1.0,
                            cooldown_factor=2.0, cooldown_cap=3.0)
        br.record_failure()
        self.now = 1.0
        assert br.allow_request()
        br.record_failure()                        # probe failed
        assert br.state is BreakerState.OPEN
        self.now = 2.5
        assert not br.allow_request()              # cooldown now 2s from t=1
        self.now = 3.0
        assert br.allow_request()
        br.record_failure()
        # Cooldown capped at 3s.
        assert br.cooldown_remaining <= 3.0

    def test_trip_forces_open(self):
        self.now = 0.0
        br = CircuitBreaker(self.clock, failure_threshold=100)
        br.trip()
        assert br.state is BreakerState.OPEN
        assert br.trips == 1


class PongTarget:
    """Test double: answers pings after ``rtt`` unless dead."""

    def __init__(self, sim, monitor_ref, rtt=0.02):
        self.sim = sim
        self.monitor_ref = monitor_ref
        self.rtt = rtt
        self.dead = False

    def send_ping(self, target, token):
        if not self.dead:
            self.sim.schedule(self.rtt, lambda: self.monitor_ref[0].on_pong(token))


class TestHeartbeatMonitor:
    def make(self, sim, interval=0.25, miss_threshold=3, rtt=0.02):
        ref = []
        target = PongTarget(sim, ref, rtt=rtt)
        transitions = []
        monitor = HeartbeatMonitor(
            sim, "srv", target.send_ping, interval=interval,
            miss_threshold=miss_threshold,
            on_state_change=lambda t, o, n: transitions.append((sim.now, o, n)),
        )
        ref.append(monitor)
        return monitor, target, transitions

    def test_stays_healthy_with_pongs(self):
        sim = Simulator(seed=1)
        monitor, target, transitions = self.make(sim)
        monitor.start()
        sim.run(until=5.0)
        assert monitor.state is Liveness.HEALTHY
        assert transitions == []
        assert monitor.rtt.srtt == pytest.approx(0.02, rel=0.01)

    def test_detects_failure_within_threshold_intervals(self):
        sim = Simulator(seed=2)
        monitor, target, transitions = self.make(sim)
        monitor.start()
        sim.schedule(2.0, lambda: setattr(target, "dead", True))
        sim.run(until=5.0)
        assert monitor.state is Liveness.FAILED
        failed_at = [t for t, o, n in transitions if n is Liveness.FAILED][0]
        # suspect first, then failed
        states = [n for _, _, n in transitions]
        assert states[0] is Liveness.SUSPECT
        # Bounded detection: within miss_threshold intervals + one timeout.
        assert failed_at - 2.0 <= 3 * 0.25 + monitor.rtt.timeout() + 0.25
        assert monitor.detection_delays and monitor.detection_delays[0] < 1.5

    def test_failed_probing_backs_off_then_recovers(self):
        sim = Simulator(seed=3)
        monitor, target, transitions = self.make(sim)
        monitor.start()
        sim.schedule(2.0, lambda: setattr(target, "dead", True))
        sim.run(until=10.0)
        pings_during_outage = monitor.pings_sent
        sim.run(until=20.0)
        # Backoff: probe rate while failed is well below 1/interval.
        assert monitor.pings_sent - pings_during_outage < 10 / 0.25 * 0.5
        sim.schedule(0.0, lambda: setattr(target, "dead", False))
        sim.run(until=45.0)
        assert monitor.state is Liveness.HEALTHY
        assert any(n is Liveness.HEALTHY for _, _, n in transitions)

    def test_stop_silences_monitor(self):
        sim = Simulator(seed=4)
        monitor, target, _ = self.make(sim)
        monitor.start()
        sim.run(until=1.0)
        monitor.stop()
        sent = monitor.pings_sent
        sim.run(until=5.0)
        assert monitor.pings_sent == sent


class TestResilienceMetrics:
    def test_mode_durations_and_report(self):
        m = ResilienceMetrics()
        m.record_mode(0.0, ServiceMode.HEALTHY)
        m.record_mode(5.0, ServiceMode.DEGRADED_LOCAL)
        m.record_mode(8.0, ServiceMode.HEALTHY)
        m.outage_begin(5.0)
        m.outage_end(8.0)
        m.frames_offloaded = 90
        m.frames_degraded = 10
        report = m.report(duration=10.0)
        assert report.availability == pytest.approx(0.7)
        assert report.mttr == pytest.approx(3.0)
        assert report.degraded_fraction == pytest.approx(0.1)
        assert report.served_every_frame

    def test_duplicate_mode_collapsed_and_open_outage_closed(self):
        m = ResilienceMetrics()
        m.record_mode(0.0, ServiceMode.HEALTHY)
        m.record_mode(1.0, ServiceMode.HEALTHY)
        assert len(m.mode_timeline) == 1
        m.outage_begin(2.0)
        m.outage_begin(3.0)                        # idempotent
        m.close(4.0)
        assert m.outages == [(2.0, 4.0)]


class TestResilientExecutor:
    def run_scenario(self, plan_fn=None, seed=11, duration=12.0, **kw):
        scenario = ScenarioBuilder(seed=seed).edge_failover()
        if plan_fn is not None:
            FaultInjector(scenario.net).apply(plan_fn(scenario))
        executor = ResilientOffloadExecutor(
            scenario.net, "client", scenario.all_servers, APP,
            FullOffload(), SMARTPHONE, **kw,
        )
        result = executor.run(n_frames=int(duration * APP.fps), settle=3.0)
        return scenario, executor, result

    def test_no_faults_everything_offloads(self):
        _, executor, result = self.run_scenario()
        report = executor.resilience_report()
        assert result.frames_completed == result.frames_sent
        assert report.frames_degraded == 0
        assert report.failovers == 0
        assert report.availability == pytest.approx(1.0)
        assert executor.mode is ServiceMode.HEALTHY

    def test_primary_crash_fails_over_to_backup(self):
        def plan(scenario):
            return FaultPlan().server_crash(4.0, None, [scenario.server])

        _, executor, result = self.run_scenario(plan_fn=plan)
        report = executor.resilience_report()
        assert report.failovers >= 1
        assert executor.active_server != executor.servers[0]
        # Offloading continued on the backup: far more offloaded than
        # degraded frames.
        assert report.frames_offloaded > report.frames_degraded
        assert result.frames_completed == result.frames_sent
        assert report.detection_delays
        # Detection bounded by miss_threshold heartbeats + timeout slack.
        assert report.mean_detection_time < 3 * 0.25 + 1.0

    def test_all_servers_dead_trips_to_local_only(self):
        def plan(scenario):
            return FaultPlan().server_crash(
                3.0, None, [scenario.server] + scenario.backup_servers
            )

        _, executor, result = self.run_scenario(plan_fn=plan)
        report = executor.resilience_report()
        assert executor.breaker.state is not BreakerState.CLOSED
        assert report.breaker_trips >= 1
        assert report.frames_degraded > 0
        # Local-only degraded mode still serves every frame: no stall.
        assert result.frames_completed == result.frames_sent
        assert ServiceMode.DEGRADED_LOCAL in [m for _, m in executor.metrics.mode_timeline]

    def test_recovery_closes_breaker_and_resumes_offload(self):
        def plan(scenario):
            return FaultPlan().server_crash(
                3.0, 4.0, [scenario.server] + scenario.backup_servers
            )

        _, executor, result = self.run_scenario(plan_fn=plan, duration=15.0)
        report = executor.resilience_report()
        assert report.breaker_trips >= 1
        assert executor.breaker.state is BreakerState.CLOSED
        # Frames offloaded after the restart at t=7.
        post = [t for t, _, mode in executor.frame_log if mode == "offloaded" and t > 7.5]
        assert post
        assert report.mttr > 0
        assert report.recovery_times and max(report.recovery_times) < 10.0

    def test_retry_recovers_single_lost_upload(self):
        # A short sharp loss burst eats some uploads; retries cover it.
        def plan(scenario):
            radio = [l for l in scenario.net.links if "client" in l.name]
            return FaultPlan().loss_burst(2.0, 0.5, radio, loss=0.9)

        _, executor, result = self.run_scenario(plan_fn=plan)
        assert result.frames_completed == result.frames_sent
        # Nothing bad enough to fail over or trip.
        report = executor.resilience_report()
        assert report.breaker_trips == 0
