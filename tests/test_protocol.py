"""Integration tests for the assembled MARTP protocol."""

import pytest

from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import MultipathPolicy, PathState
from repro.core.traffic import Priority, StreamSpec, TrafficClass, mar_baseline_streams
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.udp import UdpSocket


def single_path_pair(streams, up_bps=10e6, rtt=0.02, loss=0.0, seed=1,
                     policy=MultipathPolicy.WIFI_PREFERRED):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, up_bps, delay=rtt / 2, loss=loss,
                   queue_up=DropTailQueue(1000))
    net.build_routes()
    receiver = MartpReceiver(net["server"], 7000, streams)
    endpoint = PathEndpoint(
        state=PathState(name="wifi"),
        socket=UdpSocket(net["client"], 6000),
        dst="server",
        dst_port=7000,
    )
    sender = MartpSender([endpoint], streams, policy=policy)
    return sim, sender, receiver


def simple_stream(**kw):
    defaults = dict(
        stream_id=0, name="s0", traffic_class=TrafficClass.FULL_BEST_EFFORT,
        priority=Priority.HIGHEST, nominal_rate_bps=1e6, message_bytes=500,
        deadline=0.2,
    )
    defaults.update(kw)
    return StreamSpec(**defaults)


def test_messages_delivered_end_to_end():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams)
    sender.start()
    for i in range(20):
        sim.schedule(i * 0.01, sender.submit, 0, 500)
    sim.run(until=2.0)
    rx = receiver.stream_stats(0)
    assert rx.received == 20
    assert rx.in_time == 20


def test_latency_close_to_path_rtt_half():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams, rtt=0.04)
    sender.start()
    sim.schedule(0.1, sender.submit, 0, 500)
    sim.run(until=1.0)
    rx = receiver.stream_stats(0)
    assert rx.latencies[0] == pytest.approx(0.02, abs=0.005)


def test_feedback_drives_rtt_estimate():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams, rtt=0.05)
    sender.start()
    for i in range(100):
        sim.schedule(i * 0.02, sender.submit, 0, 500)
    sim.run(until=3.0)
    ctl = sender.controller
    assert ctl.srtt == pytest.approx(0.05, abs=0.02)


def test_no_delay_stream_drops_over_allocation():
    # MEDIUM_NO_DELAY: over-budget submissions are discarded, not queued.
    stream = simple_stream(priority=Priority.MEDIUM_NO_DELAY, nominal_rate_bps=100_000)
    sim, sender, receiver = single_path_pair([stream])
    sender.controllers["wifi"].budget_bps = 100_000
    sender.controllers["wifi"].max_bps = 100_000
    sender.allocation = sender.degradation.allocate(100_000)
    sender.start()
    # Offer 10x the allocation instantly.
    for i in range(100):
        sim.schedule(0.05, sender.submit, 0, 500)
    sim.run(until=1.0)
    tx = sender.stream_stats(0)
    assert tx.dropped > 0
    assert not tx.backlog


def test_no_discard_stream_queues_over_allocation():
    stream = simple_stream(priority=Priority.MEDIUM_NO_DISCARD,
                           nominal_rate_bps=200_000, deadline=5.0)
    sim, sender, receiver = single_path_pair([stream])
    sender.controllers["wifi"].budget_bps = 200_000
    sender.controllers["wifi"].max_bps = 200_000
    sender.start()
    for i in range(100):
        sim.schedule(0.05, sender.submit, 0, 500)
    sim.run(until=4.0)
    rx = receiver.stream_stats(0)
    tx = sender.stream_stats(0)
    # Everything eventually delivered (delayed, not dropped).
    assert tx.dropped == 0
    assert rx.received == 100


def test_highest_priority_bypasses_bucket():
    stream = simple_stream(priority=Priority.HIGHEST, nominal_rate_bps=1000.0)
    sim, sender, receiver = single_path_pair([stream])
    sender.start()
    for i in range(50):
        sim.schedule(0.01, sender.submit, 0, 500)
    sim.run(until=1.0)
    assert receiver.stream_stats(0).received == 50


def test_arq_recovers_losses_for_recovery_class():
    stream = simple_stream(
        traffic_class=TrafficClass.LOSS_RECOVERY, deadline=0.5,
        nominal_rate_bps=2e6,
    )
    sim, sender, receiver = single_path_pair([stream], loss=0.05, seed=4)
    sender.start()
    n = 300
    for i in range(n):
        sim.schedule(i * 0.005, sender.submit, 0, 500)
    sim.run(until=5.0)
    rx = receiver.stream_stats(0)
    tx = sender.stream_stats(0)
    assert tx.arq.retransmissions > 0
    assert rx.received >= n * 0.98  # nearly everything despite 5% loss


def test_best_effort_class_never_retransmits():
    stream = simple_stream(traffic_class=TrafficClass.FULL_BEST_EFFORT)
    sim, sender, receiver = single_path_pair([stream], loss=0.1, seed=2)
    sender.start()
    for i in range(200):
        sim.schedule(i * 0.005, sender.submit, 0, 500)
    sim.run(until=3.0)
    tx = sender.stream_stats(0)
    assert tx.arq is None
    rx = receiver.stream_stats(0)
    assert rx.received < 200  # losses stay lost


def test_fec_recovers_without_retransmission():
    stream = simple_stream(
        traffic_class=TrafficClass.FULL_BEST_EFFORT, fec=True, fec_group=4,
        nominal_rate_bps=2e6,
    )
    sim, sender, receiver = single_path_pair([stream], loss=0.03, seed=7)
    sender.start()
    for i in range(400):
        sim.schedule(i * 0.004, sender.submit, 0, 500)
    sim.run(until=4.0)
    rx = receiver.stream_stats(0)
    assert rx.recovered > 0


def test_critical_class_delivers_in_order():
    stream = simple_stream(
        traffic_class=TrafficClass.CRITICAL, deadline=5.0, nominal_rate_bps=1e6,
    )
    sim, sender, _ = single_path_pair([stream], loss=0.05, seed=9)
    # Ordered-delivery with an on_message hook is covered by
    # test_critical_in_order_delivery_hook below.
    sender.start()
    for i in range(100):
        sim.schedule(i * 0.01, sender.submit, 0, 500)
    sim.run(until=5.0)
    tx = sender.stream_stats(0)
    assert tx.arq is not None


def test_critical_in_order_delivery_hook():
    stream = simple_stream(
        traffic_class=TrafficClass.CRITICAL, deadline=5.0, nominal_rate_bps=1e6,
    )
    sim = Simulator(seed=9)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, 10e6, delay=0.01, loss=0.05,
                   queue_up=DropTailQueue(1000))
    net.build_routes()
    order = []
    MartpReceiver(net["server"], 7000, [stream],
                  on_message=lambda sid, seq, lat: order.append(seq))
    endpoint = PathEndpoint(
        state=PathState(name="wifi"), socket=UdpSocket(net["client"], 6000),
        dst="server", dst_port=7000,
    )
    sender = MartpSender([endpoint], [stream])
    sender.start()
    for i in range(150):
        sim.schedule(i * 0.01, sender.submit, 0, 400)
    sim.run(until=10.0)
    assert order == sorted(order)
    assert len(order) >= 148  # ARQ recovered nearly all


def test_budget_shrinks_under_congestion():
    streams = mar_baseline_streams(video_nominal_bps=20e6)
    sim, sender, receiver = single_path_pair(streams, up_bps=2e6, seed=3)
    sender.start()
    sender.attach_rate_driver(1)
    sender.attach_rate_driver(3)
    sim.run(until=10.0)
    # The budget cannot stay near 20 Mb/s over a 2 Mb/s link.
    assert sender.budget_bps < 8e6
    assert sender.congestion_events > 0


def test_allocation_trace_grows():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams)
    sender.start()
    for i in range(50):
        sim.schedule(i * 0.02, sender.submit, 0, 500)
    sim.run(until=2.0)
    assert len(sender.allocation_trace) > 5
    assert len(sender.offered_rate_trace()) == len(sender.allocation_trace)


def test_unknown_stream_rejected():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams)
    with pytest.raises(KeyError):
        sender.submit(42, 100)
    with pytest.raises(KeyError):
        sender.attach_rate_driver(42)


def test_controller_property_single_path_only():
    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams)
    assert sender.controller is sender.controllers["wifi"]


def test_stale_duplicate_below_prune_floor_not_redelivered():
    """``received_seqs`` is pruned below the NACK window; a duplicate
    older than the prune floor must still be deduped, not handed to the
    application a second time (repro.check regression)."""
    from repro.simnet.packet import Packet

    streams = [simple_stream()]
    sim, sender, receiver = single_path_pair(streams)
    delivered = []
    receiver.on_message = lambda stream, seq, latency: delivered.append(seq)

    def data_packet(seq):
        return Packet(
            src="client", dst="server", src_port=6000, dst_port=7000,
            size=528, kind="martp-data", flow="martp:s0",
            payload={
                "stream": 0, "seq": seq, "created": sim.now,
                "msg_deadline": 0.2, "parity": False, "retransmit": False,
                "ts": sim.now, "path": "wifi",
            },
            created_at=sim.now,
        )

    # Enough contiguous receipt to exceed the 4*NACK_WINDOW prune trigger.
    for seq in range(600):
        receiver._on_packet(data_packet(seq))
    receiver._send_feedback()                  # prunes received_seqs
    rx = receiver.stream_stats(0)
    assert rx.prune_floor > 5                  # seq 5 is below the floor
    assert 5 not in rx.received_seqs

    before = list(delivered)
    receiver._on_packet(data_packet(5))        # stale straggler
    assert delivered == before                 # no second delivery
    assert rx.duplicates == 1
    assert rx.received == 600                  # not re-counted as fresh
