"""Acceptance scenario (ISSUE): mid-session edge crash plus a 3 s radio
blackout.

One session, one fault plan, one executor — and the full resilience
story checked end to end:

- the crash is detected within a bounded number of heartbeat intervals,
- the session fails over to the backup edge server,
- the blackout (no server reachable) trips the breaker to local-only,
- recovery is measured (finite MTTR) and offloading resumes,
- frames are served in *every* phase — the paper's Section VI-B
  requirement that the app "function with degraded performance even if
  no network connectivity is available".
"""

import pytest

from repro.core.resilience import BreakerState, ServiceMode
from repro.core.session import ScenarioBuilder
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, ResilientOffloadExecutor
from repro.simnet.faults import FaultInjector, FaultPlan

APP = APP_ARCHETYPES["orientation"]
SEED = 404
DURATION = 22.0
CRASH_AT, CRASH_FOR = 5.0, 9.0          # primary edge down 5..14
BLACKOUT_AT, BLACKOUT_FOR = 9.0, 3.0    # radio dark 9..12: nothing reachable
PHASES = [
    ("pre-fault", 0.0, CRASH_AT),
    ("failed-over", CRASH_AT, BLACKOUT_AT),
    ("blackout", BLACKOUT_AT, BLACKOUT_AT + BLACKOUT_FOR),
    ("recovered", BLACKOUT_AT + BLACKOUT_FOR + 2.0, DURATION),
]


@pytest.fixture(scope="module")
def session():
    scenario = ScenarioBuilder(seed=SEED).edge_failover()
    radio = [l for l in scenario.net.links if "client" in l.name]
    FaultInjector(scenario.net).apply(
        FaultPlan()
        .server_crash(CRASH_AT, CRASH_FOR, [scenario.server])
        .blackout(BLACKOUT_AT, BLACKOUT_FOR, radio)
    )
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers, APP,
        FullOffload(), SMARTPHONE,
    )
    result = executor.run(n_frames=int(DURATION * APP.fps), settle=3.0)
    return scenario, executor, result, executor.resilience_report()


class TestFailoverEndToEnd:
    def test_every_frame_served(self, session):
        _, _, result, report = session
        assert result.frames_completed == result.frames_sent
        assert report.frames_dropped == 0

    def test_frames_served_in_every_phase(self, session):
        """The headline requirement: no phase starves — not even the
        total blackout (local compute carries it)."""
        _, executor, _, _ = session
        completions = [(t, mode) for t, _, mode in executor.frame_log]
        for name, t0, t1 in PHASES:
            count = sum(1 for t, _ in completions if t0 <= t < t1)
            assert count > 0, f"no frames completed during {name!r}"

    def test_detection_bounded(self, session):
        _, executor, _, report = session
        assert len(report.detection_delays) >= 1
        bound = executor.miss_threshold * executor.ping_interval \
            + executor.ping_interval + 0.5
        assert all(d <= bound for d in report.detection_delays)

    def test_failed_over_to_backup(self, session):
        scenario, executor, _, report = session
        assert report.failovers >= 1
        modes = [m for _, m in executor.metrics.mode_timeline]
        assert ServiceMode.FAILED_OVER in modes
        # During the failed-over phase frames still went out offloaded.
        offl = [t for t, _, mode in executor.frame_log
                if mode == "offloaded" and CRASH_AT + 2.0 <= t < BLACKOUT_AT]
        assert offl

    def test_blackout_trips_breaker_to_local_only(self, session):
        _, executor, _, report = session
        assert report.breaker_trips >= 1
        modes = [m for _, m in executor.metrics.mode_timeline]
        assert ServiceMode.DEGRADED_LOCAL in modes
        # Everything completed during the blackout was local compute.
        during = [mode for t, _, mode in executor.frame_log
                  if BLACKOUT_AT + 1.0 <= t < BLACKOUT_AT + BLACKOUT_FOR]
        assert during and all(m == "degraded" for m in during)

    def test_recovery_measured_and_offload_resumes(self, session):
        _, executor, _, report = session
        assert report.mttr == report.mttr            # not NaN
        assert report.mttr < CRASH_FOR               # recovered before restart worst-case
        assert report.recovery_times
        assert executor.breaker.state is BreakerState.CLOSED
        # No automatic failback: serving from the backup edge counts as
        # recovered, so either HEALTHY or FAILED_OVER is a good end state.
        assert executor.mode in (ServiceMode.HEALTHY, ServiceMode.FAILED_OVER)
        post = [t for t, _, mode in executor.frame_log
                if mode == "offloaded" and t > BLACKOUT_AT + BLACKOUT_FOR + 2.0]
        assert post, "offloading never resumed after the blackout"

    def test_availability_accounts_for_outages(self, session):
        _, _, _, report = session
        # Roughly 3-5 s of the 22 s session was local-only degraded.
        assert 0.6 < report.availability < 0.99
        assert report.degraded_time > BLACKOUT_FOR * 0.5

    def test_report_is_serializable_in_session_report(self, session):
        """The resilience numbers surface through the analysis layer."""
        from repro.analysis.report import resilience_table
        _, _, _, report = session
        table = resilience_table([("e2e", report)])
        assert "MTTR" in table and "e2e" in table
        assert "—" not in table.splitlines()[2]      # no blank metrics
