"""Unit tests for the fault-injection subsystem (`repro.simnet.faults`).

The critical contract: every mutated link field is snapshotted when the
first fault lands and restored verbatim when the last fault expires —
the regression guard for the old `loss = 0.999999` style of blackout
that leaked jitter/rate mutations past its window.
"""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.faults import (
    FaultEvent, FaultInjector, FaultPlan, FaultPlanError, path_links,
)
from repro.simnet.network import Network


def two_host_net(seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("a", "b", 10e6, 10e6, delay=0.005, jitter=0.001)
    net.build_routes()
    return sim, net


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=-1, duration=1, links=("l",))
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=0, links=("l",))
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1, links=("l",), loss=1.5)
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1, links=("l",), rate_factor=0)
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1)    # no targets

    def test_builders_and_plan(self):
        plan = (
            FaultPlan()
            .blackout(1.0, 2.0, ["l1"])
            .loss_burst(2.0, 1.0, ["l1"], loss=0.25)
            .server_crash(0.5, None, ["srv"])
        )
        assert len(plan) == 3
        assert plan.horizon == 3.0
        kinds = [e.kind for e in plan]            # iteration sorts by start
        assert kinds == ["server-crash", "blackout", "loss-burst"]

    def test_unknown_target_fails_fast(self):
        sim, net = two_host_net()
        injector = FaultInjector(net)
        with pytest.raises(KeyError):
            injector.schedule(FaultEvent.blackout(1.0, 1.0, ["nope"]))
        with pytest.raises(KeyError):
            injector.schedule(FaultEvent.server_crash(1.0, 1.0, ["nope"]))


class TestRestoreOnExpiry:
    def test_all_fields_snapshot_and_restore(self):
        """A fault touching loss, rate, delay AND jitter must restore
        every one of them — not just the field the fault 'was about'."""
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        before = (link.loss, link.rate_bps, link.delay, link.jitter)
        plan = FaultPlan().add(FaultEvent(
            kind="compound", start=1.0, duration=2.0, links=(link.name,),
            loss=0.5, rate_factor=0.25, extra_delay=0.1, extra_jitter=0.05,
        ))
        FaultInjector(net).apply(plan)

        sim.run(until=1.5)
        assert link.loss == pytest.approx(0.5)
        assert link.rate_bps == pytest.approx(2.5e6)
        assert link.delay == pytest.approx(0.105)
        assert link.jitter == pytest.approx(0.051)

        sim.run(until=3.5)
        assert (link.loss, link.rate_bps, link.delay, link.jitter) == before

    def test_blackout_does_not_leak_into_other_fields(self):
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        injector = FaultInjector(net)
        injector.apply(FaultPlan().blackout(0.5, 1.0, [link]))
        sim.run(until=1.0)
        assert link.loss == 1.0
        assert link.rate_bps == 10e6               # untouched mid-fault
        sim.run(until=2.0)
        assert link.loss == 0.0
        assert injector.activated == injector.expired == 1

    def test_overlapping_faults_compose_and_unwind(self):
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        plan = (
            FaultPlan()
            .loss_burst(1.0, 3.0, [link], loss=0.5)
            .bandwidth_crush(2.0, 3.0, [link], factor=0.1)
            .loss_burst(2.0, 1.0, [link], loss=0.5)
        )
        FaultInjector(net).apply(plan)
        sim.run(until=2.5)
        # Two independent 50% losses compose to 75%; rate crushed.
        assert link.loss == pytest.approx(0.75)
        assert link.rate_bps == pytest.approx(1e6)
        sim.run(until=3.5)                         # second burst expired
        assert link.loss == pytest.approx(0.5)
        assert link.rate_bps == pytest.approx(1e6)
        sim.run(until=4.5)                         # first burst expired
        assert link.loss == pytest.approx(0.0)
        assert link.rate_bps == pytest.approx(1e6)
        sim.run(until=5.5)                         # crush expired: base back
        assert link.loss == 0.0
        assert link.rate_bps == pytest.approx(10e6)

    def test_permanent_fault_never_restores(self):
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        injector = FaultInjector(net)
        injector.apply(FaultPlan().blackout(1.0, None, [link]))
        sim.run(until=100.0)
        assert link.loss == 1.0
        assert injector.expired == 0
        assert injector.outage_windows() == [(1.0, None)]


class TestNodeFaults:
    def test_server_crash_drops_and_restart_restores(self):
        sim, net = two_host_net()
        got = []
        net["b"].default_handler = got.append
        from repro.simnet.flows import CBRSource
        CBRSource(net["a"], "b", 9999, rate_bps=1e5, packet_size=500)
        FaultInjector(net).apply(FaultPlan().server_crash(1.0, 1.0, ["b"]))
        sim.run(until=3.0)
        times = sorted(p.created_at for p in got)
        assert any(t < 1.0 for t in times)          # before crash
        assert not any(1.01 <= t <= 1.95 for t in times)   # silent while down
        assert any(t > 2.0 for t in times)          # after restart
        assert net["b"].packets_dropped_down > 0

    def test_crashed_node_does_not_send(self):
        sim, net = two_host_net()
        net["a"].down = True
        from repro.simnet.packet import Packet
        assert net["a"].send(Packet(src="a", dst="b", size=100)) is False
        assert net["a"].packets_dropped_down == 1

    def test_overlapping_crashes_refcount(self):
        sim, net = two_host_net()
        injector = FaultInjector(net)
        injector.apply(
            FaultPlan()
            .server_crash(1.0, 2.0, ["b"])
            .server_crash(2.0, 2.0, ["b"])
        )
        sim.run(until=2.5)
        assert net["b"].down is True
        sim.run(until=3.5)                          # first expired, second alive
        assert net["b"].down is True
        sim.run(until=4.5)
        assert net["b"].down is False


class TestEventConstruction:
    """Malformed events must fail at construction, not misfire mid-run."""

    def test_non_finite_times_rejected(self):
        nan, inf = float("nan"), float("inf")
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=nan, duration=1, links=("l",))
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=inf, duration=1, links=("l",))
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=nan, links=("l",))
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=inf, links=("l",))

    def test_negative_delay_and_jitter_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1, links=("l",),
                       extra_delay=-0.01)
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1, links=("l",),
                       extra_jitter=-0.01)
        with pytest.raises(ValueError):
            FaultEvent(kind="x", start=0, duration=1, links=("l",),
                       extra_delay=float("nan"))

    def test_roundtrips_through_dict(self):
        event = FaultEvent.delay_spike(1.0, 2.0, ["l1", "l2"],
                                       extra_delay=0.2, extra_jitter=0.05)
        assert FaultEvent.from_dict(event.to_dict()) == event
        plan = FaultPlan().blackout(1.0, 2.0, ["l1"]).server_crash(0.5, None, ["s"])
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.events == plan.events


class TestPlanValidation:
    """``FaultPlan.validate()`` rejects doubled events; distinct overlaps
    stay legal because overlapping faults compose by design."""

    def test_same_object_twice_rejected(self):
        event = FaultEvent.blackout(1.0, 1.0, ["l1"])
        plan = FaultPlan([event, event])
        with pytest.raises(FaultPlanError):
            plan.validate()

    def test_equal_events_rejected(self):
        plan = (FaultPlan()
                .loss_burst(1.0, 1.0, ["l1"], loss=0.5)
                .loss_burst(1.0, 1.0, ["l1"], loss=0.5))
        with pytest.raises(FaultPlanError):
            plan.validate()

    def test_distinct_overlapping_events_are_legal(self):
        plan = (FaultPlan()
                .loss_burst(1.0, 3.0, ["l1"], loss=0.5)
                .loss_burst(2.0, 3.0, ["l1"], loss=0.5)
                .server_crash(1.0, 2.0, ["b"])
                .server_crash(2.0, 2.0, ["b"]))
        assert plan.validate() is plan

    def test_apply_validates_by_default(self):
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        event = FaultEvent.blackout(1.0, 1.0, [link])
        plan = FaultPlan([event, event])
        with pytest.raises(FaultPlanError):
            FaultInjector(net).apply(plan)
        # An explicit opt-out still exists for callers that pre-validated.
        FaultInjector(net).apply(FaultPlan([event]), validate=False)


class TestIntrospection:
    def test_timeline_and_active_faults(self):
        sim, net = two_host_net()
        link = net.path_links("a", "b")[0]
        injector = FaultInjector(net)
        event = FaultEvent.loss_burst(1.0, 2.0, [link], loss=0.2)
        injector.apply(FaultPlan().add(event))
        sim.run(until=1.5)
        assert injector.active_faults() == [event]
        sim.run(until=4.0)
        assert injector.active_faults() == []
        assert injector.outage_windows() == [(1.0, 3.0)]

    def test_path_links_helper_covers_both_directions(self):
        sim, net = two_host_net()
        links = path_links(net, "a", "b")
        names = {l.name for l in links}
        assert len(links) == 2
        assert any("down" in n for n in names) and any("up" in n for n in names)
