"""Tests for RSVP-style reservations and the guaranteed-rate queue."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import CBRSource, PacketSink
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue
from repro.transport.rsvp import AdmissionError, ReservationTable, ReservedQueue


def make_packet(flow="f", size=1000):
    return Packet(src="a", dst="b", size=size, flow=flow)


class TestReservedQueue:
    def test_reserved_flow_served_before_best_effort(self):
        q = ReservedQueue()
        q.add_reservation("vip", rate_bps=1e6)
        for _ in range(5):
            q.enqueue(make_packet("bulk"), 0.0)
        q.enqueue(make_packet("vip"), 0.0)
        assert q.dequeue(0.1).flow == "vip"

    def test_reservation_policed_by_token_bucket(self):
        q = ReservedQueue(burst_seconds=0.01)
        q.add_reservation("vip", rate_bps=8e3)  # 1000 bytes/s, burst 10 B
        q.enqueue(make_packet("vip", size=1000), 0.0)
        q.enqueue(make_packet("bulk", size=1000), 0.0)
        # No tokens accumulated yet -> best effort goes first.
        assert q.dequeue(0.001).flow == "bulk"
        # After a second, the bucket allows ~1000 bytes... but burst cap
        # is tiny, so the reserved packet is only served via the
        # work-conservation path once nothing else waits.
        assert q.dequeue(2.0).flow == "vip"

    def test_work_conservation_when_only_reserved_waits(self):
        q = ReservedQueue(burst_seconds=0.001)
        q.add_reservation("vip", rate_bps=8.0)  # absurdly small
        q.enqueue(make_packet("vip"), 0.0)
        assert q.dequeue(0.01) is not None  # link never idles

    def test_capacity_drop(self):
        q = ReservedQueue(capacity=2)
        assert q.enqueue(make_packet(), 0.0)
        assert q.enqueue(make_packet(), 0.0)
        assert not q.enqueue(make_packet(), 0.0)
        assert q.drops == 1

    def test_remove_reservation_preserves_packets(self):
        q = ReservedQueue()
        q.add_reservation("vip", rate_bps=1e6)
        q.enqueue(make_packet("vip"), 0.0)
        q.remove_reservation("vip")
        assert len(q) == 1
        assert q.dequeue(1.0) is not None

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ReservedQueue().add_reservation("x", rate_bps=0)


class TestReservationTable:
    def make_net(self, rate=10e6):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_duplex("a", "b", rate, delay=0.005, queue_down=DropTailQueue(200))
        net.build_routes()
        return sim, net

    def test_reserve_converts_queue(self):
        sim, net = self.make_net()
        table = ReservationTable(net)
        links = table.reserve_path("a", "b", "mar", 2e6)
        assert len(links) == 1
        assert isinstance(links[0].queue, ReservedQueue)
        assert links[0].queue.reserved_rate_bps() == 2e6

    def test_admission_control_rejects_overcommit(self):
        sim, net = self.make_net(rate=10e6)
        table = ReservationTable(net, admission_fraction=0.8)
        table.reserve_path("a", "b", "one", 5e6)
        with pytest.raises(AdmissionError):
            table.reserve_path("a", "b", "two", 4e6)  # 9 > 8 admittable
        # Nothing was partially installed.
        assert net.path_links("a", "b")[0].queue.reserved_rate_bps() == 5e6

    def test_release(self):
        sim, net = self.make_net()
        table = ReservationTable(net)
        table.reserve_path("a", "b", "mar", 2e6)
        table.release("mar")
        assert net.path_links("a", "b")[0].queue.reserved_rate_bps() == 0.0

    def test_reserved_flow_latency_protected_under_congestion(self):
        """A reserved MAR flow keeps low delay while bulk floods the link."""
        sim, net = self.make_net(rate=5e6)
        table = ReservationTable(net)
        table.reserve_path("a", "b", "mar-flow", 1e6)

        mar_sink = PacketSink(net["b"], 80)
        bulk_sink = PacketSink(net["b"], 81)
        CBRSource(net["a"], "b", 80, rate_bps=0.8e6, packet_size=500,
                  flow="mar-flow")
        CBRSource(net["a"], "b", 81, rate_bps=20e6, packet_size=1200,
                  flow="bulk")  # 4x overload
        sim.run(until=10.0)
        mar_delay = mar_sink.stats.mean_delay()
        bulk_delay = bulk_sink.stats.mean_delay()
        assert mar_delay < 0.02            # reservation holds
        assert bulk_delay > mar_delay * 5  # bulk eats the queueing
        # The MAR flow lost nothing.
        assert mar_sink.stats.packets_total >= 0.99 * (0.8e6 * 10 / (500 * 8))
