"""Unit tests for the graceful-degradation rate controller."""

import pytest

from repro.core.congestion import RateController


def test_budget_starts_at_initial():
    ctl = RateController(initial_bps=1e6)
    assert ctl.budget_bps == 1e6


def test_additive_increase_without_congestion():
    """Growth is ~one quantum per RTT: ten RTTs of clean feedback at
    one sample per RTT add ten quanta."""
    ctl = RateController(initial_bps=1e6, increase_quantum_bps=100_000)
    rtt = 0.02
    for i in range(10):
        ctl.on_rtt_sample(rtt, now=i * rtt)
    assert ctl.budget_bps == pytest.approx(2e6)


def test_increase_rate_invariant_to_feedback_frequency():
    """Regression for the dead-``interval`` bug: the budget used to grow
    by a full quantum per *feedback call*, so 10x more frequent feedback
    meant 10x faster growth.  Growth must be ~``increase_quantum_bps``
    per RTT at both 1x and 10x feedback rates."""
    rtt = 0.02
    horizon = 100 * rtt  # 100 RTTs of clean feedback

    def run(samples_per_rtt):
        ctl = RateController(initial_bps=1e6, increase_quantum_bps=100_000,
                             max_bps=1e12)
        step = rtt / samples_per_rtt
        n = int(horizon / step)
        for i in range(n):
            ctl.on_rtt_sample(rtt, now=(i + 1) * step)
        return ctl.budget_bps - 1e6

    grown_1x = run(1)
    grown_10x = run(10)
    expected = 100 * 100_000  # one quantum per RTT over 100 RTTs
    assert grown_1x == pytest.approx(expected, rel=0.05)
    assert grown_10x == pytest.approx(expected, rel=0.05)
    assert grown_10x == pytest.approx(grown_1x, rel=0.05)


def test_increase_elapsed_time_capped():
    """A long silent gap between clean feedbacks must not buy a burst of
    budget credit (feedback loss has its own penalty path)."""
    ctl = RateController(initial_bps=1e6, increase_quantum_bps=100_000,
                         max_bps=1e12)
    ctl.on_rtt_sample(0.02, now=0.02)
    before = ctl.budget_bps
    ctl.on_rtt_sample(0.02, now=10.0)  # ~500 RTT gap
    assert ctl.budget_bps - before <= 4 * 100_000 + 1e-6


def test_heavy_loss_triggers_multiplicative_decrease():
    ctl = RateController(initial_bps=1e6, beta=0.5)
    ctl.on_loss(0.25, now=1.0)
    assert ctl.budget_bps == pytest.approx(5e5)
    assert ctl.congestion_events == 1


def test_moderate_loss_needs_delay_corroboration():
    """Random wireless loss alone is not congestion; loss plus elevated
    queuing delay is."""
    ctl = RateController(initial_bps=1e6, delay_threshold=0.015)
    ctl.on_loss(0.05, now=1.0)
    assert ctl.budget_bps == 1e6          # no delay evidence -> ignored
    ctl.on_rtt_sample(0.020, now=1.1)     # base
    for i in range(30):
        ctl.on_rtt_sample(0.032, now=1.2 + i * 0.01)  # mild queuing
    before = ctl.budget_bps
    ctl.on_loss(0.05, now=2.0)
    assert ctl.budget_bps < before


def test_tiny_loss_ignored():
    ctl = RateController(initial_bps=1e6)
    ctl.on_loss(0.005, now=1.0)
    assert ctl.budget_bps == 1e6


def test_delay_rise_treated_as_congestion():
    ctl = RateController(initial_bps=1e6, delay_threshold=0.015)
    ctl.on_rtt_sample(0.020, now=0.0)   # establishes base
    # Queueing grows well past base + threshold.
    for i in range(20):
        ctl.on_rtt_sample(0.080, now=0.1 + i * 0.05)
    assert ctl.congestion_events >= 1
    assert ctl.budget_bps < 1e6


def test_refractory_period_limits_decreases():
    ctl = RateController(initial_bps=1e6, beta=0.5, reaction_interval=1.0)
    ctl.on_loss(0.3, now=0.0)
    ctl.on_loss(0.3, now=0.1)  # inside the refractory window
    assert ctl.budget_bps == pytest.approx(5e5)
    ctl.on_loss(0.3, now=2.0)
    assert ctl.budget_bps == pytest.approx(2.5e5)


def test_budget_floor_respected():
    ctl = RateController(initial_bps=1e6, min_bps=4e5, beta=0.1,
                         reaction_interval=0.0)
    for i in range(10):
        ctl.on_loss(0.5, now=float(i))
    assert ctl.budget_bps == 4e5


def test_budget_ceiling_respected():
    ctl = RateController(initial_bps=1e9, max_bps=1e9, increase_quantum_bps=1e8)
    ctl.on_rtt_sample(0.01, now=0.0)
    assert ctl.budget_bps == 1e9


def test_base_rtt_tracks_minimum():
    ctl = RateController()
    ctl.on_rtt_sample(0.050, 0.0)
    ctl.on_rtt_sample(0.030, 0.1)
    ctl.on_rtt_sample(0.060, 0.2)
    assert ctl.base_rtt == pytest.approx(0.030)


def test_queuing_delay_estimate():
    ctl = RateController(delay_threshold=1.0)  # disable reactions
    ctl.on_rtt_sample(0.020, 0.0)
    for i in range(50):
        ctl.on_rtt_sample(0.060, 0.1 + i * 0.01)
    assert ctl.queuing_delay == pytest.approx(0.040, abs=0.01)


def test_trace_records_changes():
    ctl = RateController()
    ctl.on_rtt_sample(0.02, 0.0)
    ctl.on_loss(0.3, 1.0)
    assert len(ctl.trace) == 2
    times = [t for t, _ in ctl.trace]
    assert times == sorted(times)


def test_invalid_rtt_ignored():
    ctl = RateController(initial_bps=1e6)
    ctl.on_rtt_sample(-0.01, 0.0)
    assert ctl.srtt is None
    assert ctl.budget_bps == 1e6
