"""Unit tests for the RTP-like stream and playout buffer."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.transport.rtp import RtpReceiver, RtpStream
from repro.transport.udp import UdpSocket


def make_net(delay=0.01, jitter=0.0, loss=0.0):
    sim = Simulator(seed=3)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("b", "a", 50e6, 50e6, delay=delay, jitter=jitter, loss=loss)
    net.build_routes()
    return sim, net


def run_stream(sim, net, n_frames=60, fps=30.0, playout=0.05, size=5000):
    receiver = RtpReceiver(net["b"], 9, playout_delay=playout)
    sock = UdpSocket(net["a"], 10)
    stream = RtpStream(sock, "b", 9)
    for i in range(n_frames):
        sim.schedule(i / fps, stream.send_frame, size)
    sim.run(until=n_frames / fps + 1.0)
    return stream, receiver


def test_frames_played_in_time_on_clean_path():
    sim, net = make_net(delay=0.01)
    stream, receiver = run_stream(sim, net)
    assert receiver.played == stream.frames_sent
    assert receiver.late == 0
    assert receiver.loss_fraction == 0.0


def test_playout_exactly_at_deadline():
    sim, net = make_net(delay=0.01)
    _, receiver = run_stream(sim, net, n_frames=5, playout=0.05)
    times = [t for t, _ in receiver.playout_log]
    # Frame i played at i/fps + playout_delay.
    for i, t in enumerate(times):
        assert t == pytest.approx(i / 30.0 + 0.05)


def test_frames_late_when_playout_too_tight():
    sim, net = make_net(delay=0.04)
    _, receiver = run_stream(sim, net, playout=0.02)
    assert receiver.late == receiver.received
    assert receiver.played == 0


def test_jitter_estimator_positive_under_jittery_path():
    sim, net = make_net(delay=0.01, jitter=0.02)
    _, receiver = run_stream(sim, net, n_frames=120, playout=0.2)
    assert receiver.jitter > 0.0


def test_loss_counted_in_loss_fraction():
    sim, net = make_net(loss=0.2)
    _, receiver = run_stream(sim, net, n_frames=200, playout=0.2)
    assert 0.05 < receiver.loss_fraction < 0.4


def test_sequence_numbers_increment():
    sim, net = make_net()
    stream, receiver = run_stream(sim, net, n_frames=10)
    assert stream.seq == 10
    assert receiver.max_seq == 9
