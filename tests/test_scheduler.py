"""Unit tests for the multipath scheduler and its three policies."""

import pytest

from repro.core.scheduler import MultipathPolicy, MultipathScheduler, PathState
from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass


def wifi_lte():
    return [
        PathState(name="wifi", srtt=0.03, is_metered=False),
        PathState(name="lte", srtt=0.07, is_metered=True),
    ]


def spec(traffic_class=TrafficClass.FULL_BEST_EFFORT, priority=Priority.LOWEST,
         deadline=0.075):
    return StreamSpec(
        stream_id=1, name="s", traffic_class=traffic_class, priority=priority,
        nominal_rate_bps=1e6, deadline=deadline,
    )


def msg():
    return Message(stream_id=1, seq=0, size=1000, created_at=0.0, deadline=0.075)


def test_needs_at_least_one_path():
    with pytest.raises(ValueError):
        MultipathScheduler([], MultipathPolicy.AGGREGATE)


class TestWifiPreferred:
    def test_uses_wifi_when_available(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_PREFERRED)
        chosen = sched.select(spec(), msg())
        assert [p.name for p in chosen] == ["wifi"]

    def test_falls_back_to_lte_when_wifi_down(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_PREFERRED)
        sched.set_usable("wifi", False)
        chosen = sched.select(spec(), msg())
        assert [p.name for p in chosen] == ["lte"]

    def test_nothing_when_all_down(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_PREFERRED)
        sched.set_usable("wifi", False)
        sched.set_usable("lte", False)
        assert sched.select(spec(), msg()) == []


class TestWifiOnlyHandover:
    def test_wifi_when_up(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_ONLY_HANDOVER)
        assert [p.name for p in sched.select(spec(), msg())] == ["wifi"]

    def test_lte_bridges_gap(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_ONLY_HANDOVER)
        sched.set_usable("wifi", False)
        assert [p.name for p in sched.select(spec(), msg())] == ["lte"]


class TestAggregate:
    def test_latency_critical_takes_lowest_rtt(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.AGGREGATE)
        critical = spec(priority=Priority.HIGHEST, deadline=0.05)
        chosen = sched.select(critical, msg())
        assert [p.name for p in chosen] == ["wifi"]

    def test_lowest_rtt_follows_observations(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.AGGREGATE)
        for _ in range(60):
            sched.observe_rtt("wifi", 0.2)   # WiFi got congested
            sched.observe_rtt("lte", 0.03)
        critical = spec(priority=Priority.HIGHEST, deadline=0.05)
        assert [p.name for p in sched.select(critical, msg())] == ["lte"]

    def test_loss_recovery_duplicated_on_two_paths(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.AGGREGATE)
        ref = spec(traffic_class=TrafficClass.LOSS_RECOVERY, priority=Priority.HIGHEST)
        chosen = sched.select(ref, msg())
        assert sorted(p.name for p in chosen) == ["lte", "wifi"]

    def test_bulk_load_balanced_over_both(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.AGGREGATE)
        bulk = spec(priority=Priority.LOWEST, deadline=1.0)
        used = set()
        for _ in range(50):
            used.update(p.name for p in sched.select(bulk, msg()))
        assert used == {"wifi", "lte"}


class TestAccounting:
    def test_bytes_counted_per_path(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_PREFERRED)
        for _ in range(10):
            sched.select(spec(), msg())
        assert sched.paths["wifi"].bytes_sent == 10_000
        assert sched.paths["lte"].bytes_sent == 0

    def test_metered_fraction(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.WIFI_PREFERRED)
        sched.select(spec(), msg())
        sched.set_usable("wifi", False)
        sched.select(spec(), msg())
        assert sched.metered_fraction() == pytest.approx(0.5)

    def test_metered_fraction_empty(self):
        sched = MultipathScheduler(wifi_lte(), MultipathPolicy.AGGREGATE)
        assert sched.metered_fraction() == 0.0

    def test_observe_rtt_smooths(self):
        path = PathState(name="x", srtt=0.1)
        path.observe_rtt(0.2)
        assert 0.1 < path.srtt < 0.2
