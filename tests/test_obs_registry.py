"""Tests for the per-Simulator metrics registry.

The property that matters for the fleet: merging per-shard registries
must be **order-independent** — exact for counters and histogram bins,
up to float reassociation for the Welford moments — because parallel
campaign shards complete in nondeterministic order while the merged
report must stay byte-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import (
    Aggregate,
    aggregate_from_registry,
    approx_equal_moments,
)
from repro.obs.registry import MetricsRegistry, merge_registries

finite = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
chunks = st.lists(st.lists(finite, min_size=1, max_size=20),
                  min_size=1, max_size=6)


def fill(reg: MetricsRegistry, values) -> MetricsRegistry:
    for v in values:
        reg.counter("events").inc()
        reg.gauge("depth").set(v)
        reg.histogram("latency", 0.0, 100.0, 50).observe(v)
    return reg


class TestPrimitives:
    def test_counter_inc_and_negative_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("frames")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_gauge_tracks_last_and_moments(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue.bytes")
        for v in (10.0, 30.0, 20.0):
            g.set(v)
        assert g.value == 20.0
        assert g.moments.count == 3
        assert g.moments.maximum == 30.0

    def test_histogram_percentiles_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", 0.0, 1.0, 100)
        for i in range(100):
            h.observe(i / 100.0)
        assert h.count == 100
        assert h.mean == pytest.approx(0.495, abs=0.01)
        assert h.percentile(50) == pytest.approx(0.5, abs=0.02)
        assert h.percentile(95) == pytest.approx(0.95, abs=0.02)


class TestMergeOrderIndependence:
    @given(chunks)
    @settings(max_examples=100)
    def test_merge_matches_onepass(self, parts):
        onepass = fill(MetricsRegistry(), [v for part in parts for v in part])
        merged = merge_registries(fill(MetricsRegistry(), part)
                                  for part in parts)
        assert merged.counters["events"].value == \
            onepass.counters["events"].value
        assert merged.histograms["latency"].bins.bins == \
            onepass.histograms["latency"].bins.bins
        assert approx_equal_moments(merged.histograms["latency"].moments,
                                    onepass.histograms["latency"].moments)
        assert approx_equal_moments(merged.gauges["depth"].moments,
                                    onepass.gauges["depth"].moments)

    @given(chunks)
    @settings(max_examples=100)
    def test_reversed_merge_is_order_independent(self, parts):
        """Reversing the merge order must not change the result —
        exactly for counters and bins, up to float reassociation for
        moments (which is why the fleet still merges shards in index
        order before serializing).  Gauges serialize their moments, not
        the last-written value, precisely so this holds.
        """
        forward = merge_registries(fill(MetricsRegistry(), part)
                                   for part in parts)
        reverse = merge_registries(fill(MetricsRegistry(), part)
                                   for part in reversed(parts))
        assert forward.counters["events"].value == \
            reverse.counters["events"].value
        assert forward.histograms["latency"].bins == \
            reverse.histograms["latency"].bins
        assert approx_equal_moments(forward.histograms["latency"].moments,
                                    reverse.histograms["latency"].moments)
        assert approx_equal_moments(forward.gauges["depth"].moments,
                                    reverse.gauges["depth"].moments)

    @given(chunks)
    @settings(max_examples=50)
    def test_aggregate_lift_is_order_independent(self, parts):
        """Registries lifted into fleet Aggregates merge the same way."""
        def lift(ordered):
            agg = Aggregate()
            for part in ordered:
                agg.merge(aggregate_from_registry(
                    fill(MetricsRegistry(), part)))
            return agg

        forward, reverse = lift(parts), lift(list(reversed(parts)))
        assert forward.counts == reverse.counts
        assert forward.histograms["obs.latency"].bins == \
            reverse.histograms["obs.latency"].bins
        assert approx_equal_moments(forward.moments["obs.latency"],
                                    reverse.moments["obs.latency"])


class TestSerialization:
    def test_json_round_trip(self):
        reg = fill(MetricsRegistry(), [1.0, 2.0, 50.0])
        clone = MetricsRegistry.from_json(reg.to_json())
        assert clone == reg
        assert clone.to_json() == reg.to_json()

    def test_canonical_json_is_byte_stable(self):
        a = fill(MetricsRegistry(), [3.0, 1.0])
        b = fill(MetricsRegistry(), [3.0, 1.0])
        assert a.to_json() == b.to_json()

    def test_merged_registry_round_trips_through_aggregate(self):
        reg = fill(MetricsRegistry(), [5.0, 15.0, 25.0])
        agg = aggregate_from_registry(reg)
        assert agg.counts["obs.events"] == 3
        assert agg.histograms["obs.latency"].total == 3
        # Lifted histogram preserves binning, so percentiles agree.
        assert agg.histograms["obs.latency"].p50 == \
            pytest.approx(reg.histogram("latency").percentile(50))
