"""Fluid background population model: determinism, aggregation, merge."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import Aggregate, approx_equal_moments
from repro.scale.population import (
    CellProcess,
    CellSpec,
    profile_by_name,
    run_cell,
)
from repro.simnet.engine import Simulator


def make_spec(cell_id=0, load=0.8, profile="LTE", dt=0.5, **kwargs):
    p = profile_by_name(profile)
    capacity = p.up_mean * 4.0
    capacity_users = capacity / 2e5
    defaults = dict(
        cell_id=cell_id,
        profile=profile,
        initial_users=load * capacity_users,
        arrival_rate=load * capacity_users / 30.0,
        mean_holding=30.0,
        demand_up_bps=2e5,
        capacity_up_bps=capacity,
        dt=dt,
    )
    defaults.update(kwargs)
    return CellSpec(**defaults)


class TestCellSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(dt=0.0)
        with pytest.raises(ValueError):
            make_spec(mean_holding=0.0)
        with pytest.raises(ValueError):
            make_spec(capacity_up_bps=0.0)

    def test_capacity_users(self):
        spec = make_spec()
        assert spec.capacity_users == pytest.approx(
            spec.capacity_up_bps / spec.demand_up_bps)

    def test_unknown_profile_raises(self):
        spec = make_spec(profile="LTE")
        object.__setattr__(spec, "profile", "nope")
        with pytest.raises(KeyError):
            profile_by_name("nope")


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        a = run_cell(make_spec(), seed=5, duration=60.0)
        b = run_cell(make_spec(), seed=5, duration=60.0)
        assert a.timeline.samples == b.timeline.samples
        assert a.aggregate().to_json() == b.aggregate().to_json()

    def test_different_seed_different_timeline(self):
        a = run_cell(make_spec(), seed=5, duration=60.0)
        b = run_cell(make_spec(), seed=6, duration=60.0)
        assert a.timeline.samples != b.timeline.samples

    def test_cells_independent_of_simulator_sharing(self):
        # A cell's draws come from child_rng(f"scale.cell.{id}"), so its
        # trajectory must not depend on which other cells share the sim.
        alone = run_cell(make_spec(cell_id=3), seed=9, duration=30.0)
        sim = Simulator(seed=9)
        p_other = CellProcess(sim, make_spec(cell_id=1))
        p_three = CellProcess(sim, make_spec(cell_id=3))
        sim.run(until=30.0)
        assert p_three.timeline.samples == alone.timeline.samples
        assert p_other.timeline.samples != p_three.timeline.samples


class TestTimeline:
    def test_accounting_integrals(self):
        process = run_cell(make_spec(load=1.3), seed=2, duration=120.0)
        tl = process.timeline
        assert tl.user_seconds > 0
        assert tl.arrivals > 0
        assert tl.distinct_users >= int(tl.spec.initial_users)
        assert 0.0 <= tl.service_fraction <= 1.0
        # overloaded cell must shed something
        assert tl.blocked_user_seconds > 0
        assert tl.service_fraction < 1.0

    def test_zero_load_cell_is_flat(self):
        spec = make_spec(load=0.0, burstiness=0.0, diurnal_amplitude=0.0)
        tl = run_cell(spec, seed=4, duration=30.0).timeline
        assert all(rho == 0.0 for _t, _n, rho in tl.samples)
        assert tl.service_fraction == 1.0
        assert tl.mean_utilization(0.0, 30.0) == 0.0

    def test_window_and_utilization_at(self):
        tl = run_cell(make_spec(), seed=7, duration=20.0).timeline
        t_mid, _n, rho_mid = tl.samples[len(tl.samples) // 2]
        assert tl.utilization_at(t_mid) == rho_mid
        window = tl.window(t_mid, t_mid + 5.0)
        assert window[0] == (t_mid, rho_mid)
        assert all(t_mid <= t < t_mid + 5.0 for t, _ in window)
        # piecewise-constant mean sits inside the sample range
        rhos = [r for _t, r in window]
        assert min(rhos) <= tl.mean_utilization(t_mid, t_mid + 5.0) <= max(rhos)

    def test_mar_ready_fraction_bounds(self):
        quiet = run_cell(make_spec(profile="5G(KPI)", load=0.0,
                                   burstiness=0.0, diurnal_amplitude=0.0),
                         seed=1, duration=20.0)
        busy = run_cell(make_spec(profile="5G(KPI)", load=1.4),
                        seed=1, duration=20.0)
        assert quiet.timeline.mar_ready_fraction() == 1.0
        assert 0.0 <= busy.timeline.mar_ready_fraction() \
            <= quiet.timeline.mar_ready_fraction()


class TestAggregation:
    def test_aggregate_keys(self):
        agg = run_cell(make_spec(), seed=3, duration=60.0).aggregate()
        assert agg.counts["scale.cells"] == 1
        assert agg.counts["scale.users"] > 0
        assert agg.counts["obs.scale.cells"] == 1          # registry lift
        assert agg.counts["obs.scale.users"] == agg.counts["scale.users"]
        assert "scale.utilization" in agg.moments
        assert "obs.scale.utilization" in agg.histograms
        assert agg.moments["scale.utilization"].count == len(
            agg.histograms["obs.scale.utilization"].bins) \
            or agg.moments["scale.utilization"].count > 0

    def test_registry_feed_counts_match_timeline(self):
        process = run_cell(make_spec(load=1.2), seed=8, duration=60.0)
        reg = process.registry()
        tl = process.timeline
        assert reg.counters["scale.fluid_steps"].value == len(tl.samples)
        assert reg.counters["scale.users"].value == tl.distinct_users
        contended = reg.counters["scale.contended_samples"].value
        overloaded = reg.counters["scale.overloaded_samples"].value
        assert 0 <= overloaded <= contended <= len(tl.samples)

    @settings(max_examples=25, deadline=None)
    @given(seeds=st.lists(st.integers(0, 2**16), min_size=2, max_size=6),
           order_seed=st.integers(0, 2**16))
    def test_cell_aggregates_merge_order_independently(self, seeds, order_seed):
        """The hypothesis property the hierarchical shard map relies on:
        merging per-cell fluid aggregates in any order gives identical
        counts/histograms and float-tolerant-identical moments."""
        aggs = [run_cell(make_spec(cell_id=i), seed=s, duration=20.0).aggregate()
                for i, s in enumerate(seeds)]

        forward = Aggregate()
        for a in aggs:
            forward.merge(a)
        shuffled = list(aggs)
        random.Random(order_seed).shuffle(shuffled)
        other = Aggregate()
        for a in shuffled:
            other.merge(a)

        assert forward.counts == other.counts
        assert forward.histograms.keys() == other.histograms.keys()
        for name in forward.histograms:
            assert forward.histograms[name].bins == other.histograms[name].bins
        assert forward.moments.keys() == other.moments.keys()
        for name in forward.moments:
            assert approx_equal_moments(forward.moments[name],
                                        other.moments[name])
