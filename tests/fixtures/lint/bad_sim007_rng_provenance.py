"""Seeded-violation fixture for SIM007 (RNG provenance taint).

Linted under a synthetic sim-domain path by the tests and the CI
seeded-violation gate; never imported.  Expected findings: the
process-global fallback inside ``jitter`` (which receives a seeded
``child_rng`` interprocedurally) and the two module-level escapes.
"""

import random

_RNG = random.Random(1234)          # escape: module-level seeded stream
_POOL = {}


def jitter(rng, spread):
    # Receives sim.child_rng(...) from drive(), then falls back to the
    # process-global stream anyway.
    return rng.uniform(0.0, spread) + random.random()


def install(sim, key):
    # Escape: a per-run stream parked in module-level storage.
    _POOL[key] = sim.child_rng(f"pool:{key}")


def drive(sim, spread):
    rng = sim.child_rng("fixture.jitter")
    return jitter(rng, spread)
