"""Seeded-violation fixture for SIM010 (checkpoint safety).

``Session`` is a Checkpoint deepcopy root (via ``sim.checkpoint``):
its generator field, open-file field, and the controller instance that
``Chooser.__deepcopy__`` silently drops must all be flagged.  The
store into ``Chooser.controller`` itself is the designed opt-out and
must stay clean.
"""


class ScriptController:
    def __init__(self, script):
        self.script = list(script)


class Chooser:
    def __init__(self):
        self.controller = ScriptController([])
        self.trail = []

    def __deepcopy__(self, memo):
        fresh = Chooser()
        fresh.trail = list(self.trail)     # controller deliberately dropped
        return fresh


class Session:
    def __init__(self, sim, frames, script):
        self.chooser = Chooser()
        self.pending = (f for f in frames)          # generator field
        self.log = open("session.log", "w")         # open OS resource
        self.backup = ScriptController(script)      # dropped-type alias


def explore(sim, frames, script):
    session = Session(sim, frames, script)
    # Designed opt-out: storing into the dropping field is allowed.
    session.chooser.controller = ScriptController(script)
    return sim.checkpoint(session)
