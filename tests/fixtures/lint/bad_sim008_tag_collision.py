"""Seeded-violation fixture for SIM008 (child_rng tag collision).

Two distinct call sites build the same ``radio:{cell}`` tag, so both
streams are byte-identical for every cell; a third site constructs an
overlapping tag through ``str.format`` indirection.  Expected: at
least one SIM008 finding naming the colliding pair.
"""


class Radio:
    def __init__(self, sim, cell):
        self.rx_rng = sim.child_rng(f"radio:{cell}")
        self.tx_rng = sim.child_rng(f"radio:{cell}")   # same (seed, tag)


def attach_probe(sim, cell):
    tag = "radio:{}".format(cell)
    return sim.child_rng(tag)                          # collides too
