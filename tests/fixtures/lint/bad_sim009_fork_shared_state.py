"""Seeded-violation fixture for SIM009 (fork-shared mutable state).

Module-level and class-level containers mutated from functions a fleet
worker can reach (this file has no worker entry points, so the
standalone fallback treats every function as reachable).  Expected
findings: the ``_CACHE`` store, the ``global`` rebind, and the
class-attribute append.
"""

_CACHE = {}
_TOTALS = None


def lookup(sim, key):
    if key not in _CACHE:
        _CACHE[key] = sim.now              # leaks across warm shards
    return _CACHE[key]


def reset_totals(value):
    global _TOTALS
    _TOTALS = value                        # module rebind from sim code


class Recorder:
    seen = []                              # class-level, never rebound

    def record(self, item):
        self.seen.append(item)             # shared by every instance
