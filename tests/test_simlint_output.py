"""Output formats, diff mode, and parallel execution.

SARIF shape validation (satellite: "validate the SARIF shape in a
test"), GitHub workflow-command rendering, the pure-stdlib unified-diff
parser behind ``--diff``, and serial-vs-parallel byte-identity of
``lint_paths``.
"""

import json
import subprocess

import pytest

from repro.lint import (
    Finding,
    lint_paths,
    parse_unified_diff,
    render_github,
    to_sarif,
)
from repro.lint.cli import main as lint_main
from repro.lint.gitdiff import DiffError, changed_lines

FINDINGS = [
    Finding(path="src/repro/simnet/a.py", line=3, col=5, rule="SIM001",
            message="draws from the process-global RNG"),
    Finding(path="src/repro/scale/b.py", line=12, col=1, rule="SIM008",
            message="tag can collide, 100%: no\nreally"),
]


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_shape_is_valid_2_1_0():
    log = to_sarif(FINDINGS, files_checked=42)
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-2.1.0.json")
    assert len(log["runs"]) == 1
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"SIM001", "SIM008", "SIM010"} <= set(rule_ids)
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["fullDescription"]["text"]
    assert run["properties"]["filesChecked"] == 42
    assert len(run["results"]) == len(FINDINGS)
    for result, finding in zip(run["results"], FINDINGS):
        assert result["ruleId"] == finding.rule
        assert driver["rules"][result["ruleIndex"]]["id"] == finding.rule
        assert result["level"] == "error"
        assert result["message"]["text"] == finding.message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == finding.path
        assert location["region"]["startLine"] == finding.line
        assert location["region"]["startColumn"] == finding.col
    # The whole log must be JSON-serializable as-is.
    json.loads(json.dumps(log))


def test_sarif_includes_parse_error_pseudo_rule():
    errors = [Finding(path="x.py", line=1, col=1, rule="SIM000",
                      message="could not parse: bad")]
    log = to_sarif(errors)
    ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
    assert "SIM000" in ids


# ----------------------------------------------------------------------
# GitHub workflow commands
# ----------------------------------------------------------------------
def test_github_rendering_escapes_message_data():
    lines = render_github(FINDINGS)
    assert lines[0].startswith(
        "::error file=src/repro/simnet/a.py,line=3,col=5,")
    assert "title=simlint SIM001" in lines[0]
    # Newlines and percent signs in the message must be escaped.
    assert "\n" not in lines[1]
    assert "100%25" in lines[1]
    assert "%0A" in lines[1]


# ----------------------------------------------------------------------
# Unified-diff parsing (--diff)
# ----------------------------------------------------------------------
DIFF_TEXT = """\
diff --git a/src/repro/simnet/a.py b/src/repro/simnet/a.py
index 1111111..2222222 100644
--- a/src/repro/simnet/a.py
+++ b/src/repro/simnet/a.py
@@ -10,0 +11,3 @@ def f():
+x = 1
+y = 2
+z = 3
@@ -20 +24 @@ def g():
-old = 0
+new = 1
diff --git a/gone.py b/gone.py
deleted file mode 100644
--- a/gone.py
+++ /dev/null
@@ -1,5 +0,0 @@
-dead
diff --git a/src/only_del.py b/src/only_del.py
--- a/src/only_del.py
+++ b/src/only_del.py
@@ -7,2 +6,0 @@
-a
-b
"""


def test_parse_unified_diff_hunks_and_defaults():
    changed = parse_unified_diff(DIFF_TEXT)
    assert changed == {"src/repro/simnet/a.py": {11, 12, 13, 24}}


def test_parse_unified_diff_empty_input():
    assert parse_unified_diff("") == {}


def test_changed_lines_bad_ref_raises(tmp_path):
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    with pytest.raises(DiffError):
        changed_lines("no-such-ref-xyz", cwd=tmp_path)


def test_cli_diff_mode_end_to_end(tmp_path, capsys, monkeypatch):
    repo = tmp_path
    pkg = repo / "src" / "repro" / "simnet"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text("import random\nx = random.random()\n",
                      encoding="utf-8")
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
    subprocess.run(["git", "init", "-q", "."], cwd=repo, check=True)
    subprocess.run(["git", "add", "-A"], cwd=repo, check=True)
    subprocess.run(["git", "commit", "-qm", "seed"], cwd=repo,
                   check=True, env={**env, "HOME": str(repo)})
    # Append a *new* violation; the pre-existing one must be filtered.
    target.write_text(
        "import random\nx = random.random()\ny = random.random()\n",
        encoding="utf-8")
    monkeypatch.chdir(repo)
    code = lint_main(["src", "--diff", "HEAD", "--format", "json",
                      "--jobs", "1"])
    out = json.loads(capsys.readouterr().out)
    assert code == 1
    assert [f["line"] for f in out["findings"]] == [3]
    assert out["diff_dropped"] == 1


# ----------------------------------------------------------------------
# Parallel byte-identity
# ----------------------------------------------------------------------
def test_parallel_findings_identical_to_serial(tmp_path):
    pkg = tmp_path / "src" / "repro" / "simnet"
    pkg.mkdir(parents=True)
    for i in range(30):
        body = "import random\n"
        if i % 3 == 0:
            body += f"x{i} = random.random()\n"
        else:
            body += f"x{i} = {i}\n"
        (pkg / f"mod_{i:02d}.py").write_text(body, encoding="utf-8")
    (pkg / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    serial, checked_s = lint_paths([str(tmp_path / "src")],
                                   root=tmp_path, jobs=1)
    parallel, checked_p = lint_paths([str(tmp_path / "src")],
                                     root=tmp_path, jobs=4)
    assert checked_s == checked_p == 31
    assert serial == parallel
    assert any(f.rule == "SIM000" for f in serial)
    assert sum(1 for f in serial if f.rule == "SIM001") == 10
