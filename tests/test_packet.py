"""Unit tests for the packet model."""

import pytest

from repro.simnet.packet import IP_TCP_HEADER, IP_UDP_HEADER, Packet


def test_positive_size_required():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", size=0)


def test_default_flow_label():
    p = Packet(src="a", dst="b", size=100, src_port=1, dst_port=2)
    assert p.flow == "a:1->b:2"


def test_explicit_flow_label_kept():
    p = Packet(src="a", dst="b", size=100, flow="video")
    assert p.flow == "video"


def test_bits_property():
    assert Packet(src="a", dst="b", size=125).bits == 1000


def test_age():
    p = Packet(src="a", dst="b", size=10, created_at=1.0)
    assert p.age(3.5) == pytest.approx(2.5)


def test_uids_unique_and_increasing():
    a = Packet(src="a", dst="b", size=1)
    b = Packet(src="a", dst="b", size=1)
    assert b.uid > a.uid


def test_copy_gets_fresh_uid_and_isolated_payload():
    p = Packet(src="a", dst="b", size=10, payload={"k": 1})
    q = p.copy()
    assert q.uid != p.uid
    q.payload["k"] = 2
    assert p.payload["k"] == 1


def test_copy_overrides():
    p = Packet(src="a", dst="b", size=10)
    q = p.copy(dst="c", size=20)
    assert (q.dst, q.size) == ("c", 20)
    assert q.src == "a"


def test_header_constants():
    assert IP_UDP_HEADER == 28
    assert IP_TCP_HEADER == 40
