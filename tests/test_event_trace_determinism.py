"""Byte-identical event-trace determinism.

The engine optimizations (lazy-deletion compaction, reschedule-in-place,
kwargs-free fast path) must be invisible to the simulation: a seeded run
is a pure function of its seed, and the exact sequence of fired events —
``(time, seq, fn-qualname)`` — must replay identically run after run,
and must not depend on heap-compaction tuning (compaction only discards
cancelled entries; pop order is the total order ``(time, seq)``).

Two workloads are traced:

- a TCP bulk transfer over a lossy, jittery duplex link — the classic
  RTO-re-arm churn pattern the reschedule API optimises;
- the A10-style resilient failover scenario — heartbeats, backoff
  timers, breaker probes and fault injection all at once.
"""

import hashlib

from repro.core.session import ScenarioBuilder
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, ResilientOffloadExecutor
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector, FaultPlan
from repro.simnet.network import Network
from repro.transport.tcp import TcpConnection, TcpListener


def _attach_trace(sim):
    log = []

    def hook(event):
        name = getattr(event.fn, "__qualname__", repr(event.fn))
        log.append(f"{event.time!r},{event.seq},{name}")

    sim.trace_hook = hook
    return log


def _digest(log):
    return hashlib.sha256("\n".join(log).encode()).hexdigest()


def run_tcp_trace(seed, compact_min=64, compact_ratio=0.5):
    sim = Simulator(seed=seed, compact_min=compact_min,
                    compact_ratio=compact_ratio)
    log = _attach_trace(sim)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("a", "b", 8e6, 2e6, delay=0.02, jitter=0.004, loss=0.02)
    net.build_routes()
    TcpListener(net["a"], 80)
    conn = TcpConnection(net["b"], 5000, "a", 80)
    conn.on_established = lambda: conn.send(400_000)
    conn.connect()
    # Windowed run loop: exactly the pattern that used to accumulate
    # cancelled RTO timers across windows.
    for _ in range(10):
        sim.run(until=sim.now + 1.0)
    return log, conn.snd_una


def run_failover_trace(seed):
    scenario = ScenarioBuilder(seed=seed).edge_failover()
    log = _attach_trace(scenario.sim)
    radio_links = [l for l in scenario.net.links if "client" in l.name]
    plan = (
        FaultPlan()
        .server_crash(2.0, 4.0, [scenario.server])
        .blackout(4.0, 1.5, radio_links)
    )
    FaultInjector(scenario.net).apply(plan)
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers,
        APP_ARCHETYPES["orientation"], FullOffload(), SMARTPHONE,
    )
    result = executor.run(n_frames=120, settle=2.0)
    return log, (result.frames_sent, result.frames_completed,
                 tuple(executor.metrics.mode_timeline))


def test_tcp_trace_is_byte_identical_across_runs():
    log1, una1 = run_tcp_trace(7)
    log2, una2 = run_tcp_trace(7)
    assert una1 == una2
    assert una1 > 0  # the transfer made real progress
    assert len(log1) > 1000  # a non-trivial amount of events fired
    assert _digest(log1) == _digest(log2)
    assert log1 == log2


def test_tcp_trace_differs_across_seeds():
    log1, _ = run_tcp_trace(7)
    log2, _ = run_tcp_trace(8)
    assert _digest(log1) != _digest(log2)


def test_compaction_tuning_does_not_change_the_trace():
    """Aggressive vs. effectively-disabled compaction: identical log."""
    eager, _ = run_tcp_trace(7, compact_min=4, compact_ratio=0.01)
    lazy, _ = run_tcp_trace(7, compact_min=1 << 30, compact_ratio=1.0)
    assert eager == lazy


def test_failover_trace_is_byte_identical_across_runs():
    log1, fp1 = run_failover_trace(101)
    log2, fp2 = run_failover_trace(101)
    assert fp1 == fp2
    assert len(log1) > 1000
    assert _digest(log1) == _digest(log2)
    assert log1 == log2
