"""Tests for statistics and report-rendering helpers."""

import math

import pytest

from repro.analysis.report import Figure, ascii_table, format_rate, format_time
from repro.analysis.stats import mean, percentile, stddev, summarize, timeseries_bins


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_nan(self):
        assert math.isnan(mean([]))

    def test_stddev_constant_zero(self):
        assert stddev([5.0, 5.0, 5.0]) == 0.0

    def test_stddev_sample(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.138, abs=0.01)

    def test_percentile_interpolates(self):
        data = [0.0, 10.0]
        assert percentile(data, 50) == 5.0

    def test_percentile_bounds(self):
        data = [1.0, 2.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0
        with pytest.raises(ValueError):
            percentile(data, 101)

    def test_summarize(self):
        s = summarize(list(range(101)))
        assert s.n == 101
        assert s.p50 == 50
        assert s.minimum == 0 and s.maximum == 100

    def test_summarize_empty(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_timeseries_bins(self):
        samples = [(0.1, 1.0), (0.2, 3.0), (1.5, 10.0)]
        bins = timeseries_bins(samples, 1.0)
        assert bins == [(0.0, 2.0), (1.0, 10.0)]

    def test_timeseries_bins_validation(self):
        with pytest.raises(ValueError):
            timeseries_bins([], 0.0)


class TestFormatting:
    def test_format_rate_units(self):
        assert format_rate(1.5e9) == "1.50 Gb/s"
        assert format_rate(12e6) == "12.00 Mb/s"
        assert format_rate(2_000) == "2.00 Kb/s"
        assert format_rate(500) == "500 b/s"

    def test_format_time_units(self):
        assert format_time(1.5) == "1.50 s"
        assert format_time(0.0123) == "12.3 ms"
        assert format_time(2e-5) == "20 µs"

    def test_ascii_table_alignment(self):
        out = ascii_table(["name", "v"], [["a", 1], ["longer", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_ascii_table_empty_rows(self):
        out = ascii_table(["x"], [])
        assert "x" in out


class TestFigure:
    def test_render_contains_series_glyphs(self):
        fig = Figure("demo", width=40, height=8)
        fig.add_series("up", [(0, 0), (1, 1), (2, 2)])
        fig.add_series("down", [(0, 2), (1, 1), (2, 0)])
        out = fig.render()
        assert "demo" in out
        assert "*=up" in out and "o=down" in out
        assert "*" in out and "o" in out

    def test_render_empty(self):
        assert "(no data)" in Figure("empty").render()

    def test_render_flat_series(self):
        fig = Figure("flat", width=20, height=4)
        fig.add_series("s", [(0, 5.0), (1, 5.0)])
        out = fig.render()
        assert "*" in out


class TestLinkTable:
    def test_link_table_separates_queue_and_wire_drops(self):
        from repro.analysis.report import link_table
        from repro.simnet.engine import Simulator
        from repro.simnet.link import Link
        from repro.simnet.packet import Packet
        from repro.simnet.queues import DropTailQueue

        class Sink:
            def __init__(self, name):
                self.name = name
            def add_interface(self, link):
                pass
            def receive(self, packet, via=None):
                pass

        sim = Simulator(seed=3)
        link = Link(sim, Sink("a"), Sink("b"), rate_bps=1e9, loss=0.3,
                    queue=DropTailQueue(capacity=10))
        for _ in range(50):
            link.send(Packet(src="a", dst="b", size=100))
        sim.run()
        text = link_table([link], elapsed=1.0)
        assert "queue drops" in text
        assert "wire lost" in text
        assert str(link.queue_drops) in text
        assert str(link.packets_lost) in text

    def test_link_table_goodput_uses_delivered_bytes(self):
        from repro.analysis.report import format_rate, link_table
        from repro.simnet.engine import Simulator
        from repro.simnet.link import Link
        from repro.simnet.packet import Packet

        class Sink:
            def __init__(self, name):
                self.name = name
            def add_interface(self, link):
                pass
            def receive(self, packet, via=None):
                pass

        sim = Simulator()
        link = Link(sim, Sink("a"), Sink("b"), rate_bps=1e6)
        link.send(Packet(src="a", dst="b", size=12500))
        sim.run()
        text = link_table([link], elapsed=1.0)
        assert format_rate(12500 * 8) in text


class TestIterableInputs:
    """Summary helpers accept arbitrary iterables, not just sequences."""

    def test_mean_of_generator(self):
        assert mean(x for x in [1.0, 2.0, 3.0]) == 2.0

    def test_stddev_of_generator(self):
        assert stddev(x for x in [5.0, 5.0]) == 0.0

    def test_percentile_of_generator(self):
        assert percentile((x for x in [0.0, 10.0]), 50) == 5.0

    def test_summarize_generator(self):
        s = summarize(float(x) for x in range(11))
        assert s.n == 11 and s.p50 == 5.0

    def test_timeseries_bins_generator(self):
        bins = timeseries_bins(((t / 10, 1.0) for t in range(20)), 1.0)
        assert bins == [(0.0, 1.0), (1.0, 1.0)]


class TestTimeseriesBinsShardSummaries:
    """timeseries_bins reduces mergeable shard summaries by merging."""

    def test_moments_merge_per_bin(self):
        from repro.fleet.aggregate import StreamingMoments

        early = StreamingMoments().extend([1.0, 3.0])
        late_a = StreamingMoments().extend([10.0])
        late_b = StreamingMoments().extend([20.0, 30.0])
        bins = timeseries_bins(
            [(0.2, early), (1.1, late_a), (1.9, late_b)], 1.0)
        assert [t for t, _ in bins] == [0.0, 1.0]
        assert bins[0][1].count == 2 and bins[0][1].mean == 2.0
        assert bins[1][1].count == 3 and bins[1][1].mean == 20.0

    def test_inputs_not_mutated(self):
        from repro.fleet.aggregate import StreamingMoments

        a = StreamingMoments().extend([1.0])
        b = StreamingMoments().extend([2.0])
        timeseries_bins([(0.0, a), (0.5, b)], 1.0)
        assert a.count == 1 and b.count == 1


class TestPercentileDedupe:
    """core.metrics._percentile is now the analysis.stats implementation."""

    def test_same_object(self):
        from repro.core.metrics import _percentile

        assert _percentile is percentile

    def test_bit_identical_outputs(self):
        from repro.core.metrics import _percentile

        cases = [
            ([0.0, 10.0], 50.0),
            ([1.0, 2.0, 3.0, 4.0], 95.0),
            ([0.25] * 7, 37.5),          # constant data: exact, no drift
            (sorted([3.7, 1.2, 9.9, 0.4, 5.5]), 99.0),
        ]
        for data, q in cases:
            assert _percentile(list(data), q) == percentile(list(data), q)
        assert math.isnan(_percentile([], 50.0))
