"""Tests for MPEG-TS-style multiplexing with interleaved FEC."""

import pytest

from repro.transport.mpegts import TS_PAYLOAD_BYTES, TsDemux, TsMux


def mux_stream(rows=4, cols=4, pids=(1,), bytes_per_pid=None):
    mux = TsMux(rows=rows, cols=cols)
    nbytes = bytes_per_pid or rows * cols * TS_PAYLOAD_BYTES
    for pid in pids:
        mux.push(pid, nbytes)
    mux.flush()
    return mux, mux.take()


class TestMux:
    def test_packetization_count(self):
        mux, packets = mux_stream(rows=2, cols=2,
                                  bytes_per_pid=4 * TS_PAYLOAD_BYTES)
        data = [p for p in packets if not p.is_parity]
        parity = [p for p in packets if p.is_parity]
        assert len(data) == 4
        assert len(parity) == 2  # one per column

    def test_partial_final_packet(self):
        mux = TsMux(rows=2, cols=2)
        mux.push(1, TS_PAYLOAD_BYTES + 10)
        mux.flush()
        packets = mux.take()
        data = [p for p in packets if not p.is_parity]
        assert data[0].payload_bytes == TS_PAYLOAD_BYTES
        assert data[1].payload_bytes == 10

    def test_multiplexes_multiple_pids(self):
        mux, packets = mux_stream(pids=(1, 2), rows=2, cols=2,
                                  bytes_per_pid=2 * TS_PAYLOAD_BYTES)
        pids = {p.pid for p in packets if not p.is_parity}
        assert pids == {1, 2}

    def test_overhead_ratio(self):
        mux, _ = mux_stream(rows=4, cols=4)
        assert mux.overhead == pytest.approx(4 / 16)

    def test_indices_monotone(self):
        _, packets = mux_stream(rows=3, cols=3)
        indices = [p.index for p in packets]
        assert indices == sorted(indices)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TsMux(rows=0)
        with pytest.raises(ValueError):
            TsMux(cols=1)

    def test_push_validation(self):
        with pytest.raises(ValueError):
            TsMux().push(1, 0)


class TestDemuxRecovery:
    def deliver(self, packets, lost_indices, rows=4, cols=4):
        demux = TsDemux(rows=rows, cols=cols)
        for packet in packets:
            if packet.index in lost_indices:
                continue
            demux.on_packet(packet)
        return demux

    def test_no_loss_nothing_recovered(self):
        _, packets = mux_stream()
        demux = self.deliver(packets, set())
        assert demux.recovered == set()
        assert demux.effective_loss(len(packets)) == 0.0

    def test_single_loss_recovered(self):
        _, packets = mux_stream()
        demux = self.deliver(packets, {5})
        assert demux.recovered == {5}
        assert demux.effective_loss(len(packets)) == 0.0

    def test_burst_loss_recovered_by_interleaving(self):
        """A burst of cols consecutive losses hits each column once."""
        _, packets = mux_stream(rows=4, cols=4)
        burst = {4, 5, 6, 7}  # one full row = 4 consecutive packets
        demux = self.deliver(packets, burst)
        assert demux.recovered == burst

    def test_burst_longer_than_cols_not_fully_recoverable(self):
        _, packets = mux_stream(rows=4, cols=4)
        burst = set(range(4, 10))  # 6 > cols: two columns hit twice
        demux = self.deliver(packets, burst)
        assert len(demux.recovered) < len(burst)
        assert demux.effective_loss(len(packets)) > 0.0

    def test_sequential_fec_comparison(self):
        """The same burst defeats a non-interleaved (cols=1-like) layout.

        With rows=1, cols=N each packet is its own column mate set —
        emulate sequential grouping by rows=N, cols=1 being invalid, so
        compare against group-of-4 sequential FEC: a 4-burst inside one
        group of 4 loses >= 3 unrecoverable packets.
        """
        # Interleaved: recovered fully (previous test).  Sequential
        # grouping == FecDecoder over consecutive indices:
        from repro.core.reliability import FecDecoder
        sequential = FecDecoder(group_size=4)
        burst = {4, 5, 6, 7}
        for i in range(16):
            if i not in burst:
                sequential.on_data(i)
        for g in range(4):
            sequential.on_parity(g)
        assert len(sequential.recovered) == 0  # whole group vanished

    def test_parity_loss_tolerated(self):
        _, packets = mux_stream()
        parity_indices = {p.index for p in packets if p.is_parity}
        demux = self.deliver(packets, parity_indices)
        # No data was lost, so nothing needed recovery.
        assert demux.effective_loss(len(packets)) == pytest.approx(
            len(parity_indices) / len(packets))

    def test_late_data_completes_column(self):
        """Recovery triggers when the straggler arrives after parity."""
        _, packets = mux_stream(rows=2, cols=2)
        demux = TsDemux(rows=2, cols=2)
        data = [p for p in packets if not p.is_parity]
        parity = [p for p in packets if p.is_parity]
        # Deliver: data[0], both parities, then data[3] late; data[1],
        # data[2] lost (different columns).
        demux.on_packet(data[0])
        for p in parity:
            demux.on_packet(p)
        recovered = demux.on_packet(data[3])
        assert set(demux.recovered) >= {data[1].index} or recovered

    def test_stream_byte_accounting(self):
        _, packets = mux_stream(pids=(1, 2), rows=2, cols=2,
                                bytes_per_pid=2 * TS_PAYLOAD_BYTES)
        demux = self.deliver(packets, set(), rows=2, cols=2)
        assert demux.stream_bytes[1] == 2 * TS_PAYLOAD_BYTES
        assert demux.stream_bytes[2] == 2 * TS_PAYLOAD_BYTES
