"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abc":
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_via_simulator():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i * 0.1, fired.append, i)
    count = sim.run(max_events=4)
    assert count == 4
    assert fired == [0, 1, 2, 3]


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.pending == 1


def test_kwargs_passed_to_callback():
    sim = Simulator()
    seen = {}
    sim.schedule(0.1, lambda **kw: seen.update(kw), a=1, b=2)
    sim.run()
    assert seen == {"a": 1, "b": 2}


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        vals = []
        def draw():
            vals.append(sim.rng.random())
            if len(vals) < 5:
                sim.schedule(0.1, draw)
        sim.schedule(0.0, draw)
        sim.run()
        return vals

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_child_rng_independent_of_draw_order():
    sim1 = Simulator(seed=9)
    a1 = sim1.child_rng("a").random()
    sim2 = Simulator(seed=9)
    _ = sim2.child_rng("b").random()  # draw from another child first
    # Reusing tag "a" on a *fresh* Simulator is the point of this test.
    a2 = sim2.child_rng("a").random()  # simlint: disable=SIM008
    assert a1 == a2


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


# ----------------------------------------------------------------------
# Hot-path machinery: compaction, O(1) pending, reschedule, clock rules
# ----------------------------------------------------------------------

def test_compaction_triggers_and_preserves_events():
    sim = Simulator(compact_min=8, compact_ratio=0.5)
    keep = []
    survivors = [sim.schedule(10.0 + i, keep.append, i) for i in range(4)]
    doomed = [sim.schedule(1.0 + 0.001 * i, lambda: keep.append("bad"))
              for i in range(40)]
    for e in doomed:
        e.cancel()
    assert sim.compactions >= 1
    # Dead entries stay bounded by the trigger threshold instead of
    # accumulating all 40 cancellations.
    assert sim.cancelled_in_heap < 8
    assert sim.heap_size <= len(survivors) + 8
    sim.run()
    assert keep == [0, 1, 2, 3]


def test_no_compaction_below_min_threshold():
    sim = Simulator(compact_min=64, compact_ratio=0.0)
    for i in range(10):
        sim.schedule(1.0 + i, lambda: None).cancel()
    assert sim.compactions == 0
    assert sim.cancelled_in_heap == 10


def test_pending_counter_consistent_under_interleaving():
    sim = Simulator(compact_min=4, compact_ratio=0.25)

    def naive_pending(s):
        return sum(1 for _, _, e in s._heap
                   if not e.cancelled and not e.fired)

    events = []
    for i in range(30):
        events.append(sim.schedule(0.1 * (i + 1), lambda: None))
        if i % 3 == 0:
            events[i // 2].cancel()
        if i % 7 == 0:
            sim.run(max_events=2)
        assert sim.pending == naive_pending(sim)
    sim.run()
    assert sim.pending == 0 == naive_pending(sim)


def test_cancel_is_idempotent_for_counters():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    e.cancel()
    e.cancel()
    assert sim.pending == 0
    assert sim.cancelled_in_heap == 1


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    sim.run()
    assert e.fired
    e.cancel()
    assert not e.cancelled
    assert sim.pending == 0


def test_reschedule_later_fires_once_at_new_time():
    sim = Simulator()
    fired = []
    e = sim.schedule(1.0, lambda: fired.append(sim.now))
    e2 = sim.reschedule(e, 5.0)
    assert e2 is e  # deferred in place
    sim.run()
    assert fired == [5.0]
    assert sim.heap_size == 0


def test_reschedule_earlier_fires_at_new_time():
    sim = Simulator()
    fired = []
    e = sim.schedule(5.0, lambda: fired.append(sim.now))
    e2 = sim.reschedule(e, 1.0)
    sim.run()
    assert fired == [1.0]
    assert e2.fired


def test_reschedule_chain_never_fires_stale_deadline():
    sim = Simulator()
    fired = []
    e = sim.schedule(1.0, lambda: fired.append(sim.now))
    for delay in (2.0, 3.0, 0.5, 4.0):
        e = sim.reschedule(e, delay)
    sim.run()
    assert fired == [4.0]


def test_reschedule_matches_cancel_plus_push_tie_breaking():
    """A rescheduled timer must tie-break exactly as a cancel+push
    would: the new seq is allocated at reschedule time."""
    def run(use_reschedule):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "timer")
        if use_reschedule:
            sim.reschedule(timer, 3.0)
        else:
            timer.cancel()
            sim.schedule(3.0, fired.append, "timer")
        sim.schedule(3.0, fired.append, "rival")  # same deadline, later seq
        sim.run()
        return fired

    assert run(True) == run(False) == ["timer", "rival"]


def test_reschedule_after_fire_starts_fresh_timer():
    sim = Simulator()
    fired = []
    e = sim.schedule(1.0, fired.append, "x")
    sim.run()
    e2 = sim.reschedule(e, 1.0)
    assert e2 is not e
    sim.run()
    assert fired == ["x", "x"]


def test_reschedule_into_past_rejected():
    sim = Simulator()
    e = sim.schedule(5.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=3.0)
    with pytest.raises(ValueError):
        sim.reschedule_at(e, 1.0)


def test_run_clock_drain_advances_to_until():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_clock_until_exit_is_exact():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(20.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_clock_max_events_does_not_jump_past_unfired_work():
    """If max_events trips while events <= until remain, the clock must
    stay at the last fired event — otherwise the next run() would move
    the clock backwards."""
    sim = Simulator()
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, times.append, t)
    fired = sim.run(until=10.0, max_events=2)
    assert fired == 2
    assert sim.now == 2.0  # NOT 10.0
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert sim.now == 10.0


def test_run_clock_max_events_advances_when_nothing_remains_before_until():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(50.0, lambda: None)
    sim.run(until=10.0, max_events=1)
    assert sim.now == 10.0  # remaining work is beyond the horizon


def test_run_counts_zero_when_only_cancelled_events_popped():
    sim = Simulator()
    for i in range(5):
        sim.schedule(1.0 + i, lambda: None).cancel()
    assert sim.run(max_events=3) == 0
    assert sim.heap_size == 0


def test_kwargs_fast_path_stores_none():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    assert e.kwargs is None
    e2 = sim.schedule(1.0, lambda **kw: None, a=1)
    assert e2.kwargs == {"a": 1}


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.next_event_time == 1.0
    e1.cancel()
    assert sim.next_event_time == 2.0


def test_trace_hook_sees_fired_events_only():
    sim = Simulator()
    log = []
    sim.trace_hook = lambda ev: log.append((ev.time, ev.fn.__name__))

    def cb():
        pass

    sim.schedule(1.0, cb)
    sim.schedule(2.0, cb).cancel()
    e = sim.schedule(3.0, cb)
    sim.reschedule(e, 4.0)
    sim.run()
    assert log == [(1.0, "cb"), (4.0, "cb")]
