"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abc":
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_via_simulator():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i * 0.1, fired.append, i)
    count = sim.run(max_events=4)
    assert count == 4
    assert fired == [0, 1, 2, 3]


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.pending == 1


def test_kwargs_passed_to_callback():
    sim = Simulator()
    seen = {}
    sim.schedule(0.1, lambda **kw: seen.update(kw), a=1, b=2)
    sim.run()
    assert seen == {"a": 1, "b": 2}


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        vals = []
        def draw():
            vals.append(sim.rng.random())
            if len(vals) < 5:
                sim.schedule(0.1, draw)
        sim.schedule(0.0, draw)
        sim.run()
        return vals

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_child_rng_independent_of_draw_order():
    sim1 = Simulator(seed=9)
    a1 = sim1.child_rng("a").random()
    sim2 = Simulator(seed=9)
    _ = sim2.child_rng("b").random()  # draw from another child first
    a2 = sim2.child_rng("a").random()
    assert a1 == a2


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
