"""Fleet telemetry bus, worker timelines, and the crash flight recorder.

The CI-gated contract lives in ``TestByteIdentity``: arming every piece
of wall-clock instrumentation at once (telemetry bus + flight recorder)
must change **no byte** of any deterministic result artifact.  The rest
covers the telemetry document schema, the Chrome-trace worker timeline,
and the flight artifacts a dying worker leaves behind.
"""

import json

import pytest

from repro.analysis.report import fleet_report
from repro.fleet import (
    Campaign,
    FaultInjection,
    TelemetryCollector,
    run_campaign,
    worker_timeline_json,
    write_campaign_telemetry,
)
from repro.fleet.flight import (
    FlightRecorder,
    collect_flight_dump,
    flight_summary,
    read_flight_dump,
)
from repro.fleet.telemetry import TELEMETRY_SCHEMA
from repro.obs import validate_chrome_trace
from repro.scale.shards import campaign_telemetry_meta, cell_contention_campaign

FAST_BACKOFF = dict(backoff_base=0.002, backoff_cap=0.02)


def tiny_campaign(seeds=2, name="tiny-telemetry"):
    return Campaign(name=name, scenario="table2_offload", seeds=seeds,
                    base_seed=3, grid={"rtt": [0.01, 0.05]},
                    params={"n_frames": 4})


def instrumented(campaign, tmp_path, workers=1, **kw):
    telemetry = TelemetryCollector()
    result = run_campaign(campaign, workers=workers, telemetry=telemetry,
                          flight_dir=tmp_path / "flight", **kw)
    return result


class TestByteIdentity:
    """Arming all wall-clock instrumentation changes no result byte."""

    def test_serial_run_identical_with_all_instrumentation(self, tmp_path):
        c = tiny_campaign(seeds=3)
        plain = run_campaign(c, workers=1)
        armed = instrumented(c, tmp_path, workers=1)
        assert armed.aggregate.to_json() == plain.aggregate.to_json()
        assert list(armed.per_point) == list(plain.per_point)
        for point in plain.per_point:
            assert (armed.per_point[point].to_json()
                    == plain.per_point[point].to_json())
        assert fleet_report(armed) == fleet_report(plain)

    def test_pooled_run_identical_with_all_instrumentation(self, tmp_path):
        c = tiny_campaign(seeds=3)
        plain = run_campaign(c, workers=1)
        armed = instrumented(c, tmp_path, workers=2, batch_size=2)
        assert armed.aggregate.to_json() == plain.aggregate.to_json()
        for point in plain.per_point:
            assert (armed.per_point[point].to_json()
                    == plain.per_point[point].to_json())

    def test_scale_campaign_identical_with_telemetry(self, tmp_path):
        c = cell_contention_campaign(seeds=1)
        plain = run_campaign(c, workers=1)
        armed = instrumented(c, tmp_path, workers=1)
        assert armed.aggregate.to_json() == plain.aggregate.to_json()

    def test_telemetry_doc_never_reaches_deterministic_surface(self, tmp_path):
        c = tiny_campaign()
        armed = instrumented(c, tmp_path)
        assert armed.telemetry is not None
        plain = run_campaign(c, workers=1)
        assert plain.telemetry is None
        assert fleet_report(armed) == fleet_report(plain)


class TestTelemetryDocument:
    @pytest.fixture(scope="class")
    def doc(self, tmp_path_factory):
        c = tiny_campaign(seeds=3)  # 6 shards
        result = instrumented(c, tmp_path_factory.mktemp("flight"))
        return result.telemetry

    def test_schema_and_campaign_header(self, doc):
        assert doc["schema"] == TELEMETRY_SCHEMA
        assert doc["campaign"]["name"] == "tiny-telemetry"
        assert doc["campaign"]["scenario"] == "table2_offload"
        assert doc["campaign"]["shards"] == 6
        assert len(doc["campaign"]["fingerprint16"]) == 16

    def test_worker_accounting_covers_every_shard(self, doc):
        workers = doc["workers"]
        assert workers  # at least the serial driver pid
        assert sum(w["shards"] for w in workers.values()) == 6
        assert sum(w["ok"] for w in workers.values()) == 6
        assert all(w["busy_s"] >= 0.0 for w in workers.values())

    def test_shard_events_on_the_wire(self, doc):
        shard_events = [e for e in doc["events"] if e["ev"] == "shard"]
        assert len(shard_events) == 6
        for e in shard_events:
            assert e["ok"] is True
            assert e["t1"] >= e["t0"] >= 0.0
        assert doc["events_dropped"] == 0

    def test_slowest_table_ranked_by_wall_per_cost(self, doc):
        ranks = [row["wall_per_cost"] for row in doc["slowest"]]
        assert ranks == sorted(ranks, reverse=True)
        assert all(row["wall_s"] >= 0.0 for row in doc["slowest"])

    def test_counters_clean_run(self, doc):
        assert doc["shards"] == {"ok": 6, "quarantined": 0, "retries": 0,
                                 "timeouts": 0, "pool_breaks": 0,
                                 "quarantines": 0}

    def test_flight_section_present_when_armed(self, doc):
        assert doc["flight"]["spills"] >= 1
        assert doc["flight"]["events"] > 0

    def test_event_cap_drops_but_counts(self):
        collector = TelemetryCollector(event_cap=2)
        for i in range(5):
            collector.record({"ev": "retry", "t": float(i)})
        assert len(collector.events) == 2
        assert collector.dropped == 3

    def test_scale_meta_is_deterministic_spec_context(self):
        meta = campaign_telemetry_meta(cell_contention_campaign(seeds=1))
        assert meta["layer"] == "scale"
        assert meta["shards"] == 4
        assert meta["cost_total"] > 0

    def test_written_document_is_canonical_json(self, doc, tmp_path):
        path = write_campaign_telemetry(
            tmp_path / "out" / "campaign_telemetry.json", doc)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(doc, sort_keys=True))


class TestWorkerTimeline:
    def test_timeline_is_valid_chrome_trace(self, tmp_path):
        result = instrumented(tiny_campaign(seeds=3), tmp_path)
        timeline = worker_timeline_json(result.telemetry)
        assert validate_chrome_trace(timeline) == []

    def test_timeline_has_one_slice_per_shard(self, tmp_path):
        result = instrumented(tiny_campaign(seeds=3), tmp_path)
        doc = json.loads(worker_timeline_json(result.telemetry))
        slices = [e for e in doc["traceEvents"]
                  if e.get("ph") == "X" and e.get("cat") == "shard"]
        assert len(slices) == 6
        tags = {e["name"] for e in slices}
        assert tags == {s.tag for s in tiny_campaign(seeds=3).shards()}

    def test_timeline_of_faulted_run_still_validates(self, tmp_path):
        c = tiny_campaign()
        tag = c.shards()[1].tag
        telemetry = TelemetryCollector()
        result = run_campaign(
            c, workers=1, telemetry=telemetry,
            faults=FaultInjection(tags=(tag,), mode="raise"),
            max_attempts=2, **FAST_BACKOFF)
        assert result.quarantined == [tag]
        timeline = worker_timeline_json(result.telemetry)
        assert validate_chrome_trace(timeline) == []
        doc = json.loads(timeline)
        instants = {e["name"] for e in doc["traceEvents"]
                    if e.get("ph") == "i"}
        assert {"retry", "quarantine"} <= instants


class TestQuarantineRecords:
    def test_record_carries_scenario_attempts_and_traceback(self, tmp_path):
        c = tiny_campaign()
        tag = c.shards()[2].tag
        result = run_campaign(
            c, workers=1, faults=FaultInjection(tags=(tag,), mode="raise"),
            max_attempts=3, flight_dir=tmp_path, **FAST_BACKOFF)
        outcome = next(o for o in result.outcomes if o.tag == tag)
        assert outcome.status == "quarantined"
        assert outcome.scenario == "table2_offload"
        assert outcome.attempts == 3
        assert len(outcome.errors) == 3
        assert "Traceback (most recent call last)" in outcome.errors[-1]
        assert outcome.error  # last error is still summarized

    def test_pooled_kill_leaves_quarantine_and_flight(self, tmp_path):
        c = tiny_campaign(seeds=3)
        tag = c.shards()[2].tag
        result = run_campaign(
            c, workers=2, batch_size=2,
            faults=FaultInjection(tags=(tag,), mode="kill"),
            max_attempts=2, flight_dir=tmp_path, **FAST_BACKOFF)
        assert result.quarantined == [tag]
        outcome = next(o for o in result.outcomes if o.tag == tag)
        assert outcome.flight is not None
        doc = read_flight_dump(outcome.flight)
        assert doc is not None
        assert doc["tag"] == tag


class TestFlightRecorder:
    def test_crash_dump_written_on_raise(self, tmp_path):
        c = tiny_campaign()
        tag = c.shards()[2].tag  # warm ring: two shards ran before it
        result = run_campaign(
            c, workers=1, faults=FaultInjection(tags=(tag,), mode="raise"),
            max_attempts=2, flight_dir=tmp_path, **FAST_BACKOFF)
        assert result.quarantined == [tag]
        outcome = next(o for o in result.outcomes if o.tag == tag)
        assert outcome.flight is not None
        doc = read_flight_dump(outcome.flight)
        assert doc["kind"] == "crash"
        assert doc["tag"] == tag
        assert "ShardError" in doc["error"]
        assert doc["ring"]  # rolled over from the healthy shards
        for row in doc["ring"]:
            assert set(row) == {"t", "seq", "fn"}

    def test_ring_rolls_across_shards_and_spills(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=4, worker_id=7)

        class FakeEvent:
            def __init__(self, i):
                self.time = float(i)
                self.seq = i
                self.fn = tiny_campaign

        recorder.begin_shard("s/one", 0)
        for i in range(3):
            recorder.hook(FakeEvent(i))
        recorder.begin_shard("s/two", 0)
        doc = read_flight_dump(tmp_path / "worker-7.json")
        assert doc["tag"] == "s/two"
        assert [r["seq"] for r in doc["ring"]] == [0, 1, 2]
        for i in range(3, 9):  # overflow the 4-deep ring
            recorder.hook(FakeEvent(i))
        recorder.begin_shard("s/three", 1)
        doc = read_flight_dump(tmp_path / "worker-7.json")
        assert [r["seq"] for r in doc["ring"]] == [5, 6, 7, 8]
        assert doc["shards_seen"] == 3

    def test_collect_prefers_most_informative_artifact(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=8, worker_id=1)

        class FakeEvent:
            time, seq, fn = 0.5, 1, tiny_campaign

        recorder.hook(FakeEvent())
        recorder.begin_shard("victim", 0)  # spill with 1 ring event
        empty = FlightRecorder(tmp_path, capacity=8, worker_id=2)
        empty.begin_shard("victim", 1)     # fresh retry worker, empty ring
        found = collect_flight_dump(tmp_path, "victim")
        assert found is not None
        assert found.name.startswith("quarantine-")
        assert len(read_flight_dump(found)["ring"]) == 1

    def test_collect_handles_missing_and_garbage(self, tmp_path):
        assert collect_flight_dump(tmp_path / "nope", "t") is None
        (tmp_path / "worker-9.json").write_text("{not json")
        assert collect_flight_dump(tmp_path, "t") is None
        assert read_flight_dump(tmp_path / "worker-9.json") is None
        summary = flight_summary(tmp_path)
        assert summary == {"spills": 0, "crashes": 0, "quarantine": 0,
                           "events": 0}

    def test_install_uninstall_is_identity_safe(self, tmp_path):
        from repro.simnet import engine

        first = FlightRecorder(tmp_path, worker_id=1)
        second = FlightRecorder(tmp_path, worker_id=2)
        first.install()
        second.install()
        first.uninstall()  # not the installed hook: must not clobber
        assert engine.default_trace_hook is second.hook
        second.uninstall()
        assert engine.default_trace_hook is None
