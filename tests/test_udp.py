"""Unit tests for the UDP socket."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.packet import IP_UDP_HEADER
from repro.transport.udp import UdpSocket


def make_net():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("a", "b", 10e6, delay=0.005)
    net.build_routes()
    return sim, net


def test_datagram_delivery_and_payload():
    sim, net = make_net()
    got = []
    UdpSocket(net["b"], 53, on_receive=got.append)
    sender = UdpSocket(net["a"], 1234)
    sender.sendto("b", 53, 100, answer=42)
    sim.run()
    assert len(got) == 1
    assert got[0].payload["answer"] == 42
    assert got[0].src == "a"
    assert got[0].src_port == 1234


def test_header_overhead_on_wire():
    sim, net = make_net()
    sender = UdpSocket(net["a"], 1)
    p = sender.sendto("b", 2, 100)
    assert p.size == 100 + IP_UDP_HEADER


def test_counters():
    sim, net = make_net()
    receiver = UdpSocket(net["b"], 53)
    sender = UdpSocket(net["a"], 1)
    for _ in range(3):
        sender.sendto("b", 53, 50)
    sim.run()
    assert sender.datagrams_sent == 3
    assert receiver.datagrams_received == 3
    assert receiver.bytes_received == 3 * (50 + IP_UDP_HEADER)


def test_closed_socket_raises():
    sim, net = make_net()
    sender = UdpSocket(net["a"], 1)
    sender.close()
    with pytest.raises(RuntimeError):
        sender.sendto("b", 2, 10)


def test_close_unbinds_port():
    sim, net = make_net()
    sock = UdpSocket(net["a"], 1)
    sock.close()
    assert not net["a"].is_bound(1)
    UdpSocket(net["a"], 1)  # can rebind


def test_bidirectional_exchange():
    sim, net = make_net()
    replies = []

    def server_logic(packet):
        server.sendto(packet.src, packet.src_port, 20, kind="reply")

    server = UdpSocket(net["b"], 7, on_receive=server_logic)
    client = UdpSocket(net["a"], 8, on_receive=replies.append)
    client.sendto("b", 7, 50)
    sim.run()
    assert len(replies) == 1
    assert replies[0].kind == "reply"
    # One full round trip: 2 x 5 ms propagation plus serialization.
    assert sim.now == pytest.approx(0.010, abs=0.002)
