"""Tests for the span tracer and per-frame trace convention."""

import pytest

from repro.obs.spans import (
    PROPAGATION_ATTR,
    SERIALIZATION_ATTR,
    FrameTrace,
    Tracer,
    breakdown,
)
from repro.simnet.engine import Simulator


def advance(sim, dt):
    """Move the sim clock forward by scheduling an empty event."""
    sim.schedule(dt, lambda: None)
    sim.run()


class TestTracer:
    def test_span_times_come_from_sim_clock(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        span = tracer.start_span("work")
        advance(sim, 0.25)
        tracer.finish(span)
        assert span.start == 0.0
        assert span.end == 0.25
        assert span.duration == pytest.approx(0.25)

    def test_nesting_links_parent_and_trace(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        root = tracer.start_span("frame")
        child = tracer.start_span("uplink", parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child in root.children
        assert tracer.roots() == [root]

    def test_trace_ids_distinct_across_roots(self):
        tracer = Tracer(Simulator(seed=1))
        a = tracer.start_span("frame")
        b = tracer.start_span("frame")
        assert a.trace_id != b.trace_id

    def test_finish_is_idempotent(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        span = tracer.start_span("work")
        advance(sim, 0.1)
        tracer.finish(span)
        advance(sim, 0.1)
        tracer.finish(span)          # second finish must not move the end
        assert span.end == pytest.approx(0.1)

    def test_context_manager_finishes(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        with tracer.span("work", kind="test") as s:
            advance(sim, 0.05)
        assert s.finished
        assert s.attrs["kind"] == "test"

    def test_unfinished_span_has_no_duration(self):
        tracer = Tracer(Simulator(seed=1))
        span = tracer.start_span("open")
        assert not span.finished
        assert span.duration == 0.0

    def test_attrs_via_start_and_set(self):
        tracer = Tracer(Simulator(seed=1))
        span = tracer.start_span("work", nbytes=42).set(outcome="ok")
        assert span.attrs == {"nbytes": 42, "outcome": "ok"}

    def test_frame_roots_only_finished_frames(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        done = FrameTrace(tracer, 0)
        done.begin("local")
        advance(sim, 0.01)
        done.complete()
        FrameTrace(tracer, 1)        # never completed
        tracer.start_span("other")   # not a frame
        roots = tracer.frame_roots()
        assert len(roots) == 1
        assert roots[0].attrs["frame"] == 0


class TestFrameTrace:
    def build(self):
        sim = Simulator(seed=2)
        tracer = Tracer(sim)
        trace = FrameTrace(tracer, 7)
        trace.begin("local")
        advance(sim, 0.030)
        trace.begin("uplink", **{SERIALIZATION_ATTR: 0.002,
                                 PROPAGATION_ATTR: 0.010})
        advance(sim, 0.018)
        trace.begin("server")
        advance(sim, 0.001)
        trace.begin("downlink", **{SERIALIZATION_ATTR: 0.001,
                                   PROPAGATION_ATTR: 0.010})
        advance(sim, 0.020)
        trace.mark("render")
        trace.complete(outcome="offloaded")
        return sim, trace

    def test_stages_are_contiguous(self):
        _, trace = self.build()
        children = [c for c in trace.root.children if c.duration > 0]
        for prev, nxt in zip(children, children[1:]):
            assert prev.end == nxt.start   # no gap, no overlap

    def test_children_sum_exactly_to_root(self):
        _, trace = self.build()
        total = sum(c.duration for c in trace.root.children)
        assert total == pytest.approx(trace.root.duration, abs=1e-12)

    def test_outcome_recorded_on_root(self):
        _, trace = self.build()
        assert trace.root.attrs["outcome"] == "offloaded"
        assert trace.finished

    def test_breakdown_buckets(self):
        _, trace = self.build()
        b = trace.breakdown()
        assert b["total"] == pytest.approx(0.069)
        assert b["stages"]["local"] == pytest.approx(0.030)
        assert b["stages"]["uplink"] == pytest.approx(0.018)
        path = b["critical_path"]
        # local + server are compute; uplink/downlink split into wire costs.
        assert path["compute"] == pytest.approx(0.031)
        assert path["serialization"] == pytest.approx(0.003)
        assert path["propagation"] == pytest.approx(0.020)
        assert path["queueing"] == pytest.approx(0.069 - 0.031 - 0.023)
        assert path["render"] == 0.0
        assert sum(path.values()) == pytest.approx(b["total"])

    def test_breakdown_clamps_overstated_wire_costs(self):
        sim = Simulator(seed=3)
        tracer = Tracer(sim)
        trace = FrameTrace(tracer, 0)
        # Analytic costs exceed the observed duration: must clamp, never
        # produce negative queueing.
        trace.begin("uplink", **{SERIALIZATION_ATTR: 1.0,
                                 PROPAGATION_ATTR: 1.0})
        advance(sim, 0.010)
        trace.complete()
        path = breakdown(trace.root)["critical_path"]
        assert path["serialization"] == pytest.approx(0.010)
        assert path["propagation"] == 0.0
        assert path["queueing"] == 0.0

    def test_double_run_identical_span_dicts(self):
        def run():
            _, trace = self.build()
            return [s.to_dict() for s in trace.tracer.spans]

        assert run() == run()
