"""Tests for the slot-level DCF MAC and trace-replay links."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.simnet.replay import TraceReplayLink, commute_trace
from repro.wireless.dcf import CW_MIN, DcfChannel, DcfStation
from repro.wireless.wifi import anomaly_throughput


class TestDcf:
    def run_channel(self, rates, until=5.0, seed=1):
        sim = Simulator(seed=seed)
        channel = DcfChannel(sim)
        stations = [
            channel.add_station(DcfStation(f"s{i}", rate))
            for i, rate in enumerate(rates)
        ]
        sim.run(until=until)
        return channel, stations

    def test_single_station_never_collides(self):
        channel, stations = self.run_channel([54e6])
        assert channel.total_collisions == 0
        assert stations[0].frames_sent > 100

    def test_collision_probability_grows_with_stations(self):
        probs = []
        for n in (2, 5, 15):
            channel, _ = self.run_channel([54e6] * n)
            probs.append(channel.collision_probability)
        assert probs[0] < probs[1] < probs[2]
        assert probs[0] > 0.0

    def test_aggregate_goodput_decays_under_heavy_contention(self):
        few = self.run_channel([54e6] * 2)[0]
        many = self.run_channel([54e6] * 25)[0]
        assert many.aggregate_throughput_bps(1, 5) < few.aggregate_throughput_bps(1, 5)

    def test_fair_share_between_equal_stations(self):
        channel, stations = self.run_channel([54e6, 54e6], until=10.0)
        a = stations[0].throughput_bps(1, 10)
        b = stations[1].throughput_bps(1, 10)
        assert a == pytest.approx(b, rel=0.1)

    def test_performance_anomaly_emerges_at_slot_level(self):
        """The Heusse anomaly is a MAC property — it must appear in the
        slot-level model too, near the airtime-model prediction."""
        channel, stations = self.run_channel([54e6, 18e6], until=10.0)
        fast, slow = stations
        assert fast.throughput_bps(1, 10) == pytest.approx(
            slow.throughput_bps(1, 10), rel=0.15)
        predicted = anomaly_throughput([54e6, 18e6])[0]
        # Same ballpark as the airtime grant model (the two models use
        # different per-frame overhead constants, so only the anomaly
        # equalization — not the absolute rate — is expected to agree).
        assert fast.throughput_bps(1, 10) == pytest.approx(predicted, rel=0.25)

    def test_binary_exponential_backoff_resets_on_success(self):
        channel, stations = self.run_channel([54e6] * 3, until=2.0)
        # After many successes, CWs sit at CW_MIN between collisions.
        assert any(s.cw == CW_MIN for s in stations)
        assert all(s.collisions > 0 for s in stations)

    def test_duplicate_station_rejected(self):
        sim = Simulator()
        channel = DcfChannel(sim)
        channel.add_station(DcfStation("x", 54e6))
        with pytest.raises(ValueError):
            channel.add_station(DcfStation("x", 54e6))


class Collector:
    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.arrivals = []
        self.interfaces = []

    def add_interface(self, link):
        self.interfaces.append(link)

    def receive(self, packet, via=None):
        self.arrivals.append((self.sim.now, packet))


class TestTraceReplay:
    def make(self, trace, **kw):
        sim = Simulator(seed=2)
        src = Collector(sim, "src")
        dst = Collector(sim, "dst")
        link = TraceReplayLink(sim, src, dst, trace, **kw)
        return sim, src, dst, link

    def test_rate_follows_breakpoints(self):
        trace = [(0.0, 1e6), (1.0, 5e6), (2.0, 2e6)]
        sim, _, _, link = self.make(trace, loop_at=10.0)
        sim.run(until=0.5)
        assert link.rate_bps == 1e6
        sim.run(until=1.5)
        assert link.rate_bps == 5e6
        sim.run(until=2.5)
        assert link.rate_bps == 2e6

    def test_trace_loops(self):
        trace = [(0.0, 1e6), (1.0, 5e6)]
        sim, _, _, link = self.make(trace, loop_at=2.0)
        sim.run(until=2.5)   # wrapped: back to the first segment
        assert link.rate_bps == 1e6
        sim.run(until=3.5)
        assert link.rate_bps == 5e6

    def test_outage_holds_packets_until_recovery(self):
        trace = [(0.0, 8e6), (1.0, 0.0), (3.0, 8e6)]
        sim, _, dst, link = self.make(trace, loop_at=100.0)
        # One packet queued during the outage window.
        sim.run(until=1.5)
        assert link.in_outage
        link.send(Packet(src="src", dst="dst", size=1000))
        sim.run(until=2.9)
        assert dst.arrivals == []          # stuck behind the outage
        sim.run(until=3.6)
        assert len(dst.arrivals) == 1      # drained after recovery

    def test_validation(self):
        sim = Simulator()
        src, dst = Collector(sim, "a"), Collector(sim, "b")
        with pytest.raises(ValueError):
            TraceReplayLink(sim, src, dst, [])
        with pytest.raises(ValueError):
            TraceReplayLink(sim, src, dst, [(1.0, 1e6), (0.5, 1e6)])
        with pytest.raises(ValueError):
            TraceReplayLink(sim, src, dst, [(0.0, -5.0)])

    def test_commute_trace_shape(self):
        trace = commute_trace()
        rates = [r for _, r in trace]
        assert 0.0 in rates                      # the tunnel
        assert max(rates) == 15e6                # at the stop
        times = [t for t, _ in trace]
        assert times == sorted(times)

    def test_martp_survives_commute(self):
        """End-to-end: an MARTP session over the commute trace keeps the
        critical class alive through the tunnel outage."""
        from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
        from repro.core.scheduler import PathState
        from repro.core.traffic import mar_baseline_streams
        from repro.simnet.queues import DropTailQueue
        from repro.transport.udp import UdpSocket

        sim = Simulator(seed=3)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        uplink = TraceReplayLink(
            sim, net["client"], net["server"], commute_trace(),
            delay=0.020, queue=DropTailQueue(500))
        net.links.append(uplink)
        net.add_link("server", "client", 50e6, delay=0.020)
        net.build_routes()

        streams = mar_baseline_streams()
        receiver = MartpReceiver(net["server"], 7000, streams)
        endpoint = PathEndpoint(state=PathState(name="lte"),
                                socket=UdpSocket(net["client"], 6000),
                                dst="server", dst_port=7000)
        sender = MartpSender([endpoint], streams)
        sender.start()
        sender.attach_rate_driver(0)
        sender.attach_rate_driver(1)
        sender.attach_rate_driver(3)
        sim.run(until=70.0)   # one full commute loop
        meta_rx = receiver.stream_stats(0)
        assert meta_rx.received > 0
        # Budget collapsed during the tunnel but recovered after.
        trace = sender.controller.trace
        post_tunnel = [b for t, b in trace if t > 55.0]
        assert post_tunnel and max(post_tunnel) > 1e6
