"""Unit tests for links: serialization, delay, jitter, loss, asymmetry."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import DuplexLink, Link, VariableRateLink
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue


class Collector:
    """Host stand-in that records arrivals."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.arrivals = []
        self.interfaces = []

    def add_interface(self, link):
        self.interfaces.append(link)

    def receive(self, packet, via=None):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, rate=1e6, delay=0.0, **kw):
    src = Collector(sim, "src")
    dst = Collector(sim, "dst")
    link = Link(sim, src, dst, rate_bps=rate, delay=delay, **kw)
    return link, src, dst


def test_serialization_time():
    sim = Simulator()
    link, _, dst = make_link(sim, rate=8e6)  # 8 Mb/s -> 1 µs per byte
    link.send(Packet(src="src", dst="dst", size=1000))
    sim.run()
    assert dst.arrivals[0][0] == pytest.approx(0.001)


def test_propagation_delay_added():
    sim = Simulator()
    link, _, dst = make_link(sim, rate=8e6, delay=0.05)
    link.send(Packet(src="src", dst="dst", size=1000))
    sim.run()
    assert dst.arrivals[0][0] == pytest.approx(0.051)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    link, _, dst = make_link(sim, rate=8e6)
    for _ in range(3):
        link.send(Packet(src="src", dst="dst", size=1000))
    sim.run()
    times = [t for t, _ in dst.arrivals]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_queue_drop_when_full():
    sim = Simulator()
    link, _, dst = make_link(sim, rate=8e3, queue=DropTailQueue(capacity=2))
    # One in flight plus 2 queued; the 4th is dropped.
    results = [link.send(Packet(src="src", dst="dst", size=1000)) for _ in range(4)]
    assert results == [True, True, True, False]
    sim.run()
    assert len(dst.arrivals) == 3


def test_loss_drops_packets_statistically():
    sim = Simulator(seed=3)
    link, _, dst = make_link(sim, rate=1e9, loss=0.5, queue=DropTailQueue(1000))
    for _ in range(400):
        link.send(Packet(src="src", dst="dst", size=100))
    sim.run()
    assert 120 < len(dst.arrivals) < 280
    assert link.packets_lost == 400 - len(dst.arrivals)


def test_jitter_never_reorders():
    sim = Simulator(seed=1)
    link, _, dst = make_link(sim, rate=1e9, delay=0.01, jitter=0.02)
    for _ in range(100):
        link.send(Packet(src="src", dst="dst", size=100))
    sim.run()
    uids = [p.uid for _, p in dst.arrivals]
    assert uids == sorted(uids)
    times = [t for t, _ in dst.arrivals]
    assert times == sorted(times)


def test_stats_accounting():
    sim = Simulator()
    link, _, dst = make_link(sim, rate=1e6)
    link.send(Packet(src="src", dst="dst", size=500))
    sim.run()
    assert link.bytes_sent == 500
    assert link.bytes_delivered == 500
    assert link.packets_delivered == 1


def test_wire_loss_accounts_bytes():
    """Wire drops must land in bytes_lost so goodput reports do not
    conflate lost and in-flight bytes."""
    sim = Simulator(seed=3)
    link, _, dst = make_link(sim, rate=1e9, loss=0.5, queue=DropTailQueue(1000))
    for _ in range(200):
        link.send(Packet(src="src", dst="dst", size=100))
    sim.run()
    assert link.packets_lost > 0
    assert link.bytes_lost == link.packets_lost * 100
    assert link.bytes_delivered == link.packets_delivered * 100
    # Conservation: everything serialized was delivered or lost.
    assert link.bytes_sent == link.bytes_delivered + link.bytes_lost
    assert link.bytes_in_flight == 0


def test_bytes_in_flight_mid_transfer():
    sim = Simulator()
    link, _, _ = make_link(sim, rate=8e3, delay=1.0)  # slow + long pipe
    link.send(Packet(src="src", dst="dst", size=1000))
    sim.run(until=1.5)  # serialized (1 s) but not yet delivered (2 s)
    assert link.bytes_sent == 1000
    assert link.bytes_in_flight == 1000
    sim.run()
    assert link.bytes_in_flight == 0


def test_queue_drops_surfaced_on_link():
    sim = Simulator()
    link, _, _ = make_link(sim, rate=8e3, queue=DropTailQueue(capacity=2))
    for _ in range(6):
        link.send(Packet(src="src", dst="dst", size=1000))
    assert link.queue_drops == 3  # 1 in flight + 2 queued, rest dropped
    sim.run()
    # Queue drops never pollute the wire-loss counters.
    assert link.packets_lost == 0
    assert link.bytes_lost == 0


def test_utilization():
    sim = Simulator()
    link, _, _ = make_link(sim, rate=1e6)
    link.send(Packet(src="src", dst="dst", size=12500))  # 0.1 s of airtime
    sim.run()
    assert link.utilization(1.0) == pytest.approx(0.1)


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        make_link(sim, rate=0)
    with pytest.raises(ValueError):
        make_link(sim, rate=1e6, loss=1.0)


def test_hop_count_increment():
    sim = Simulator()
    link, _, dst = make_link(sim)
    link.send(Packet(src="src", dst="dst", size=100))
    sim.run()
    assert dst.arrivals[0][1].hops == 1


class TestDuplexLink:
    def test_asymmetry_ratio(self):
        sim = Simulator()
        a = Collector(sim, "a")
        b = Collector(sim, "b")
        duplex = DuplexLink(sim, a, b, rate_down_bps=8e6, rate_up_bps=1e6)
        assert duplex.asymmetry_ratio == pytest.approx(8.0)

    def test_directions_independent(self):
        sim = Simulator()
        a = Collector(sim, "a")
        b = Collector(sim, "b")
        duplex = DuplexLink(sim, a, b, rate_down_bps=8e6, rate_up_bps=8e3)
        duplex.down.send(Packet(src="a", dst="b", size=1000))
        duplex.up.send(Packet(src="b", dst="a", size=1000))
        sim.run()
        assert b.arrivals[0][0] == pytest.approx(0.001)
        assert a.arrivals[0][0] == pytest.approx(1.0)

    def test_symmetric_default(self):
        sim = Simulator()
        duplex = DuplexLink(sim, Collector(sim, "a"), Collector(sim, "b"), 5e6)
        assert duplex.asymmetry_ratio == 1.0


class TestVariableRateLink:
    def test_rate_stays_within_bounds(self):
        sim = Simulator(seed=2)
        src, dst = Collector(sim, "s"), Collector(sim, "d")
        link = VariableRateLink(
            sim, src, dst, mean_rate_bps=10e6, min_rate_bps=1e6, max_rate_bps=50e6,
            sigma=0.8, update_interval=0.1,
        )
        sim.run(until=20.0)
        rates = [r for _, r in link.rate_history]
        assert all(1e6 <= r <= 50e6 for r in rates)
        assert len(rates) > 100

    def test_rate_varies(self):
        sim = Simulator(seed=2)
        src, dst = Collector(sim, "s"), Collector(sim, "d")
        link = VariableRateLink(
            sim, src, dst, mean_rate_bps=10e6, min_rate_bps=1e6, max_rate_bps=50e6,
            sigma=0.5, update_interval=0.1,
        )
        sim.run(until=5.0)
        rates = {round(r) for _, r in link.rate_history}
        assert len(rates) > 10

    def test_bounds_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VariableRateLink(
                sim, Collector(sim, "s"), Collector(sim, "d"),
                mean_rate_bps=1e6, min_rate_bps=2e6, max_rate_bps=5e6,
            )
