"""Tier coupling: zero-background byte-identity, pressure, promotion."""

import hashlib

import pytest

from repro.fleet.campaign import get_scenario
from repro.scale.coupling import (
    BackgroundPressure,
    PromotionPolicy,
    has_pressure,
    plan_promotions,
    promote_user,
    run_pressured_session,
)
from repro.simnet.engine import Simulator
from repro.wireless.profiles import LTE, load_factors


def fingerprint(agg) -> str:
    return hashlib.sha256(agg.to_json().encode("utf-8")).hexdigest()


PARAMS = {"rtt": 0.036, "up_bps": 12e6, "loss": 0.0, "duration": 1.0}


class TestZeroBackgroundIdentity:
    """The hard acceptance gate: the foreground tier at zero background
    is the *same computation* as the event-level cell_offload scenario."""

    def test_no_samples_byte_identical(self):
        base = get_scenario("cell_offload").fn(4242, dict(PARAMS))
        fg = run_pressured_session(4242, dict(PARAMS))
        assert fingerprint(fg) == fingerprint(base)

    def test_all_zero_samples_byte_identical(self):
        base = get_scenario("cell_offload").fn(77, dict(PARAMS))
        fg = run_pressured_session(
            77, dict(PARAMS), samples=[(0.0, 0.0), (0.25, 0.0), (0.5, 0.0)])
        assert fingerprint(fg) == fingerprint(base)

    def test_zero_load_cell_timeline_byte_identical(self):
        # End to end: a real (zero-load) fluid cell's window drives the
        # foreground, and the result still matches cell_offload.
        from repro.scale.population import run_cell
        from tests.test_scale_population import make_spec

        spec = make_spec(load=0.0, burstiness=0.0, diurnal_amplitude=0.0)
        timeline = run_cell(spec, seed=3, duration=30.0).timeline
        samples = [(t, rho) for t, rho in timeline.window(0.0, 1.0)]
        assert not has_pressure(samples)
        base = get_scenario("cell_offload").fn(9, dict(PARAMS))
        fg = run_pressured_session(9, dict(PARAMS), samples=samples)
        assert fingerprint(fg) == fingerprint(base)

    def test_nonzero_pressure_changes_bytes(self):
        base = get_scenario("cell_offload").fn(4242, dict(PARAMS))
        pressed = run_pressured_session(4242, dict(PARAMS),
                                        samples=[(0.0, 0.9)])
        assert fingerprint(pressed) != fingerprint(base)

    def test_pressured_run_is_deterministic(self):
        samples = [(0.0, 0.3), (0.4, 1.1), (0.8, 0.2)]
        a = run_pressured_session(5, dict(PARAMS), samples=samples)
        b = run_pressured_session(5, dict(PARAMS), samples=samples)
        assert fingerprint(a) == fingerprint(b)


class TestBackgroundPressure:
    def build(self, samples, seed=1):
        from repro.fleet.scenarios import build_offload_session

        scenario, session = build_offload_session(seed, dict(PARAMS))
        driver = BackgroundPressure(scenario, samples)
        return scenario, session, driver

    def test_factors_applied_and_restored(self):
        scenario, _session, driver = self.build([(0.0, 0.5), (0.2, 0.0)])
        down, up = scenario.net.links[0], scenario.net.links[1]
        base_down, base_up = down.rate_bps, up.rate_bps
        scenario.sim.run(until=0.1)
        share = load_factors(0.5).share
        assert down.rate_bps == base_down * share
        assert up.rate_bps == base_up * share
        scenario.sim.run(until=0.3)
        # ρ=0 restores the base parameters bit-exactly (not compounded)
        assert down.rate_bps == base_down
        assert up.rate_bps == base_up
        assert driver.applied == [(0.0, 0.5), (0.2, 0.0)]

    def test_overload_adds_loss(self):
        scenario, _session, _driver = self.build([(0.0, 1.5)])
        down = scenario.net.links[0]
        base_loss = down.loss
        scenario.sim.run(until=0.05)
        assert down.loss > base_loss
        assert down.loss <= 1.0

    def test_requires_duplex_link(self):
        class FakeNet:
            links = []

        class FakeScenario:
            net = FakeNet()
            sim = None

        with pytest.raises(ValueError):
            BackgroundPressure(FakeScenario(), [(0.0, 0.5)])

    def test_has_pressure(self):
        assert not has_pressure([])
        assert not has_pressure([(0.0, 0.0), (1.0, 0.0)])
        assert has_pressure([(0.0, 0.0), (1.0, 0.001)])


class TestPromotionPlanning:
    def samples(self, rhos, dt=1.0):
        return [(i * dt, 0.0, rho) for i, rho in enumerate(rhos)]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PromotionPolicy(enter_rho=0.5, exit_rho=0.5)
        with pytest.raises(ValueError):
            PromotionPolicy(min_dwell=-1.0)

    def test_no_contention_no_episodes(self):
        policy = PromotionPolicy(enter_rho=0.85, exit_rho=0.6, min_dwell=0.0)
        assert plan_promotions(self.samples([0.1, 0.5, 0.8]), policy) == []

    def test_hysteresis_episode(self):
        policy = PromotionPolicy(enter_rho=0.85, exit_rho=0.6, min_dwell=0.0)
        # crosses 0.85 at t=2, stays above exit through t=4, demotes at t=5
        eps = plan_promotions(
            self.samples([0.1, 0.5, 0.9, 1.2, 0.7, 0.5, 0.2]), policy)
        assert len(eps) == 1
        assert eps[0].start == 2.0 and eps[0].end == 5.0
        assert eps[0].peak_rho == 1.2

    def test_min_dwell_extends_episode(self):
        fast = PromotionPolicy(enter_rho=0.85, exit_rho=0.6, min_dwell=0.0)
        slow = PromotionPolicy(enter_rho=0.85, exit_rho=0.6, min_dwell=3.0)
        rhos = [0.9, 0.1, 0.1, 0.1, 0.1]
        assert plan_promotions(self.samples(rhos), fast)[0].end == 1.0
        assert plan_promotions(self.samples(rhos), slow)[0].end == 3.0

    def test_open_episode_closes_at_end(self):
        policy = PromotionPolicy(enter_rho=0.85, exit_rho=0.6, min_dwell=0.0)
        eps = plan_promotions(self.samples([0.2, 0.9, 1.0, 1.1]), policy)
        assert len(eps) == 1
        assert eps[0].end == 3.0

    def test_deterministic(self):
        policy = PromotionPolicy()
        s = self.samples([0.1, 0.9, 1.3, 0.4, 0.9, 0.2])
        assert plan_promotions(s, policy) == plan_promotions(s, policy)


class TestPromoteUser:
    def test_seed_is_pure_function_of_fluid_state(self):
        seed_a, agg_a = promote_user(Simulator(seed=11), 3, 0, 1.1, LTE,
                                     n_frames=5)
        seed_b, agg_b = promote_user(Simulator(seed=11), 3, 0, 1.1, LTE,
                                     n_frames=5)
        assert seed_a == seed_b
        assert agg_a.to_json() == agg_b.to_json()

    def test_distinct_tags_distinct_users(self):
        sim = Simulator(seed=11)
        seed_0, _ = promote_user(sim, 3, 0, 1.1, LTE, n_frames=3)
        seed_1, _ = promote_user(sim, 3, 1, 1.1, LTE, n_frames=3)
        seed_c, _ = promote_user(sim, 4, 0, 1.1, LTE, n_frames=3)
        assert len({seed_0, seed_1, seed_c}) == 3

    def test_demotion_folds_into_aggregate(self):
        _seed, agg = promote_user(Simulator(seed=2), 0, 0, 0.7, LTE,
                                  n_frames=8)
        assert agg.counts["scale.promoted_sessions"] == 1
        assert agg.counts["scale.promoted_frames"] >= 1
        assert "scale.promoted.frame_latency" in agg.moments
        assert 0.0 <= agg.moments["scale.promoted.deadline_hit_rate"].mean <= 1.0

    def test_overloaded_promotion_still_accounted(self):
        # At ρ=1.2 the residual share is tiny and frames may never
        # complete — the session must still count (degraded service,
        # not a crash).
        _seed, agg = promote_user(Simulator(seed=2), 0, 0, 1.2, LTE,
                                  n_frames=4)
        assert agg.counts["scale.promoted_sessions"] == 1
        assert agg.counts.get("scale.promoted_frames", 0) >= 0


class TestLoadHooks:
    def test_under_load_zero_is_bit_identical(self):
        assert LTE.under_load(0.0) == LTE

    def test_load_factors_identity_at_zero(self):
        f = load_factors(0.0)
        assert f.is_identity
        assert (f.share, f.delay_factor, f.extra_loss) == (1.0, 1.0, 0.0)

    def test_monotone_degradation(self):
        rhos = [0.0, 0.3, 0.6, 0.9, 1.2, 2.0]
        shares = [load_factors(r).share for r in rhos]
        delays = [load_factors(r).delay_factor for r in rhos]
        assert shares == sorted(shares, reverse=True)
        assert delays == sorted(delays)
        for r in rhos:
            loaded = LTE.under_load(r)
            assert loaded.up_mean <= LTE.up_mean
            assert loaded.rtt >= LTE.rtt
            assert 0.0 <= loaded.loss <= 1.0

    def test_share_floor(self):
        assert load_factors(50.0).share == pytest.approx(0.02)
        assert load_factors(50.0).extra_loss <= 0.5

    def test_serving_edge_rtt_deterministic_stripe(self):
        from repro.edge.assignment import EDGE_BACKHAUL_TIERS, serving_edge_rtt

        rtts = [serving_edge_rtt(i) for i in range(8)]
        assert rtts[:4] == rtts[4:]                      # striped
        assert set(rtts) <= set(EDGE_BACKHAUL_TIERS)
        with pytest.raises(ValueError):
            serving_edge_rtt(-1)

    def test_for_cell_promotion_entry_runs(self):
        from repro.mar.application import APP_ARCHETYPES
        from repro.mar.offload import FeatureOffload, OffloadExecutor

        executor = OffloadExecutor.for_cell(
            Simulator(seed=5), LTE, 0.9, cell_id=2,
            app=APP_ARCHETYPES["orientation"], strategy=FeatureOffload())
        result = executor.run(n_frames=5)
        assert result.frames_completed >= 1
        assert all(lat > 0 for lat in result.frame_latencies)
