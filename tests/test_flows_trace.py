"""Unit tests for traffic generators and flow statistics."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import BulkSource, CBRSource, OnOffSource, PacketSink, PoissonSource
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.simnet.trace import FlowStats, PacketTracer


def two_hosts(rate=10e6, delay=0.001):
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("a", "b", rate, delay=delay)
    net.build_routes()
    return sim, net


class TestCBR:
    def test_rate_accuracy(self):
        sim, net = two_hosts()
        sink = PacketSink(net["b"], 80)
        CBRSource(net["a"], "b", 80, rate_bps=1e6, packet_size=1250)
        sim.run(until=10.0)
        rate = sink.stats.throughput_bps(1.0, 9.0)
        assert rate == pytest.approx(1e6, rel=0.05)

    def test_start_stop_window(self):
        sim, net = two_hosts()
        sink = PacketSink(net["b"], 80)
        CBRSource(net["a"], "b", 80, rate_bps=1e6, start=2.0, stop=4.0)
        sim.run(until=10.0)
        assert sink.stats.bytes_between(0.0, 1.9) == 0
        assert sink.stats.bytes_between(2.0, 4.1) > 0
        assert sink.stats.bytes_between(4.5, 10.0) == 0

    def test_invalid_rate(self):
        sim, net = two_hosts()
        with pytest.raises(ValueError):
            CBRSource(net["a"], "b", 80, rate_bps=0)


class TestPoisson:
    def test_mean_rate(self):
        sim, net = two_hosts(rate=100e6)
        sink = PacketSink(net["b"], 80)
        PoissonSource(net["a"], "b", 80, rate_pps=200, packet_size=100)
        sim.run(until=20.0)
        pps = sink.stats.packets_total / 20.0
        assert pps == pytest.approx(200, rel=0.15)

    def test_interarrivals_vary(self):
        sim, net = two_hosts(rate=100e6)
        sink = PacketSink(net["b"], 80)
        PoissonSource(net["a"], "b", 80, rate_pps=100, packet_size=100)
        sim.run(until=5.0)
        times = [s.time for s in sink.stats.samples]
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 10


class TestOnOff:
    def test_produces_bursts(self):
        sim, net = two_hosts(rate=100e6)
        sink = PacketSink(net["b"], 80)
        OnOffSource(net["a"], "b", 80, peak_rate_bps=10e6, mean_on=0.5, mean_off=0.5)
        sim.run(until=30.0)
        series = sink.stats.throughput_timeseries(0.5)
        rates = [r for _, r in series]
        assert any(r == 0 for r in rates)          # off periods
        assert any(r > 1e6 for r in rates)         # bursts


class TestBulk:
    def test_window_clocked_by_echo(self):
        sim, net = two_hosts()
        PacketSink(net["b"], 80, echo_port=81)
        src = BulkSource(net["a"], "b", 80, window=5, total_packets=50, src_port=81)
        sim.run(until=30.0)
        assert src.complete
        assert src.packets_sent == 50


class TestFlowStats:
    def test_mean_delay(self):
        stats = FlowStats()
        stats.record(Packet(src="a", dst="b", size=10, created_at=0.0), 0.1)
        stats.record(Packet(src="a", dst="b", size=10, created_at=0.0), 0.3)
        assert stats.mean_delay() == pytest.approx(0.2)

    def test_delay_percentile(self):
        stats = FlowStats()
        for i in range(101):
            stats.record(Packet(src="a", dst="b", size=1, created_at=0.0), i / 100.0)
        assert stats.delay_percentile(50) == pytest.approx(0.5)
        assert stats.delay_percentile(95) == pytest.approx(0.95)

    def test_jitter_constant_delay_is_zero(self):
        stats = FlowStats()
        for i in range(10):
            stats.record(Packet(src="a", dst="b", size=1, created_at=float(i)), i + 0.05)
        assert stats.jitter() == pytest.approx(0.0)

    def test_per_flow_filtering(self):
        stats = FlowStats()
        stats.record(Packet(src="a", dst="b", size=100, flow="x"), 1.0)
        stats.record(Packet(src="a", dst="b", size=200, flow="y"), 1.0)
        assert stats.bytes_between(0, 2, flow="x") == 100
        assert stats.flows_seen() == ["x", "y"]

    def test_throughput_timeseries_covers_window(self):
        stats = FlowStats()
        stats.record(Packet(src="a", dst="b", size=125), 0.5)
        stats.record(Packet(src="a", dst="b", size=125), 1.5)
        series = stats.throughput_timeseries(1.0, until=2.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(1000.0)

    def test_empty_stats(self):
        stats = FlowStats()
        assert stats.mean_delay() == 0.0
        assert stats.delay_percentile(50) == 0.0
        assert stats.throughput_timeseries(1.0) == []


class TestPacketTracer:
    def test_log_and_filter(self):
        tracer = PacketTracer()
        p = Packet(src="a", dst="b", size=1)
        tracer.log(0.0, "enqueue", p)
        tracer.log(0.1, "drop", p, "full")
        assert len(tracer) == 2
        assert len(tracer.of_kind("drop")) == 1
