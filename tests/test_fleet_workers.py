"""Fleet runner: serial/parallel equivalence, fault tolerance, cache."""

import os

import pytest

from repro.analysis.report import fleet_report
from repro.fleet import (
    Campaign,
    FaultInjection,
    ResultCache,
    get_scenario,
    plan_batches,
    run_campaign,
    run_shard,
    usable_cpus,
)
from repro.fleet.workers import MAX_BATCH, OVERSUBSCRIBE, _ShardState

FAST_BACKOFF = dict(backoff_base=0.002, backoff_cap=0.02)


def tiny_campaign(seeds=2, name="tiny"):
    return Campaign(name=name, scenario="table2_offload", seeds=seeds,
                    base_seed=3, grid={"rtt": [0.01, 0.05]},
                    params={"n_frames": 4})


class TestDeterminism:
    def test_serial_and_pool_reports_byte_identical(self):
        c = tiny_campaign(seeds=3)  # 6 shards
        serial = run_campaign(c, workers=1)
        pooled = run_campaign(c, workers=2)
        assert serial.aggregate.to_json() == pooled.aggregate.to_json()
        assert list(serial.per_point) == list(pooled.per_point)
        for label in serial.per_point:
            assert (serial.per_point[label].to_json()
                    == pooled.per_point[label].to_json())
        assert fleet_report(serial) == fleet_report(pooled)

    def test_repeat_runs_identical(self):
        c = tiny_campaign()
        assert (run_campaign(c, workers=1).aggregate.to_json()
                == run_campaign(c, workers=1).aggregate.to_json())

    def test_serial_pooled_batched_all_byte_identical(self):
        """The tentpole contract: every dispatch shape merges the same bytes."""
        c = tiny_campaign(seeds=4)  # 8 shards
        serial = run_campaign(c, workers=1)
        runs = {
            "unbatched": run_campaign(c, workers=2, batch_size=1),
            "fixed-batch": run_campaign(c, workers=2, batch_size=3),
            "auto-batch": run_campaign(c, workers=2),
        }
        for label, r in runs.items():
            assert r.aggregate.to_json() == serial.aggregate.to_json(), label
            assert list(r.per_point) == list(serial.per_point), label
            for point in serial.per_point:
                assert (r.per_point[point].to_json()
                        == serial.per_point[point].to_json()), label
            assert fleet_report(r) == fleet_report(serial), label

    def test_identical_under_injected_worker_kill(self):
        """A quarantined culprit leaves the same bytes in every mode."""
        c = tiny_campaign(seeds=3)  # 6 shards
        tag = c.shards()[2].tag
        serial = run_campaign(c, workers=1,
                              faults=FaultInjection(tags=(tag,), mode="raise"),
                              max_attempts=2, **FAST_BACKOFF)
        batched = run_campaign(c, workers=2, batch_size=3,
                               faults=FaultInjection(tags=(tag,), mode="kill"),
                               max_attempts=2, **FAST_BACKOFF)
        assert serial.quarantined == batched.quarantined == [tag]
        # Aggregates (and per-point bytes) are identical; the rendered
        # report differs only in the quarantine error text, which
        # legitimately records *how* the shard died in each mode.
        assert serial.aggregate.to_json() == batched.aggregate.to_json()
        for point in serial.per_point:
            assert (serial.per_point[point].to_json()
                    == batched.per_point[point].to_json())

    def test_cache_hit_rerun_identical_batched(self, tmp_path):
        """A 100% cache-hit rerun reproduces a batched pooled run exactly."""
        c = tiny_campaign(seeds=3)
        fresh = run_campaign(c, workers=2, cache=ResultCache(tmp_path))
        rerun = run_campaign(c, workers=2, cache=ResultCache(tmp_path))
        assert rerun.cache_misses == 0
        assert all(o.cached for o in rerun.outcomes)
        assert rerun.aggregate.to_json() == fresh.aggregate.to_json()
        assert fleet_report(rerun) == fleet_report(fresh)

    def test_streaming_reducer_has_no_end_barrier(self):
        """Pooled runs merge incrementally: the buffer stays bounded."""
        c = tiny_campaign(seeds=4)
        r = run_campaign(c, workers=2)
        assert r.max_buffered <= len(c.shards())
        assert r.n_batches >= 1
        assert r.start_method in ("forkserver", "spawn", "fork")


class TestFaultTolerance:
    def test_transient_fault_is_retried(self):
        c = tiny_campaign()
        tag = c.shards()[1].tag
        faults = FaultInjection(tags=(tag,), mode="raise", fail_attempts=1)
        r = run_campaign(c, workers=1, faults=faults, **FAST_BACKOFF)
        assert r.quarantined == []
        outcome = next(o for o in r.outcomes if o.tag == tag)
        assert outcome.attempts == 2
        # retried shard contributes: aggregate matches a clean run
        clean = run_campaign(c, workers=1)
        assert r.aggregate.to_json() == clean.aggregate.to_json()

    def test_persistent_fault_quarantined_serial(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=3,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]
        assert r.completed == len(r.outcomes) - 1
        outcome = next(o for o in r.outcomes if o.tag == tag)
        assert outcome.attempts == 3 and "injected" in outcome.error

    def test_killed_worker_quarantined_without_failing_campaign(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="kill")
        r = run_campaign(c, workers=2, faults=faults, max_attempts=3,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]          # only the culprit
        assert r.completed == len(r.outcomes) - 1
        # the quarantined shard is individually replayable from its tag
        replayed = run_shard(c, tag)
        assert replayed.counts["sessions"] == 1

    def test_kill_downgrades_to_raise_in_serial_fallback(self):
        """A kill-fault must never take down the serial caller."""
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="kill")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=2,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]

    def test_quarantine_excluded_from_merge(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=2,
                         **FAST_BACKOFF)
        clean = run_campaign(c, workers=1)
        assert (r.aggregate.counts["sessions"]
                == clean.aggregate.counts["sessions"] - 1)

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_campaign(), max_attempts=0)

    def test_raise_fault_does_not_lose_batch_mates(self):
        """A raising shard is per-shard data; its batch-mates complete.

        With every shard in one batch, the faulty shard must be retried
        alone while the siblings keep their single first-attempt result.
        """
        c = tiny_campaign(seeds=2)  # 4 shards
        tag = c.shards()[1].tag
        faults = FaultInjection(tags=(tag,), mode="raise", fail_attempts=1)
        r = run_campaign(c, workers=2, batch_size=4, faults=faults,
                         **FAST_BACKOFF)
        assert r.quarantined == []
        by_tag = {o.tag: o for o in r.outcomes}
        assert by_tag[tag].attempts == 2
        assert all(o.attempts == 1 for t, o in by_tag.items() if t != tag)
        clean = run_campaign(c, workers=1)
        assert r.aggregate.to_json() == clean.aggregate.to_json()


class TestBatchPlanning:
    def states(self, seeds=16, scenario="table2_offload", grid=None):
        c = Campaign(name="plan", scenario=scenario, seeds=seeds,
                     base_seed=5, grid=grid or {},
                     params={"n_frames": 4})
        return [_ShardState(s) for s in c.shards()]

    def test_fixed_batch_size_chunks(self):
        states = self.states(seeds=10)
        batches = plan_batches(states, workers=2, batch_size=3)
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        flat = [s for b in batches for s in b]
        assert flat == states                      # order preserved

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            plan_batches(self.states(seeds=2), workers=1, batch_size=0)

    def test_auto_tuning_targets_oversubscribe_batches(self):
        states = self.states(seeds=64)
        batches = plan_batches(states, workers=2)
        assert len(batches) <= 2 * OVERSUBSCRIBE + 1
        assert len(batches) >= 2                   # still parallelizable
        assert sum(len(b) for b in batches) == 64
        assert [s for b in batches for s in b] == states

    def test_auto_tuning_is_deterministic(self):
        a = plan_batches(self.states(seeds=32), workers=4)
        b = plan_batches(self.states(seeds=32), workers=4)
        assert [[s.spec.tag for s in batch] for batch in a] \
            == [[s.spec.tag for s in batch] for batch in b]

    def test_cost_weighted_batches_balance_cost_not_count(self):
        # n_frames drives table2_offload cost: a grid mixing 1x and 9x
        # shards must cut batches with fewer expensive shards each.
        c = Campaign(name="plan", scenario="table2_offload", seeds=8,
                     base_seed=5, grid={"n_frames": [5, 45]})
        states = [_ShardState(s) for s in c.shards()]
        scenario = get_scenario("table2_offload")
        batches = plan_batches(states, workers=2, scenario=scenario)
        costs = [sum(scenario.shard_cost(s.spec.param_dict()) for s in b)
                 for b in batches]
        assert max(costs) <= 3 * min(costs)
        assert sum(len(b) for b in batches) == 16

    def test_max_batch_cap(self):
        states = self.states(seeds=MAX_BATCH * 2 + 5)
        batches = plan_batches(states, workers=1)
        assert all(len(b) <= MAX_BATCH for b in batches)
        assert sum(len(b) for b in batches) == len(states)

    def test_empty_todo(self):
        assert plan_batches([], workers=4) == []


class TestHierarchicalShardEfficiency:
    """The planner must stay load-balanced on repro.scale's city grids,
    where member-0 shards carry extra fluid-aggregation and promotion
    cost next to their plain cohort siblings."""

    def _efficiency(self, campaign, workers):
        from repro.fleet.workers import batch_cost_efficiency

        scenario = get_scenario(campaign.scenario)
        states = [_ShardState(s) for s in campaign.shards()]
        batches = plan_batches(states, workers=workers, scenario=scenario)
        return batch_cost_efficiency(batches, scenario), batches, states

    @pytest.mark.parametrize("budget", ["smoke", "small", "metro"])
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_city_coverage_efficiency_floor(self, budget, workers):
        from repro.scale.shards import city_coverage_campaign

        eff, batches, states = self._efficiency(
            city_coverage_campaign(budget), workers)
        assert eff >= 0.6
        assert [s for b in batches for s in b] == states  # order preserved

    @pytest.mark.parametrize("workers", [2, 4])
    def test_cell_contention_efficiency_floor(self, workers):
        from repro.scale.shards import cell_contention_campaign

        eff, _batches, _states = self._efficiency(
            cell_contention_campaign(), workers)
        assert eff >= 0.6

    def test_city_cost_hints_are_honest_about_member0(self):
        # Member 0 runs the fluid aggregate + promotions on top of its
        # session, so its hinted cost must strictly exceed a sibling's.
        from repro.scale.shards import city_coverage_campaign

        campaign = city_coverage_campaign("metro")  # cohort=2
        scenario = get_scenario(campaign.scenario)
        p0 = dict(campaign.params, cell=0, member=0)
        p1 = dict(campaign.params, cell=0, member=1)
        assert scenario.shard_cost(p0) > scenario.shard_cost(p1) > 0

    def test_efficiency_helper_degenerate_cases(self):
        from repro.fleet.workers import batch_cost_efficiency

        assert batch_cost_efficiency([], None) == 1.0
        states = [_ShardState(s) for s in city_grid_states()]
        # Count-based fallback when no scenario is supplied.
        assert 0.0 < batch_cost_efficiency([states[:2], states[2:4]]) <= 1.0


def city_grid_states():
    from repro.scale.shards import city_coverage_campaign

    return city_coverage_campaign("smoke").shards()[:4]


class TestUsableCpus:
    def test_positive_int(self):
        n = usable_cpus()
        assert isinstance(n, int) and n >= 1

    def test_matches_affinity_where_supported(self):
        if hasattr(os, "sched_getaffinity"):
            assert usable_cpus() == len(os.sched_getaffinity(0))


class TestCache:
    def test_rerun_is_full_cache_hit(self, tmp_path):
        c = tiny_campaign()
        r1 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r1.cache_hits == 0 and r1.cache_misses == len(r1.outcomes)
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_misses == 0
        assert r2.cache_hits / len(r2.outcomes) >= 0.95
        assert all(o.cached for o in r2.outcomes)
        assert r1.aggregate.to_json() == r2.aggregate.to_json()
        assert fleet_report(r1) == fleet_report(r2)

    def test_spec_change_invalidates_cache(self, tmp_path):
        c = tiny_campaign()
        run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        changed = tiny_campaign()
        changed.base_seed = 4
        r = run_campaign(changed, workers=1, cache=ResultCache(tmp_path))
        assert r.cache_hits == 0

    def test_quarantined_shards_not_cached(self, tmp_path):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        run_campaign(c, workers=1, cache=ResultCache(tmp_path),
                     faults=faults, max_attempts=2, **FAST_BACKOFF)
        # re-run without the fault: only the quarantined shard executes
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_hits == len(r2.outcomes) - 1
        assert r2.cache_misses == 1
        assert r2.quarantined == []

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        c = tiny_campaign()
        cache = ResultCache(tmp_path)
        run_campaign(c, workers=1, cache=cache)
        victim = cache.shard_path(c, c.shards()[0])
        victim.write_text("{not json")
        r = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r.cache_misses == 1
        # repaired on the way through
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_misses == 0


class TestProgress:
    def test_progress_callback_sees_every_shard(self):
        seen = []
        c = tiny_campaign()
        run_campaign(c, workers=1,
                     progress=lambda done, total, el: seen.append((done, total)))
        assert seen[-1] == (len(c.shards()), len(c.shards()))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)
