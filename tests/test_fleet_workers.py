"""Fleet runner: serial/parallel equivalence, fault tolerance, cache."""

import pytest

from repro.analysis.report import fleet_report
from repro.fleet import (
    Campaign,
    FaultInjection,
    ResultCache,
    run_campaign,
    run_shard,
)

FAST_BACKOFF = dict(backoff_base=0.002, backoff_cap=0.02)


def tiny_campaign(seeds=2, name="tiny"):
    return Campaign(name=name, scenario="table2_offload", seeds=seeds,
                    base_seed=3, grid={"rtt": [0.01, 0.05]},
                    params={"n_frames": 4})


class TestDeterminism:
    def test_serial_and_pool_reports_byte_identical(self):
        c = tiny_campaign(seeds=3)  # 6 shards
        serial = run_campaign(c, workers=1)
        pooled = run_campaign(c, workers=2)
        assert serial.aggregate.to_json() == pooled.aggregate.to_json()
        assert list(serial.per_point) == list(pooled.per_point)
        for label in serial.per_point:
            assert (serial.per_point[label].to_json()
                    == pooled.per_point[label].to_json())
        assert fleet_report(serial) == fleet_report(pooled)

    def test_repeat_runs_identical(self):
        c = tiny_campaign()
        assert (run_campaign(c, workers=1).aggregate.to_json()
                == run_campaign(c, workers=1).aggregate.to_json())


class TestFaultTolerance:
    def test_transient_fault_is_retried(self):
        c = tiny_campaign()
        tag = c.shards()[1].tag
        faults = FaultInjection(tags=(tag,), mode="raise", fail_attempts=1)
        r = run_campaign(c, workers=1, faults=faults, **FAST_BACKOFF)
        assert r.quarantined == []
        outcome = next(o for o in r.outcomes if o.tag == tag)
        assert outcome.attempts == 2
        # retried shard contributes: aggregate matches a clean run
        clean = run_campaign(c, workers=1)
        assert r.aggregate.to_json() == clean.aggregate.to_json()

    def test_persistent_fault_quarantined_serial(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=3,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]
        assert r.completed == len(r.outcomes) - 1
        outcome = next(o for o in r.outcomes if o.tag == tag)
        assert outcome.attempts == 3 and "injected" in outcome.error

    def test_killed_worker_quarantined_without_failing_campaign(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="kill")
        r = run_campaign(c, workers=2, faults=faults, max_attempts=3,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]          # only the culprit
        assert r.completed == len(r.outcomes) - 1
        # the quarantined shard is individually replayable from its tag
        replayed = run_shard(c, tag)
        assert replayed.counts["sessions"] == 1

    def test_kill_downgrades_to_raise_in_serial_fallback(self):
        """A kill-fault must never take down the serial caller."""
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="kill")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=2,
                         **FAST_BACKOFF)
        assert r.quarantined == [tag]

    def test_quarantine_excluded_from_merge(self):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        r = run_campaign(c, workers=1, faults=faults, max_attempts=2,
                         **FAST_BACKOFF)
        clean = run_campaign(c, workers=1)
        assert (r.aggregate.counts["sessions"]
                == clean.aggregate.counts["sessions"] - 1)

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(tiny_campaign(), max_attempts=0)


class TestCache:
    def test_rerun_is_full_cache_hit(self, tmp_path):
        c = tiny_campaign()
        r1 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r1.cache_hits == 0 and r1.cache_misses == len(r1.outcomes)
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_misses == 0
        assert r2.cache_hits / len(r2.outcomes) >= 0.95
        assert all(o.cached for o in r2.outcomes)
        assert r1.aggregate.to_json() == r2.aggregate.to_json()
        assert fleet_report(r1) == fleet_report(r2)

    def test_spec_change_invalidates_cache(self, tmp_path):
        c = tiny_campaign()
        run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        changed = tiny_campaign()
        changed.base_seed = 4
        r = run_campaign(changed, workers=1, cache=ResultCache(tmp_path))
        assert r.cache_hits == 0

    def test_quarantined_shards_not_cached(self, tmp_path):
        c = tiny_campaign()
        tag = c.shards()[0].tag
        faults = FaultInjection(tags=(tag,), mode="raise")
        run_campaign(c, workers=1, cache=ResultCache(tmp_path),
                     faults=faults, max_attempts=2, **FAST_BACKOFF)
        # re-run without the fault: only the quarantined shard executes
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_hits == len(r2.outcomes) - 1
        assert r2.cache_misses == 1
        assert r2.quarantined == []

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        c = tiny_campaign()
        cache = ResultCache(tmp_path)
        run_campaign(c, workers=1, cache=cache)
        victim = cache.shard_path(c, c.shards()[0])
        victim.write_text("{not json")
        r = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r.cache_misses == 1
        # repaired on the way through
        r2 = run_campaign(c, workers=1, cache=ResultCache(tmp_path))
        assert r2.cache_misses == 0


class TestProgress:
    def test_progress_callback_sees_every_shard(self):
        seen = []
        c = tiny_campaign()
        run_campaign(c, workers=1,
                     progress=lambda done, total, el: seen.append((done, total)))
        assert seen[-1] == (len(c.shards()), len(c.shards()))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)
