"""Failure-injection integration tests: outages, blackouts, silent peers.

"An AR application should ideally function with degraded performance
even if no network connectivity is available" (Section VI-B) — these
tests throw the failures at the stack and check it degrades and
recovers instead of wedging.

Faults are injected through :mod:`repro.simnet.faults` (declarative
plans with snapshot/restore semantics) rather than by mutating
``link.loss`` in scheduled lambdas.
"""


from repro.core.scheduler import MultipathPolicy
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector, FaultPlan
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.tcp import TcpConnection, TcpListener


class TestMartpOutages:
    def test_total_blackout_and_recovery(self):
        """3 s of 100 % loss mid-session: the protocol must recover."""
        scenario = ScenarioBuilder(seed=61).single_path(rtt=0.030, up_bps=10e6)
        links = scenario.net.path_links("client", "server") \
            + scenario.net.path_links("server", "client")

        injector = FaultInjector(scenario.net)
        injector.apply(FaultPlan().blackout(8.0, 3.0, links))
        session = OffloadSession(scenario)
        report = session.run(25.0)

        # The injector restored the links exactly when the window closed.
        assert injector.expired == 1
        assert all(link.loss == 0.0 for link in links)

        # The session survived: traffic flows again after recovery.
        rx = session.receiver.stream_stats(2)
        assert rx.received > 0
        # Critical metadata: whatever was offered outside the blackout
        # still arrived (ARQ covers the edges).
        meta = report.per_class[0]
        assert meta.received > 0
        # And the post-recovery steady state regained real throughput.
        post = [r for t, r in session.sender.offered_rate_trace() if t > 15.0]
        assert post and sum(r[3] for r in post) / len(post) > 1e5

    def test_sender_survives_silent_receiver(self):
        """No feedback at all: the sender must keep running at its floor
        without crashing or ballooning memory."""
        scenario = ScenarioBuilder(seed=62).single_path(rtt=0.020, up_bps=10e6)
        session = OffloadSession(scenario)
        # Unbind the receiver's port before any traffic: pure black hole.
        scenario.net["server"].unbind(7000)
        session.run(10.0)
        sender = session.sender
        # Budget stayed at (or near) its floor — no feedback, no growth.
        assert sender.budget_bps <= sender.controller.min_bps * 2
        # Backlogs are bounded (expired, not accumulated).
        for spec in session.streams:
            assert len(sender.stream_stats(spec.stream_id).backlog) < 2000

    def test_wifi_death_failover_to_lte(self):
        """WIFI_PREFERRED keeps the session alive when WiFi dies for good."""
        scenario = ScenarioBuilder(seed=63).multipath()
        session = OffloadSession(scenario, policy=MultipathPolicy.WIFI_PREFERRED)
        sched = session.sender.scheduler

        # Radio gone for good at t=5: a permanent blackout on the WiFi
        # uplink, plus telling the scheduler the path is unusable.
        wifi_link = scenario.net.path_links("client-wifi", "server")[0]
        FaultInjector(scenario.net).apply(
            FaultPlan().blackout(5.0, None, [wifi_link])
        )
        scenario.sim.schedule(5.0, sched.set_usable, "wifi", False)
        report = session.run(15.0)
        # Data kept flowing (on LTE) after the failure.
        assert sched.metered_fraction() > 0.2
        meta = report.per_class[0]
        assert meta.received > 0
        assert report.mean_video_quality > 0.1

    def test_flapping_path_does_not_wedge_scheduler(self):
        scenario = ScenarioBuilder(seed=64).multipath()
        session = OffloadSession(scenario, policy=MultipathPolicy.WIFI_PREFERRED)
        sched = session.sender.scheduler
        for i in range(20):
            scenario.sim.schedule(0.5 + i * 0.5, sched.set_usable, "wifi", i % 2 == 0)
        report = session.run(12.0)
        assert report.per_class[2].received > 0


class TestTcpBlackout:
    def test_transfer_completes_through_blackout(self):
        sim = Simulator(seed=65)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 20e6, 10e6, delay=0.01,
                       queue_up=DropTailQueue(200))
        net.build_routes()
        got = []
        TcpListener(net["server"], 80,
                    on_accept=lambda c: setattr(c, "on_data", got.append))
        conn = TcpConnection(net["client"], 5000, "server", 80)
        conn.on_established = lambda: conn.send(2_000_000)
        conn.connect()
        links = net.path_links("client", "server") + net.path_links("server", "client")
        FaultInjector(net).apply(FaultPlan().blackout(0.5, 3.5, links))
        sim.run(until=300.0)
        assert sum(got) == 2_000_000
        assert conn.timeouts >= 1          # RTO carried it through
        assert conn._backoff == 1          # and backoff reset after recovery
