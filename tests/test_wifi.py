"""Tests for the 802.11 DCF model and the performance anomaly (Fig. 2)."""

import pytest

from repro.simnet.engine import Simulator
from repro.wireless.wifi import (
    FRAME_OVERHEAD,
    WifiCell,
    WifiStation,
    anomaly_throughput,
    frame_airtime,
)


class TestAirtime:
    def test_airtime_includes_overhead(self):
        assert frame_airtime(54e6) == pytest.approx(FRAME_OVERHEAD + 1500 * 8 / 54e6)

    def test_slower_rate_longer_airtime(self):
        assert frame_airtime(18e6) > frame_airtime(54e6)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            frame_airtime(0)


class TestAnalyticAnomaly:
    def test_equal_rates_split_evenly(self):
        a, b = anomaly_throughput([54e6, 54e6])
        assert a == b

    def test_slow_station_drags_everyone_down(self):
        fast_only = anomaly_throughput([54e6, 54e6])[0]
        mixed = anomaly_throughput([54e6, 18e6])[0]
        assert mixed < fast_only

    def test_mixed_cell_near_slow_rate_share(self):
        # The Heusse result: with one 54 and one 1 Mb/s station, both get
        # roughly what two 1 Mb/s stations would (within ~2x).
        mixed = anomaly_throughput([54e6, 1e6])[0]
        slow_pair = anomaly_throughput([1e6, 1e6])[0]
        assert mixed < 2.2 * slow_pair

    def test_more_stations_less_each(self):
        two = anomaly_throughput([54e6] * 2)[0]
        four = anomaly_throughput([54e6] * 4)[0]
        assert four < two


class TestWifiCell:
    def test_simulation_matches_analytic(self):
        sim = Simulator(seed=1)
        cell = WifiCell(sim)
        a = cell.add_station(WifiStation("a", 54e6))
        b = cell.add_station(WifiStation("b", 18e6))
        sim.run(until=10.0)
        predicted = anomaly_throughput([54e6, 18e6])[0]
        assert a.throughput_bps(1, 10) == pytest.approx(predicted, rel=0.1)
        assert b.throughput_bps(1, 10) == pytest.approx(predicted, rel=0.1)

    def test_rate_change_mid_run_degrades_both(self):
        sim = Simulator(seed=2)
        cell = WifiCell(sim)
        a = cell.add_station(WifiStation("a", 54e6))
        cell.add_station(WifiStation("b", 54e6))
        sim.run(until=5.0)
        cell.set_rate("b", 6e6)
        sim.run(until=10.0)
        a_before = a.throughput_bps(0, 5)
        a_after = a.throughput_bps(5, 10)
        assert a_after < a_before * 0.55  # A collapses though A never moved

    def test_single_station_gets_full_share(self):
        sim = Simulator(seed=3)
        cell = WifiCell(sim)
        a = cell.add_station(WifiStation("a", 54e6))
        sim.run(until=5.0)
        predicted = anomaly_throughput([54e6])[0]
        assert a.throughput_bps(0, 5) == pytest.approx(predicted, rel=0.05)

    def test_idle_station_consumes_no_airtime(self):
        sim = Simulator(seed=4)
        cell = WifiCell(sim)
        a = cell.add_station(WifiStation("a", 54e6))
        b = cell.add_station(WifiStation("b", 6e6, backlogged=False))
        sim.run(until=5.0)
        assert b.frames_sent == 0
        predicted = anomaly_throughput([54e6])[0]
        assert a.throughput_bps(0, 5) == pytest.approx(predicted, rel=0.05)

    def test_backlog_toggle_restarts_service(self):
        sim = Simulator(seed=5)
        cell = WifiCell(sim)
        a = cell.add_station(WifiStation("a", 54e6, backlogged=False))
        sim.run(until=1.0)
        assert a.frames_sent == 0
        cell.set_backlogged("a", True)
        sim.run(until=2.0)
        assert a.frames_sent > 0

    def test_duplicate_station_rejected(self):
        sim = Simulator()
        cell = WifiCell(sim)
        cell.add_station(WifiStation("a", 54e6))
        with pytest.raises(ValueError):
            cell.add_station(WifiStation("a", 54e6))

    def test_aggregate_throughput(self):
        sim = Simulator(seed=6)
        cell = WifiCell(sim)
        cell.add_station(WifiStation("a", 54e6))
        cell.add_station(WifiStation("b", 54e6))
        sim.run(until=5.0)
        agg = cell.aggregate_throughput_bps(0, 5)
        predicted = sum(anomaly_throughput([54e6, 54e6]))
        assert agg == pytest.approx(predicted, rel=0.1)
