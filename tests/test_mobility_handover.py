"""Tests for mobility and the coverage/handover model (Section IV-A4)."""

import pytest

from repro.wireless.handover import AccessPoint, ConnectivityTrace, CoverageMap
from repro.wireless.mobility import RandomWaypoint, Waypoint


class TestRandomWaypoint:
    def test_trajectory_covers_duration(self):
        traj = RandomWaypoint(seed=1).trajectory(600, tick=1.0)
        assert len(traj) >= 590
        assert traj[0].t == 0.0

    def test_positions_stay_in_area(self):
        model = RandomWaypoint(width=100, height=100, seed=2)
        traj = model.trajectory(600, tick=1.0)
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in traj)

    def test_speeds_bounded(self):
        model = RandomWaypoint(v_min=1.0, v_max=2.0, max_pause=0.0, seed=3)
        traj = model.trajectory(300, tick=1.0)
        speeds = RandomWaypoint.speeds(traj)
        moving = [s for s in speeds if s > 0.01]
        assert moving
        assert max(moving) <= 2.5  # tick quantization tolerance

    def test_pauses_produce_zero_speed(self):
        model = RandomWaypoint(max_pause=100.0, seed=4)
        traj = model.trajectory(600, tick=1.0)
        speeds = RandomWaypoint.speeds(traj)
        assert any(s == 0.0 for s in speeds)

    def test_deterministic_per_seed(self):
        t1 = RandomWaypoint(seed=5).trajectory(100)
        t2 = RandomWaypoint(seed=5).trajectory(100)
        assert t1 == t2

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            RandomWaypoint(v_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(v_min=2.0, v_max=1.0)


class TestAccessPoint:
    def test_covers(self):
        ap = AccessPoint("a", 0, 0, radius=10)
        assert ap.covers(Waypoint(0, 5, 5))
        assert not ap.covers(Waypoint(0, 20, 0))


class TestCoverageMap:
    def walk(self, tick=1.0, **urban_kw):
        cm = CoverageMap.urban(seed=1, **urban_kw)
        traj = RandomWaypoint(seed=1).trajectory(1800, tick=tick)
        return cm.connectivity(traj)

    def test_in_range_fraction_near_total(self):
        trace = self.walk()
        assert trace.wifi_in_range_fraction > 0.93

    def test_usable_fraction_much_lower_than_in_range(self):
        # The Wi2Me result: radio coverage != usable internet.
        trace = self.walk()
        assert trace.wifi_usable_fraction < trace.wifi_in_range_fraction - 0.2

    def test_cellular_fraction_high(self):
        trace = self.walk()
        assert trace.cellular_fraction > 0.9

    def test_any_connectivity_beats_wifi_alone(self):
        trace = self.walk()
        assert trace.any_connectivity_fraction > trace.wifi_usable_fraction

    def test_handovers_happen(self):
        trace = self.walk()
        assert trace.handover_count() > 5

    def test_closed_aps_never_usable(self):
        ap = AccessPoint("closed", 50, 50, radius=100, open=False)
        cm = CoverageMap(100, 100, [ap])
        traj = [Waypoint(float(t), 50, 50) for t in range(60)]
        trace = cm.connectivity(traj)
        assert trace.wifi_in_range_fraction == 1.0
        assert trace.wifi_usable_fraction == 0.0

    def test_association_delay_blocks_early_usability(self):
        ap = AccessPoint("open", 50, 50, radius=100)
        cm = CoverageMap(100, 100, [ap])
        traj = [Waypoint(float(t), 50, 50) for t in range(20)]
        trace = cm.connectivity(traj, assoc_time=8.0)
        usable_times = [t.t for t in trace.ticks if t.usable]
        assert min(usable_times) >= 8.0

    def test_handover_gap_adds_dead_time(self):
        ap1 = AccessPoint("x", 0, 0, radius=60)
        ap2 = AccessPoint("y", 100, 0, radius=60)
        cm = CoverageMap(100, 10, [ap1, ap2])
        # Walk from ap1 to ap2.
        traj = [Waypoint(float(t), t * 2.0, 0) for t in range(50)]
        trace = cm.connectivity(traj, assoc_time=2.0, handover_gap=5.0)
        assert trace.handover_count() == 1
        # After the switch there is a >= 7 s unusable window.
        switch_t = next(
            t.t for prev, t in zip(trace.ticks, trace.ticks[1:])
            if prev.ap != t.ap and prev.ap is not None
        )
        dead = [t for t in trace.ticks if switch_t <= t.t < switch_t + 7.0]
        assert all(not t.usable for t in dead)

    def test_empty_trace_fractions(self):
        trace = ConnectivityTrace()
        assert trace.wifi_usable_fraction == 0.0
        assert trace.handover_count() == 0
