"""Tests for the computer-vision substrate: synthesis, features,
matching, homography, tracking, pipeline."""

import numpy as np
import pytest

from repro.vision.features import (
    DESCRIPTOR_BITS,
    describe,
    descriptor_size_bytes,
    detect_corners,
    harris_response,
)
from repro.vision.homography import (
    estimate_homography,
    ransac_homography,
    reprojection_error,
)
from repro.vision.matching import hamming_matrix, match_descriptors, match_points
from repro.vision.pipeline import ArPipeline, StageCosts
from repro.vision.synthetic import apply_homography, make_scene, random_homography, warp_image
from repro.vision.tracking import Tracker


@pytest.fixture(scope="module")
def scene():
    return make_scene(240, 320, seed=1)


class TestSynthetic:
    def test_scene_shape_and_range(self, scene):
        assert scene.shape == (240, 320)
        assert 0.0 <= scene.min() and scene.max() <= 1.0

    def test_scene_deterministic(self):
        assert np.array_equal(make_scene(seed=3), make_scene(seed=3))
        assert not np.array_equal(make_scene(seed=3), make_scene(seed=4))

    def test_identity_warp_preserves_interior(self, scene):
        warped = warp_image(scene, np.eye(3))
        assert np.allclose(warped[20:-20, 20:-20], scene[20:-20, 20:-20], atol=1e-6)

    def test_random_homography_normalized(self):
        h = random_homography(seed=5)
        assert h[2, 2] == pytest.approx(1.0)

    def test_apply_homography_identity(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(apply_homography(np.eye(3), pts), pts)

    def test_translation_homography(self):
        h = np.array([[1, 0, 5], [0, 1, -3], [0, 0, 1]], dtype=float)
        out = apply_homography(h, np.array([[0.0, 0.0]]))
        assert np.allclose(out, [[5.0, -3.0]])


class TestFeatures:
    def test_corners_found_on_textured_scene(self, scene):
        corners = detect_corners(scene, max_corners=200)
        assert len(corners) > 10

    def test_corner_cap_respected(self, scene):
        assert len(detect_corners(scene, max_corners=5)) <= 5

    def test_corners_avoid_border(self, scene):
        for kp in detect_corners(scene):
            assert 16 <= kp.x <= 320 - 16
            assert 16 <= kp.y <= 240 - 16

    def test_min_distance_spreads_corners(self, scene):
        corners = detect_corners(scene, min_distance=15)
        for i, a in enumerate(corners):
            for b in corners[i + 1:]:
                dist = np.hypot(a.x - b.x, a.y - b.y)
                assert dist >= 10  # local-max filter guarantees spread

    def test_flat_image_no_corners(self):
        assert detect_corners(np.zeros((100, 100))) == []

    def test_harris_response_peaks_at_corner(self):
        img = np.zeros((60, 60))
        img[30:, 30:] = 1.0   # a single corner at (30, 30)
        resp = harris_response(img)
        peak = np.unravel_index(np.argmax(resp), resp.shape)
        assert abs(peak[0] - 30) <= 3 and abs(peak[1] - 30) <= 3

    def test_descriptors_shape_packed(self, scene):
        kps = detect_corners(scene, max_corners=20)
        desc = describe(scene, kps)
        assert desc.shape == (len(kps), DESCRIPTOR_BITS // 8)
        assert desc.dtype == np.uint8

    def test_descriptor_stable_under_noise(self, scene):
        kps = detect_corners(scene, max_corners=30)
        clean = describe(scene, kps)
        rng = np.random.default_rng(0)
        noisy = describe(scene + rng.normal(0, 0.01, scene.shape), kps)
        dist = hamming_matrix(clean, noisy).diagonal()
        assert dist.mean() < DESCRIPTOR_BITS * 0.15

    def test_empty_keypoints(self, scene):
        assert describe(scene, []).shape == (0, 32)

    def test_feature_payload_size(self):
        assert descriptor_size_bytes(100) == 100 * 40


class TestMatching:
    def test_hamming_identity_zero(self):
        d = np.random.default_rng(1).integers(0, 256, (5, 32)).astype(np.uint8)
        assert np.all(hamming_matrix(d, d).diagonal() == 0)

    def test_hamming_counts_bits(self):
        a = np.zeros((1, 1), dtype=np.uint8)
        b = np.array([[0b10110000]], dtype=np.uint8)
        assert hamming_matrix(a, b)[0, 0] == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_matrix(np.zeros((2, 4), dtype=np.uint8), np.zeros((2, 8), dtype=np.uint8))

    def test_self_match_is_perfect(self, scene):
        kps = detect_corners(scene, max_corners=50)
        desc = describe(scene, kps)
        matches = match_descriptors(desc, desc, ratio=1.0)
        assert len(matches) == len(kps)
        assert all(m.query == m.train for m in matches)

    def test_empty_inputs(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        assert match_descriptors(empty, empty) == []

    def test_match_points_stacking(self):
        from repro.vision.matching import Match
        q = np.array([[0.0, 1.0], [2.0, 3.0]])
        t = np.array([[4.0, 5.0]])
        pairs = match_points([Match(1, 0, 0)], q, t)
        assert pairs.tolist() == [[2.0, 3.0, 4.0, 5.0]]


class TestHomography:
    def test_exact_recovery_from_four_points(self):
        h_true = random_homography(seed=7)
        src = np.array([[10.0, 10.0], [300.0, 15.0], [20.0, 220.0], [310.0, 230.0]])
        dst = apply_homography(h_true, src)
        h_est = estimate_homography(src, dst)
        assert np.allclose(h_est, h_true, atol=1e-6)

    def test_least_squares_with_many_points(self):
        h_true = random_homography(seed=8)
        rng = np.random.default_rng(0)
        src = rng.uniform(0, 300, (40, 2))
        dst = apply_homography(h_true, src)
        h_est = estimate_homography(src, dst)
        errs = reprojection_error(h_est, src, dst)
        assert errs.max() < 1e-6

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            estimate_homography(np.zeros((3, 2)), np.zeros((3, 2)))

    def test_ransac_rejects_outliers(self):
        h_true = random_homography(seed=9)
        rng = np.random.default_rng(1)
        src = rng.uniform(20, 280, (60, 2))
        dst = apply_homography(h_true, src)
        # Corrupt 30% of correspondences.
        n_bad = 18
        dst[:n_bad] += rng.uniform(30, 80, (n_bad, 2))
        result = ransac_homography(src, dst, threshold=2.0, seed=0)
        assert result.success
        assert result.n_inliers >= 60 - n_bad - 2
        assert not result.inliers[:n_bad].any()
        errs = reprojection_error(result.homography, src[result.inliers], dst[result.inliers])
        assert errs.max() < 2.5

    def test_ransac_fails_on_pure_noise(self):
        rng = np.random.default_rng(2)
        src = rng.uniform(0, 300, (30, 2))
        dst = rng.uniform(0, 300, (30, 2))
        result = ransac_homography(src, dst, threshold=1.0, min_inliers=10, seed=0)
        assert not result.success

    def test_ransac_too_few_points(self):
        result = ransac_homography(np.zeros((2, 2)), np.zeros((2, 2)))
        assert not result.success
        assert result.iterations == 0


class TestTracker:
    def test_tracks_static_frame_perfectly(self, scene):
        kps = detect_corners(scene, max_corners=30)
        tracker = Tracker()
        tracker.set_keyframe(scene, kps)
        result = tracker.track(scene)
        assert result.lost_fraction == 0.0
        assert result.mean_residual < 1e-9

    def test_tracks_small_translation(self, scene):
        kps = detect_corners(scene, max_corners=30)
        tracker = Tracker(search_radius=10)
        tracker.set_keyframe(scene, kps)
        shifted = np.roll(scene, 4, axis=1)  # 4 px right
        result = tracker.track(shifted)
        assert result.lost_fraction < 0.35
        moved = result.points[~np.isnan(result.points[:, 0])]
        orig = np.array([[k.x, k.y] for k in kps])[~np.isnan(result.points[:, 0])]
        dx = (moved[:, 0] - orig[:, 0])
        assert np.median(dx) == pytest.approx(4, abs=1.1)

    def test_loses_points_on_unrelated_frame(self, scene):
        kps = detect_corners(scene, max_corners=30)
        tracker = Tracker()
        tracker.set_keyframe(scene, kps)
        other = make_scene(240, 320, seed=99)
        result = tracker.track(other)
        assert result.lost_fraction > 0.4
        assert tracker.should_trigger(result)

    def test_requires_keyframe(self, scene):
        tracker = Tracker()
        with pytest.raises(RuntimeError):
            tracker.track(scene)


class TestPipeline:
    def test_recognizes_warped_scene(self, scene):
        pipe = ArPipeline(scene)
        h_true = random_homography(seed=11)
        frame = warp_image(scene, h_true)
        result = pipe.process_frame(frame)
        assert result.recognized
        assert result.n_inliers >= 8
        # Estimated frame->reference homography ~ inverse of the warp.
        inv = np.linalg.inv(h_true)
        inv /= inv[2, 2]
        assert np.abs(result.homography - inv).max() < 1.0

    def test_rejects_unrelated_frame(self, scene):
        pipe = ArPipeline(scene)
        other = make_scene(240, 320, seed=55)
        result = pipe.process_frame(other)
        assert not result.recognized

    def test_costs_accumulate_per_stage(self, scene):
        pipe = ArPipeline(scene)
        result = pipe.process_frame(warp_image(scene, random_homography(seed=1)))
        costs = result.costs
        assert costs.detect > 0 and costs.describe > 0 and costs.match > 0
        assert costs.total == pytest.approx(
            costs.detect + costs.describe + costs.match + costs.ransac
            + costs.track + costs.encode + costs.render
        )

    def test_tracking_cheaper_than_recognition(self, scene):
        pipe = ArPipeline(scene)
        frame = warp_image(scene, random_homography(seed=2))
        full = pipe.process_frame(frame)
        assert full.recognized
        _, track_costs = pipe.track_frame(frame)
        assert track_costs.total < full.costs.total / 3

    def test_track_requires_keyframe(self, scene):
        pipe = ArPipeline(scene)
        with pytest.raises(RuntimeError):
            pipe.track_frame(scene)

    def test_corner_budget_scales_cost(self, scene):
        pipe = ArPipeline(scene, max_corners=300)
        frame = warp_image(scene, random_homography(seed=3))
        rich = pipe.process_frame(frame, max_corners=300)
        poor = pipe.process_frame(frame, max_corners=30)
        assert poor.costs.describe <= rich.costs.describe

    def test_encode_cost_static(self):
        c = ArPipeline.encode_cost(320 * 240)
        assert c.encode > 0
        assert c.total == c.encode

    def test_stage_cost_split(self):
        costs = StageCosts(detect=10.0, describe=5.0, match=3.0)
        split = costs.split(["detect", "describe"])
        assert split["local"] == 15.0
        assert split["remote"] == pytest.approx(3.0)

    def test_stage_cost_addition(self):
        total = StageCosts(detect=1.0) + StageCosts(detect=2.0, match=1.0)
        assert total.detect == 3.0
        assert total.match == 1.0


class TestPoseIntegration:
    def test_pipeline_result_exposes_pose(self, scene):
        pipe = ArPipeline(scene)
        frame = warp_image(scene, random_homography(seed=31))
        result = pipe.process_frame(frame)
        assert result.recognized
        pose = result.pose()
        assert pose is not None
        # A small warp implies a small rotation.
        yaw, pitch, roll = pose.yaw_pitch_roll
        assert abs(yaw) < 0.3 and abs(pitch) < 0.3 and abs(roll) < 0.3

    def test_unrecognized_frame_has_no_pose(self, scene):
        pipe = ArPipeline(scene)
        result = pipe.process_frame(make_scene(240, 320, seed=88))
        assert result.pose() is None
