"""Unit and behavioural tests for TCP NewReno."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.tcp import TcpConnection, TcpListener


def make_path(down=10e6, up=10e6, delay=0.01, loss=0.0, queue_up=None, queue_down=None):
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex(
        "server", "client", down, up, delay=delay, loss=loss,
        queue_down=queue_down, queue_up=queue_up,
    )
    net.build_routes()
    return sim, net


def transfer(sim, net, nbytes, until=120.0, **conn_kw):
    """Run a client->server transfer; returns (client_conn, delivered)."""
    delivered = []
    TcpListener(
        net["server"], 80,
        on_accept=lambda c: setattr(c, "on_data", delivered.append),
    )
    client = TcpConnection(net["client"], 5000, "server", 80, **conn_kw)
    client.on_established = lambda: client.send(nbytes)
    client.connect()
    sim.run(until=until)
    return client, sum(delivered)


def test_handshake_then_transfer_completes():
    sim, net = make_path()
    client, delivered = transfer(sim, net, 500_000)
    assert client.transfer_complete
    assert delivered == 500_000


def test_no_loss_no_retransmits():
    sim, net = make_path(queue_up=DropTailQueue(10_000), queue_down=DropTailQueue(10_000))
    client, delivered = transfer(sim, net, 300_000)
    assert delivered == 300_000
    assert client.retransmits == 0
    assert client.timeouts == 0


def test_delivery_with_random_loss():
    sim, net = make_path(loss=0.02)
    client, delivered = transfer(sim, net, 300_000, until=300.0)
    assert delivered == 300_000
    assert client.retransmits > 0


def test_rtt_estimate_close_to_path_rtt():
    sim, net = make_path(delay=0.02, queue_up=DropTailQueue(10_000),
                         queue_down=DropTailQueue(10_000))
    client, _ = transfer(sim, net, 100_000)
    # Base RTT is 40 ms prop + serialization + delayed ACK effects.
    assert 0.04 <= client.srtt < 0.15


def test_cwnd_grows_during_slow_start():
    sim, net = make_path(queue_up=DropTailQueue(10_000), queue_down=DropTailQueue(10_000))
    client, _ = transfer(sim, net, 2_000_000)
    cwnds = [c for _, c in client.cwnd_trace]
    assert max(cwnds) > cwnds[0]


def test_fast_retransmit_on_drop():
    # Tight downlink queue forces drops -> dupacks -> fast retransmit.
    sim, net = make_path(up=2e6, queue_up=DropTailQueue(20))
    client, delivered = transfer(sim, net, 1_000_000, until=120.0)
    assert delivered == 1_000_000
    assert client.retransmits > 0
    # Fast recovery should handle most losses without RTO collapse.
    assert client.timeouts <= client.retransmits


def test_throughput_tracks_bottleneck():
    sim, net = make_path(up=5e6, queue_up=DropTailQueue(100))
    client, delivered = transfer(sim, net, 3_000_000, until=60.0)
    assert client.transfer_complete
    # Effective goodput within 2x of the 5 Mb/s bottleneck (handshake,
    # recovery, header overheads included).
    rate = 3_000_000 * 8 / 40.0
    assert rate > 0.5e6


def test_bulk_mode_saturates_link():
    sim, net = make_path(up=5e6, queue_up=DropTailQueue(100))
    received = []
    TcpListener(net["server"], 80, on_accept=lambda c: setattr(c, "on_data", received.append))
    client = TcpConnection(net["client"], 5000, "server", 80)
    client.on_established = client.send_forever
    client.connect()
    sim.run(until=30.0)
    goodput = sum(received) * 8 / 30.0
    assert goodput == pytest.approx(5e6, rel=0.25)


def test_on_complete_callback():
    sim, net = make_path()
    done = []
    TcpListener(net["server"], 80)
    client = TcpConnection(net["client"], 5000, "server", 80)
    client.on_complete = lambda: done.append(sim.now)
    client.on_established = lambda: client.send(50_000)
    client.connect()
    sim.run(until=60.0)
    assert len(done) == 1


def test_two_connections_share_listener():
    sim, net = make_path()
    sums = {}

    def accept(conn):
        sums[conn.dst_port] = 0
        conn.on_data = lambda n, p=conn.dst_port: sums.__setitem__(p, sums[p] + n)

    TcpListener(net["server"], 80, on_accept=accept)
    c1 = TcpConnection(net["client"], 5001, "server", 80)
    c2 = TcpConnection(net["client"], 5002, "server", 80)
    for c in (c1, c2):
        c.on_established = lambda c=c: c.send(100_000)
        c.connect()
    sim.run(until=120.0)
    assert sums.get(5001) == 100_000
    assert sums.get(5002) == 100_000


def test_send_requires_positive_bytes():
    sim, net = make_path()
    client = TcpConnection(net["client"], 5000, "server", 80)
    with pytest.raises(ValueError):
        client.send(0)


def test_double_connect_rejected():
    sim, net = make_path()
    TcpListener(net["server"], 80)
    client = TcpConnection(net["client"], 5000, "server", 80)
    client.connect()
    with pytest.raises(RuntimeError):
        client.connect()


def test_timeout_recovery_after_heavy_loss_burst():
    sim, net = make_path(loss=0.3)
    client, delivered = transfer(sim, net, 50_000, until=600.0)
    assert delivered == 50_000  # eventually completes through RTOs
