"""Unit tests for the DCCP-like TFRC transport."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.dccp import DccpSocket, tcp_friendly_rate


def make_net(up=5e6, loss=0.0, delay=0.01):
    sim = Simulator(seed=2)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("b", "a", 50e6, up, delay=delay, loss=loss,
                   queue_up=DropTailQueue(50))
    net.build_routes()
    return sim, net


class TestEquation:
    def test_rate_decreases_with_loss(self):
        low = tcp_friendly_rate(1200, 0.05, 0.001)
        high = tcp_friendly_rate(1200, 0.05, 0.05)
        assert low > high

    def test_rate_decreases_with_rtt(self):
        fast = tcp_friendly_rate(1200, 0.01, 0.01)
        slow = tcp_friendly_rate(1200, 0.2, 0.01)
        assert fast > slow

    def test_zero_rtt_unbounded(self):
        assert tcp_friendly_rate(1200, 0.0, 0.01) == float("inf")


class TestSocket:
    def test_delivers_datagrams(self):
        sim, net = make_net()
        got = []
        DccpSocket(net["b"], 9, on_receive=got.append)
        sender = DccpSocket(net["a"], 10, dst="b", dst_port=9)
        sender.start(lambda: 1200)
        sim.run(until=5.0)
        sender.stop()
        assert len(got) > 50

    def test_sender_requires_destination(self):
        sim, net = make_net()
        sock = DccpSocket(net["a"], 10)
        with pytest.raises(RuntimeError):
            sock.start(lambda: 100)

    def test_rate_backs_off_under_loss(self):
        sim, net = make_net(up=2e6, loss=0.05)
        DccpSocket(net["b"], 9)
        sender = DccpSocket(net["a"], 10, dst="b", dst_port=9,
                            initial_rate_bps=10e6)
        sender.start(lambda: 1200)
        sim.run(until=30.0)
        assert sender.allowed_rate_bps < 10e6
        assert len(sender.rate_trace) > 5

    def test_rate_converges_near_bottleneck_without_wire_loss(self):
        sim, net = make_net(up=3e6)
        DccpSocket(net["b"], 9)
        sender = DccpSocket(net["a"], 10, dst="b", dst_port=9,
                            initial_rate_bps=200_000)
        sender.start(lambda: 1200)
        sim.run(until=30.0)
        # Queue drops at the bottleneck bound the rate near 3 Mb/s.
        assert 1e6 < sender.allowed_rate_bps < 12e6

    def test_skip_slots_send_nothing(self):
        sim, net = make_net()
        got = []
        DccpSocket(net["b"], 9, on_receive=got.append)
        sender = DccpSocket(net["a"], 10, dst="b", dst_port=9)
        sender.start(lambda: None)
        sim.run(until=2.0)
        assert got == []
        assert sender.datagrams_sent == 0
