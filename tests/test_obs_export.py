"""Tests for the observability exporters.

The two CI-gated guarantees live here: exports are a byte-identical
function of ``(scenario, seed)``, and every frame's exported stage
durations reconcile with its end-to-end latency within ±1 µs.
"""

import json

import pytest

from repro.core.qlog import EventLog
from repro.obs import (
    chrome_trace_json,
    qlog_lines,
    reconcile_frame_spans,
    run_obs_scenario,
    snapshot,
    validate_chrome_trace,
)
from repro.obs.spans import FrameTrace, Tracer
from repro.simnet.engine import Simulator

FRAMES = 12


@pytest.fixture(scope="module")
def run():
    return run_obs_scenario("cell_offload", seed=11, frames=FRAMES)


class TestChromeTrace:
    def test_schema_valid(self, run):
        assert validate_chrome_trace(chrome_trace_json(run.tracer)) == []

    def test_complete_frame_span_trees(self, run):
        roots = run.tracer.frame_roots()
        assert len(roots) == FRAMES
        for root in roots:
            names = [c.name for c in root.children]
            assert names == ["local", "uplink", "server", "downlink",
                             "render"]
            assert all(c.finished for c in root.children)

    def test_stage_sums_reconcile_with_frame_latency(self, run):
        assert reconcile_frame_spans(run.tracer, tolerance_us=1) == []

    def test_frame_tracks_are_separate_tids(self, run):
        doc = json.loads(chrome_trace_json(run.tracer))
        frame_events = [e for e in doc["traceEvents"]
                        if e.get("ph") == "X" and e["name"] == "frame"]
        assert len({e["tid"] for e in frame_events}) == FRAMES
        labels = {e["args"]["name"] for e in doc["traceEvents"]
                  if e.get("name") == "thread_name"}
        assert "frame 0" in labels

    def test_root_duration_matches_summary_latency(self, run):
        doc = json.loads(chrome_trace_json(run.tracer))
        durs = [e["dur"] for e in doc["traceEvents"]
                if e.get("ph") == "X" and e["name"] == "frame"]
        mean_us = sum(durs) / len(durs)
        assert mean_us == pytest.approx(run.summary["mean_latency"] * 1e6,
                                        abs=len(durs))

    def test_validator_flags_broken_events(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0,
             "dur": -5},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 1.5, "dur": 1},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("dur" in p for p in problems)
        assert any("'name'" in p for p in problems)
        assert any("'ts'" in p for p in problems)
        assert validate_chrome_trace("not json{") != []
        assert validate_chrome_trace({"foo": 1}) != []

    def test_reconcile_flags_gapped_frames(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        trace = FrameTrace(tracer, 0)
        stage = trace.begin("local")
        sim.schedule(0.010, lambda: tracer.finish(stage))
        sim.run()
        # Root closes 5 ms after its only child: a 5000 µs hole.
        sim.schedule(0.005, lambda: trace.complete())
        sim.run()
        problems = reconcile_frame_spans(tracer)
        assert len(problems) == 1
        assert "stage sum" in problems[0]

    def test_reconcile_reports_missing_traces(self):
        tracer = Tracer(Simulator(seed=1))
        assert reconcile_frame_spans(tracer) == ["no completed frame traces"]

    def test_empty_tracer_exports_valid_trace(self):
        tracer = Tracer(Simulator(seed=1))
        text = chrome_trace_json(tracer)
        assert validate_chrome_trace(text) == []
        events = json.loads(text)["traceEvents"]
        # nothing but process metadata: no spans were recorded
        assert all(e["ph"] == "M" for e in events)

    def test_single_span_frame_reconciles_and_validates(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        trace = FrameTrace(tracer, 0)
        stage = trace.begin("local")
        sim.schedule(0.010, lambda: tracer.finish(stage))
        sim.schedule(0.010, lambda: trace.complete())
        sim.run()
        # One stage covering the whole frame: no gap to flag.
        assert reconcile_frame_spans(tracer) == []
        assert validate_chrome_trace(chrome_trace_json(tracer)) == []


class TestWorkerTimelineExport:
    """The fleet's worker-timeline export reuses this module's validator."""

    def doc(self):
        return {
            "run": {"driver_pid": 1000},
            "workers": {"1000": {"shards": 1}, "1001": {"shards": 1}},
            "events": [
                {"ev": "shard", "pid": 1001, "tag": "s=0", "attempt": 0,
                 "t0": 0.001, "t1": 0.004, "ok": True},
                {"ev": "batch", "pid": 1001, "t0": 0.001, "t1": 0.005,
                 "n": 2, "rss_kib": 1024},
                {"ev": "cache_pass", "t0": 0.0, "t1": 0.0005,
                 "hits": 0, "misses": 2},
                {"ev": "retry", "t": 0.006, "tag": "s=1", "attempt": 1},
            ],
        }

    def test_synthetic_timeline_validates(self):
        from repro.fleet.telemetry import worker_timeline_json

        assert validate_chrome_trace(worker_timeline_json(self.doc())) == []

    def test_empty_document_validates(self):
        from repro.fleet.telemetry import worker_timeline_json

        text = worker_timeline_json({})
        assert validate_chrome_trace(text) == []

    def test_slices_land_on_their_worker_pid(self):
        from repro.fleet.telemetry import worker_timeline_events

        events = worker_timeline_events(self.doc())
        shard = next(e for e in events if e.get("cat") == "shard")
        assert shard["pid"] == 1001
        assert shard["dur"] == 3000  # 3 ms in trace microseconds
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert names == {"fleet driver", "worker 1001"}


class TestDeterminism:
    def test_double_run_byte_identical_artifacts(self, run):
        again = run_obs_scenario("cell_offload", seed=11, frames=FRAMES)
        assert chrome_trace_json(again.tracer) == chrome_trace_json(run.tracer)
        assert again.registry.to_json() == run.registry.to_json()
        assert qlog_lines(tracer=again.tracer, registry=again.registry) == \
            qlog_lines(tracer=run.tracer, registry=run.registry)

    def test_workload_change_changes_artifact(self, run):
        other = run_obs_scenario("cell_offload", seed=11, frames=FRAMES + 1)
        assert other.registry.to_json() != run.registry.to_json()
        assert chrome_trace_json(other.tracer) != chrome_trace_json(run.tracer)


class TestQlogLines:
    def test_stream_is_chronological_and_parseable(self, run):
        log = EventLog()
        log.emit(0.001, "path", "tick")
        lines = qlog_lines(tracer=run.tracer, log=log,
                           registry=run.registry).splitlines()
        records = [json.loads(line) for line in lines]
        times = [r["time"] for r in records]
        assert times == sorted(times)
        categories = {r["category"] for r in records}
        assert {"frame", "path", "meta", "metric"} <= categories

    def test_metric_snapshot_is_last(self, run):
        lines = qlog_lines(tracer=run.tracer,
                           registry=run.registry).splitlines()
        last = json.loads(lines[-1])
        assert last["category"] == "metric"
        assert last["name"] == "registry-snapshot"
        assert "counters" in last["data"]

    def test_span_records_carry_ids(self, run):
        records = [json.loads(line) for line in
                   qlog_lines(tracer=run.tracer).splitlines()]
        uplinks = [r for r in records if r["name"] == "uplink"]
        assert uplinks
        for r in uplinks:
            assert {"trace_id", "span_id", "parent_id",
                    "start", "duration"} <= set(r["data"])


class TestSnapshot:
    def test_headline_structure(self, run):
        snap = snapshot(run.registry, run.tracer)
        assert snap["frames"]["traced"] == FRAMES
        assert snap["frames"]["unfinished"] == 0
        assert snap["counters"]["frame.completed"] == FRAMES
        lat = snap["histograms"]["frame.latency"]
        assert lat["count"] == FRAMES
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]

    def test_breakdowns_cover_all_frames(self, run):
        assert len(run.breakdowns) == FRAMES
        for b in run.breakdowns:
            assert sum(b["critical_path"].values()) == \
                pytest.approx(b["total"], abs=1e-9)


class TestMartpScenario:
    def test_registry_covers_protocol_and_links(self):
        run = run_obs_scenario("martp_session", seed=5, frames=30)
        names = set(run.registry.counters)
        assert any(n.startswith("martp.stream.") for n in names)
        assert any(n.startswith("link.") for n in names)
        assert run.event_log is not None
        assert validate_chrome_trace(chrome_trace_json(run.tracer)) == []

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_obs_scenario("nope")
