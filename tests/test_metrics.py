"""Unit tests for QoS/QoE metrics."""


import pytest

from repro.core.metrics import ClassReport, QoeReport, mos_score
from repro.core.traffic import Priority, TrafficClass


def report(name="s", tc=TrafficClass.FULL_BEST_EFFORT, pr=Priority.LOWEST,
           sent=100, dropped=0, received=100, in_time=100, recovered=0):
    return ClassReport(
        name=name, traffic_class=tc, priority=pr, sent=sent,
        dropped_at_sender=dropped, received=received, in_time=in_time,
        recovered=recovered, mean_latency=0.02, p95_latency=0.04,
    )


class TestClassReport:
    def test_delivery_ratio(self):
        r = report(sent=80, dropped=20, received=80)
        assert r.delivery_ratio == pytest.approx(0.8)

    def test_in_time_ratio(self):
        r = report(received=100, in_time=90)
        assert r.in_time_ratio == pytest.approx(0.9)

    def test_shed_ratio(self):
        r = report(sent=60, dropped=40)
        assert r.shed_ratio == pytest.approx(0.4)

    def test_empty_report_safe(self):
        r = report(sent=0, dropped=0, received=0, in_time=0)
        assert r.delivery_ratio == 1.0
        assert r.in_time_ratio == 0.0


class TestQoeReport:
    def test_critical_intact_true_when_all_delivered(self):
        q = QoeReport(per_class={
            0: report(tc=TrafficClass.CRITICAL, received=100, in_time=100),
        })
        assert q.critical_intact

    def test_critical_intact_false_on_loss(self):
        q = QoeReport(per_class={
            0: report(tc=TrafficClass.CRITICAL, received=90),
        })
        assert not q.critical_intact

    def test_mean_video_quality_default(self):
        q = QoeReport(per_class={})
        assert q.mean_video_quality == 1.0

    def test_mean_video_quality(self):
        q = QoeReport(per_class={}, video_quality_timeline=[1.0, 0.5, 0.0])
        assert q.mean_video_quality == pytest.approx(0.5)


class TestMos:
    def test_perfect_session_scores_5(self):
        q = QoeReport(per_class={0: report()}, video_quality_timeline=[1.0])
        assert mos_score(q) == pytest.approx(5.0, abs=0.01)

    def test_critical_loss_is_catastrophic(self):
        q = QoeReport(per_class={
            0: report(tc=TrafficClass.CRITICAL, received=50, in_time=50),
        })
        assert mos_score(q) < 3.5

    def test_video_degradation_is_gentle(self):
        q = QoeReport(per_class={0: report()}, video_quality_timeline=[0.5])
        assert 4.0 < mos_score(q) < 5.0

    def test_score_clamped_to_1(self):
        q = QoeReport(per_class={
            0: report(tc=TrafficClass.CRITICAL, received=0, in_time=0),
            1: report(pr=Priority.HIGHEST, received=100, in_time=0),
        }, video_quality_timeline=[0.0])
        assert mos_score(q) >= 1.0

    def test_missed_deadlines_hurt_more_on_high_priority(self):
        base = {0: report(pr=Priority.HIGHEST, in_time=50)}
        low = {0: report(pr=Priority.LOWEST, in_time=50)}
        assert mos_score(QoeReport(per_class=base)) < mos_score(QoeReport(per_class=low))
