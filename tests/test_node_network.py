"""Unit tests for nodes, routing and the Network topology builder."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.node import Host
from repro.simnet.packet import Packet


class Recorder:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


def star_network(sim):
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_router("r")
    net.add_duplex("a", "r", 10e6, delay=0.001)
    net.add_duplex("r", "b", 10e6, delay=0.001)
    net.build_routes()
    return net


def test_host_port_dispatch():
    sim = Simulator()
    net = star_network(sim)
    rec = Recorder()
    net["b"].bind(80, rec)
    net["a"].send(Packet(src="a", dst="b", size=100, dst_port=80))
    sim.run()
    assert len(rec.packets) == 1


def test_router_forwards():
    sim = Simulator()
    net = star_network(sim)
    rec = Recorder()
    net["b"].bind(80, rec)
    net["a"].send(Packet(src="a", dst="b", size=100, dst_port=80))
    sim.run()
    assert net["r"].packets_forwarded == 1


def test_unbound_port_counted():
    sim = Simulator()
    net = star_network(sim)
    net["a"].send(Packet(src="a", dst="b", size=100, dst_port=9999))
    sim.run()
    assert net["b"].packets_dropped_no_port == 1


def test_default_handler():
    sim = Simulator()
    net = star_network(sim)
    got = []
    net["b"].default_handler = got.append
    net["a"].send(Packet(src="a", dst="b", size=100, dst_port=9999))
    sim.run()
    assert len(got) == 1


def test_unroutable_counted():
    sim = Simulator()
    net = star_network(sim)
    ok = net["a"].send(Packet(src="a", dst="nowhere", size=100))
    assert not ok
    assert net["a"].packets_unroutable == 1


def test_double_bind_rejected():
    sim = Simulator()
    host = Host(sim, "h")
    host.bind(1, Recorder())
    with pytest.raises(ValueError):
        host.bind(1, Recorder())


def test_unbind_allows_rebind():
    sim = Simulator()
    host = Host(sim, "h")
    host.bind(1, Recorder())
    host.unbind(1)
    host.bind(1, Recorder())
    assert host.is_bound(1)


def test_router_rejects_local_delivery():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_router("r")
    net.add_duplex("a", "r", 1e6)
    net.build_routes()
    net["a"].send(Packet(src="a", dst="r", size=10))
    with pytest.raises(RuntimeError):
        sim.run()


def test_duplicate_node_name_rejected():
    net = Network(Simulator())
    net.add_host("x")
    with pytest.raises(ValueError):
        net.add_host("x")


def test_route_via_foreign_link_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_host("c")
    link = net.add_link("a", "b", 1e6)
    with pytest.raises(ValueError):
        net["c"].add_route("b", link)


class TestRouting:
    def make_diamond(self):
        """a - (fast upper r1 / slow lower r2) - b."""
        sim = Simulator()
        net = Network(sim)
        for name in ("a", "b"):
            net.add_host(name)
        for name in ("r1", "r2"):
            net.add_router(name)
        net.add_duplex("a", "r1", 100e6, delay=0.001)
        net.add_duplex("r1", "b", 100e6, delay=0.001)
        net.add_duplex("a", "r2", 100e6, delay=0.050)
        net.add_duplex("r2", "b", 100e6, delay=0.050)
        net.build_routes()
        return sim, net

    def test_shortest_path_preferred(self):
        sim, net = self.make_diamond()
        links = net.path_links("a", "b")
        assert [l.dst.name for l in links] == ["r1", "b"]

    def test_base_rtt(self):
        sim, net = self.make_diamond()
        rtt = net.base_rtt("a", "b", packet_size=1514)
        # 4 hops x 1 ms propagation + 4 serializations of ~121 µs
        assert rtt == pytest.approx(0.004 + 4 * (1514 * 8 / 100e6), rel=0.01)

    def test_bottleneck_rate(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_router("r")
        net.add_duplex("a", "r", 100e6)
        net.add_duplex("r", "b", 3e6)
        net.build_routes()
        assert net.bottleneck_rate("a", "b") == 3e6

    def test_end_to_end_delivery_over_two_hops(self):
        sim, net = self.make_diamond()
        rec = Recorder()
        net["b"].bind(5, rec)
        net["a"].send(Packet(src="a", dst="b", size=1000, dst_port=5))
        sim.run()
        assert len(rec.packets) == 1
        # Fast path: ~2 ms propagation, not 100 ms.
        assert sim.now < 0.01
