"""Tests for MARTP structured event logging."""

import json

import pytest

from repro.core.qlog import EventLog, instrument_sender
from repro.core.session import OffloadSession, ScenarioBuilder


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(1.0, "congestion", "budget-decrease", path="wifi")
        log.emit(2.0, "allocation", "round", budget=1e6)
        assert len(log) == 2
        assert len(log.of("congestion")) == 1
        assert log.of(name="round")[0].data["budget"] == 1e6

    def test_between(self):
        log = EventLog()
        for t in (0.5, 1.5, 2.5):
            log.emit(t, "path", "tick")
        assert len(log.between(1.0, 2.0)) == 1

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit(0.0, "weird", "x")

    def test_cap_counts_drops(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.emit(float(i), "path", "tick")
        assert len(log) == 2
        assert log.dropped == 3

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit(1.0, "recovery", "retransmit", stream="ref", seq=7)
        lines = log.to_jsonl().splitlines()
        parsed = json.loads(lines[0])
        assert parsed["data"]["seq"] == 7
        assert parsed["category"] == "recovery"

    def test_summary_counts_by_category(self):
        log = EventLog()
        log.emit(0.0, "path", "tick")
        log.emit(1.0, "path", "tick")
        log.emit(2.0, "shedding", "message-shed")
        s = log.summary()
        assert s["events"] == 3
        assert s["dropped"] == 0
        assert s["complete"] is True
        assert s["by_category"] == {"path": 2, "shedding": 1}

    def test_summary_surfaces_drops(self):
        log = EventLog(max_events=1)
        log.emit(0.0, "path", "tick")
        log.emit(1.0, "path", "tick")
        s = log.summary()
        assert s["dropped"] == 1
        assert s["complete"] is False

    def test_json_lines_trailer_carries_summary(self):
        log = EventLog(max_events=2)
        for t in (0.5, 1.5, 2.5):
            log.emit(t, "path", "tick")
        lines = log.to_json_lines().splitlines()
        assert len(lines) == 3          # two events + trailer
        trailer = json.loads(lines[-1])
        assert trailer["category"] == "meta"
        assert trailer["name"] == "log-summary"
        assert trailer["data"]["dropped"] == 1
        assert trailer["data"]["complete"] is False
        assert trailer["time"] == 1.5   # last kept event's time

    def test_json_lines_empty_log_still_has_trailer(self):
        trailer = json.loads(EventLog().to_json_lines())
        assert trailer["name"] == "log-summary"
        assert trailer["data"]["events"] == 0


class TestInstrumentedSession:
    def run_session(self, up_bps, loss=0.0, duration=10.0):
        scenario = ScenarioBuilder(seed=77).single_path(
            rtt=0.030, up_bps=up_bps, loss=loss)
        session = OffloadSession(scenario)
        log = instrument_sender(session.sender)
        session.run(duration)
        return session, log

    def test_congested_session_logs_decreases_and_allocations(self):
        session, log = self.run_session(up_bps=2.5e6)
        assert len(log.of("congestion", "budget-decrease")) > 0
        assert len(log.of("allocation", "round")) > 10
        # Every decrease event carries a real reduction.
        for event in log.of("congestion"):
            assert event.data["after"] < event.data["before"]

    def test_lossy_session_logs_retransmissions(self):
        session, log = self.run_session(up_bps=20e6, loss=0.04)
        retransmits = log.of("recovery", "retransmit")
        assert retransmits
        # Only the retransmitting classes appear (never interframes or
        # sensor data, which are full best effort).
        streams = {e.data["stream"] for e in retransmits}
        assert streams <= {"video-reference-frames", "connection-metadata"}

    def test_clean_fat_session_logs_no_congestion(self):
        session, log = self.run_session(up_bps=40e6, duration=6.0)
        assert log.of("congestion", "budget-decrease") == []

    def test_events_time_ordered(self):
        _, log = self.run_session(up_bps=2.5e6, duration=6.0)
        times = [e.time for e in log.events]
        assert times == sorted(times)
