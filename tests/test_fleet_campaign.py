"""Campaign expansion, seed derivation, fingerprints, replay."""

import pytest

from repro.fleet import (
    Campaign,
    demo_campaigns,
    get_scenario,
    run_shard,
    scenario_names,
    shard_seed,
)
from repro.fleet.campaign import SCHEMA_VERSION, stable_hash


def small_campaign(**kw):
    defaults = dict(name="t", scenario="table2_offload", seeds=2, base_seed=5,
                    grid={"rtt": [0.01, 0.02]}, params={"n_frames": 3})
    defaults.update(kw)
    return Campaign(**defaults)


class TestSeedDerivation:
    def test_seed_is_pure_function_of_base_seed_and_tag(self):
        assert shard_seed(7, "rtt=0.01/s0001") == shard_seed(7, "rtt=0.01/s0001")
        assert shard_seed(7, "a") != shard_seed(8, "a")
        assert shard_seed(7, "a") != shard_seed(7, "b")

    def test_seed_fits_random_seed_and_json(self):
        s = shard_seed(0, "x")
        assert 0 <= s < 2 ** 63

    def test_growing_the_grid_preserves_existing_shards(self):
        """Adding grid points must not perturb existing shards' seeds."""
        before = {s.tag: s.seed for s in small_campaign().shards()}
        grown = small_campaign(grid={"rtt": [0.01, 0.02, 0.03]})
        after = {s.tag: s.seed for s in grown.shards()}
        for tag, seed in before.items():
            assert after[tag] == seed


class TestExpansion:
    def test_shard_order_deterministic_and_indexed(self):
        shards = small_campaign().shards()
        assert [s.index for s in shards] == list(range(4))
        assert shards == small_campaign().shards()

    def test_grid_key_insertion_order_irrelevant(self):
        a = Campaign(name="t", scenario="table2_offload", seeds=1,
                     grid={"a": [1], "b": [2, 3]})
        b = Campaign(name="t", scenario="table2_offload", seeds=1,
                     grid={"b": [2, 3], "a": [1]})
        assert [s.tag for s in a.shards()] == [s.tag for s in b.shards()]

    def test_point_label_and_params(self):
        spec = small_campaign().shards()[0]
        assert spec.point_label == "rtt=0.01"
        assert spec.param_dict() == {"rtt": 0.01, "n_frames": 3}

    def test_n_shards(self):
        assert small_campaign().n_shards == 4
        assert len(small_campaign().shards()) == 4

    def test_empty_grid_single_point(self):
        c = Campaign(name="t", scenario="table2_offload", seeds=3)
        assert [s.tag for s in c.shards()] == [
            "default/s0000", "default/s0001", "default/s0002"]

    def test_shard_by_tag(self):
        c = small_campaign()
        spec = c.shard_by_tag("rtt=0.02/s0001")
        assert spec.index == 3
        with pytest.raises(KeyError):
            c.shard_by_tag("nope")

    def test_grid_params_overlap_rejected(self):
        with pytest.raises(ValueError):
            Campaign(name="t", scenario="s", grid={"x": [1]}, params={"x": 2})

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            Campaign(name="t", scenario="s", seeds=0)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert small_campaign().fingerprint() == small_campaign().fingerprint()

    def test_sensitive_to_spec(self):
        base = small_campaign().fingerprint()
        assert small_campaign(base_seed=6).fingerprint() != base
        assert small_campaign(seeds=3).fingerprint() != base
        assert small_campaign(params={"n_frames": 4}).fingerprint() != base

    def test_includes_schema_version(self, monkeypatch):
        base = small_campaign().fingerprint()
        monkeypatch.setattr("repro.fleet.campaign.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        assert small_campaign().fingerprint() != base

    def test_stable_hash_is_process_stable(self):
        # sha256, not the per-process-salted builtin hash
        assert stable_hash("x") == (
            "2d711642b726b04401627ca9fbac32f5c8530fb1903cc4db02258717921a4881")


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for expected in ("cell_offload", "table2_offload", "wifi_anomaly_cell"):
            assert expected in names

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("no_such_scenario")

    def test_demo_campaigns_runnable_specs(self):
        for name, c in demo_campaigns().items():
            assert c.name == name
            get_scenario(c.scenario)  # registered
            assert c.n_shards >= 32


class TestReplay:
    def test_replayed_shard_matches_campaign_result(self):
        from repro.fleet import run_campaign

        c = small_campaign()
        result = run_campaign(c, workers=1)
        spec = c.shards()[2]
        # Re-derive just that shard in isolation: identical aggregate.
        replayed = run_shard(c, spec.tag)
        # The campaign merged all four shards; rerunning the campaign
        # minus nothing isn't comparable directly — instead check the
        # single-shard replay is deterministic and self-consistent.
        assert replayed.to_json() == run_shard(c, spec.tag).to_json()
        assert replayed.counts["sessions"] == 1
        assert result.aggregate.counts["sessions"] == 4
