"""The analyzer's own acceptance test: the shipped tree is clean.

This is the in-repo mirror of the CI lint gate — if a change introduces
a determinism hazard anywhere under ``src``, this test (and CI) fails
with the exact finding lines.  It also seeds a violation into a
sim-domain file on disk to prove the tree walk actually looks at new
files (guarding against path/classification regressions that would
make the gate vacuously green).
"""

import pathlib

from repro.lint import PARSE_ERROR_RULE, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_shipped_tree_is_simlint_clean():
    findings, checked = lint_paths([str(REPO_ROOT / "src")], root=REPO_ROOT)
    assert checked > 80, f"expected the whole package, saw {checked} files"
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"simlint findings on the shipped tree:\n{rendered}"


def test_seeded_violation_is_caught(tmp_path):
    pkg = tmp_path / "src" / "repro" / "simnet"
    pkg.mkdir(parents=True)
    bad = pkg / "injected.py"
    bad.write_text(
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n",
        encoding="utf-8")
    findings, checked = lint_paths([str(tmp_path / "src")], root=tmp_path)
    assert checked == 1
    assert [f.rule for f in findings] == ["SIM001"]
    assert findings[0].path == "src/repro/simnet/injected.py"


def test_no_parse_errors_anywhere():
    findings, _ = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"),
         str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples")],
        root=REPO_ROOT)
    parse_failures = [f for f in findings if f.rule == PARSE_ERROR_RULE]
    assert parse_failures == []
