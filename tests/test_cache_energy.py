"""Tests for the object cache and the energy model."""

import pytest

from repro.mar.cache import ObjectCache
from repro.mar.devices import DESKTOP, SMART_GLASSES, SMARTPHONE
from repro.mar.energy import (
    EnergyModel,
    JOULES_PER_MEGACYCLE,
    RADIO_JOULES_PER_BYTE,
    battery_life_hours,
)


class TestObjectCache:
    def test_miss_then_hit(self):
        cache = ObjectCache(capacity_bytes=10_000)
        assert not cache.request("a", 1000)
        assert cache.request("a", 1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ObjectCache(capacity_bytes=3000)
        cache.request("a", 1000)
        cache.request("b", 1000)
        cache.request("c", 1000)
        cache.request("a", 1000)  # refresh a
        cache.request("d", 1000)  # evicts b (least recently used)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_oversized_object_never_cached(self):
        cache = ObjectCache(capacity_bytes=500)
        cache.request("huge", 1000)
        assert "huge" not in cache
        assert cache.used_bytes == 0

    def test_byte_budget_respected(self):
        cache = ObjectCache(capacity_bytes=2500)
        for key in "abcde":
            cache.request(key, 1000)
        assert cache.used_bytes <= 2500

    def test_prefetch_warms(self):
        cache = ObjectCache(capacity_bytes=10_000)
        admitted = cache.prefetch([("a", 1000), ("b", 1000)])
        assert admitted == 2
        assert cache.request("a", 1000)
        assert cache.hit_ratio == 1.0

    def test_prefetch_skips_existing_and_oversized(self):
        cache = ObjectCache(capacity_bytes=1500)
        cache.prefetch([("a", 1000)])
        admitted = cache.prefetch([("a", 1000), ("big", 5000)])
        assert admitted == 0

    def test_hit_ratio_empty(self):
        assert ObjectCache(1000).hit_ratio == 0.0

    def test_reset_stats(self):
        cache = ObjectCache(1000)
        cache.request("a", 100)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ObjectCache(0)


class TestEnergyModel:
    def test_compute_energy(self):
        e = EnergyModel()
        e.on_compute(100.0)
        assert e.compute_joules == pytest.approx(100.0 * JOULES_PER_MEGACYCLE)

    def test_lte_costs_more_than_wifi_per_byte(self):
        wifi = EnergyModel(radio="wifi")
        lte = EnergyModel(radio="lte")
        wifi.on_transfer(1_000_000)
        lte.on_transfer(1_000_000)
        assert lte.radio_joules > wifi.radio_joules

    def test_burst_tail_energy(self):
        e = EnergyModel(radio="lte")
        e.on_transfer(100, new_burst=True)
        e.on_transfer(100, new_burst=False)
        assert e.bursts == 1
        tail_only = e.radio_joules - 200 * RADIO_JOULES_PER_BYTE["lte"]
        assert tail_only > 0

    def test_total_includes_baseline(self):
        e = EnergyModel()
        assert e.total(10.0) == pytest.approx(9.0)  # 0.9 W baseline


class TestBatteryLife:
    def test_mains_powered_returns_none(self):
        assert battery_life_hours(DESKTOP, 100, 0, 0) is None

    def test_glasses_die_faster_than_phone(self):
        glasses = battery_life_hours(SMART_GLASSES, 200, 10_000, 1_000)
        phone = battery_life_hours(SMARTPHONE, 200, 10_000, 1_000)
        assert glasses < phone

    def test_lte_offload_shortens_life_vs_wifi(self):
        wifi = battery_life_hours(SMARTPHONE, 100, 500_000, 10_000, radio="wifi")
        lte = battery_life_hours(SMARTPHONE, 100, 500_000, 10_000, radio="lte")
        assert lte < wifi

    def test_offloading_can_extend_life_on_wifi(self):
        # Local: heavy compute. Offload: light compute + WiFi radio.
        local = battery_life_hours(SMARTPHONE, 12_000, 0, 0)
        offload = battery_life_hours(SMARTPHONE, 1_200, 400_000, 20_000, radio="wifi")
        assert offload > local

    def test_idle_life_in_plausible_range(self):
        hours = battery_life_hours(SMARTPHONE, 0, 0, 0, bursts_per_s=0)
        assert 6 <= hours <= 16  # Table I: 6-8 h of active use
