"""Unit tests for queue disciplines (DropTail, CoDel, FQ-CoDel)."""

import pytest

from repro.simnet.packet import Packet
from repro.simnet.queues import CoDelQueue, DropTailQueue, FQCoDelQueue


def make_packet(size=1000, flow="f"):
    return Packet(src="a", dst="b", size=size, flow=flow)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=10)
        first, second = make_packet(), make_packet()
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)
        assert q.dequeue(0.0) is first
        assert q.dequeue(0.0) is second

    def test_drops_at_capacity(self):
        q = DropTailQueue(capacity=2)
        assert q.enqueue(make_packet(), 0.0)
        assert q.enqueue(make_packet(), 0.0)
        assert not q.enqueue(make_packet(), 0.0)
        assert q.drops == 1
        assert len(q) == 2

    def test_byte_accounting(self):
        q = DropTailQueue()
        q.enqueue(make_packet(size=300), 0.0)
        q.enqueue(make_packet(size=200), 0.0)
        assert q.backlog_bytes == 500
        q.dequeue(0.0)
        assert q.backlog_bytes == 200

    def test_empty_dequeue_returns_none(self):
        assert DropTailQueue().dequeue(0.0) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)


class TestCoDel:
    def test_passes_packets_below_target(self):
        q = CoDelQueue(target=0.005, interval=0.1)
        q.enqueue(make_packet(), 0.0)
        out = q.dequeue(0.001)  # 1 ms sojourn < 5 ms target
        assert out is not None
        assert q.drops == 0

    def test_no_drop_before_interval_elapses(self):
        q = CoDelQueue(target=0.005, interval=0.1)
        q.enqueue(make_packet(), 0.0)
        q.enqueue(make_packet(), 0.0)
        q.enqueue(make_packet(), 0.0)
        # First dequeue above target only starts the interval clock.
        assert q.dequeue(0.05) is not None
        assert q.drops == 0

    def test_drops_under_persistent_delay(self):
        q = CoDelQueue(target=0.005, interval=0.1, capacity=10000)
        # Continuously refill so sojourn stays high past the interval.
        t = 0.0
        for step in range(400):
            q.enqueue(make_packet(), t)
            if step % 2 == 0:
                q.dequeue(t + 0.05)  # always 50 ms sojourn
            t += 0.01
        assert q.drops > 0

    def test_recovers_when_queue_drains(self):
        q = CoDelQueue(target=0.005, interval=0.1)
        q.enqueue(make_packet(), 0.0)
        q.dequeue(0.5)  # huge sojourn but queue is nearly empty
        # backlog <= 1500 bytes guard prevents dropping the only packet
        assert q.drops == 0

    def test_hard_capacity(self):
        q = CoDelQueue(capacity=3)
        for _ in range(5):
            q.enqueue(make_packet(), 0.0)
        assert q.drops == 2


class TestFQCoDel:
    def test_flow_isolation_new_flow_priority(self):
        q = FQCoDelQueue(quantum=1514)
        # Bulk flow fills first.
        for _ in range(20):
            q.enqueue(make_packet(size=1000, flow="bulk"), 0.0)
        # Thin flow arrives later.
        q.enqueue(make_packet(size=100, flow="thin"), 0.0)
        out = q.dequeue(0.001)
        assert out.flow in ("bulk", "thin")
        # Within the first quantum's worth of dequeues the thin flow
        # must be served (new-flow priority).
        served = [out.flow]
        for _ in range(3):
            served.append(q.dequeue(0.001).flow)
        assert "thin" in served

    def test_round_robin_between_backlogged_flows(self):
        q = FQCoDelQueue(quantum=1000)
        for _ in range(5):
            q.enqueue(make_packet(size=1000, flow="a"), 0.0)
            q.enqueue(make_packet(size=1000, flow="b"), 0.0)
        flows = [q.dequeue(0.0).flow for _ in range(10)]
        assert flows.count("a") == 5
        assert flows.count("b") == 5
        # Service must interleave, not serve one flow's 5 packets first.
        assert flows[:5].count("a") < 5

    def test_capacity_drops_from_fattest_flow(self):
        q = FQCoDelQueue(capacity=10)
        for _ in range(9):
            q.enqueue(make_packet(size=1000, flow="fat"), 0.0)
        q.enqueue(make_packet(size=100, flow="thin"), 0.0)
        # Next enqueue overflows; the fat flow should lose a packet.
        q.enqueue(make_packet(size=100, flow="thin2"), 0.0)
        assert q.drops == 1
        remaining_flows = []
        while True:
            p = q.dequeue(0.0)
            if p is None:
                break
            remaining_flows.append(p.flow)
        assert "thin" in remaining_flows
        assert remaining_flows.count("fat") == 8

    def test_len_tracks_enqueues_and_dequeues(self):
        q = FQCoDelQueue()
        q.enqueue(make_packet(flow="a"), 0.0)
        q.enqueue(make_packet(flow="b"), 0.0)
        assert len(q) == 2
        q.dequeue(0.0)
        assert len(q) == 1

    def test_empty_dequeue(self):
        assert FQCoDelQueue().dequeue(0.0) is None
