"""Tests for the data-plan economics (§V-C / §VI-D)."""

import pytest

from repro.mar.dataplan import (
    DataPlan,
    TYPICAL_PLANS,
    cheapest_plan,
    monthly_cost_of_usage,
    session_metered_bytes,
)


class TestDataPlan:
    def test_within_quota_flat_fee(self):
        plan = DataPlan("p", monthly_fee=20.0, quota_bytes=5e9, overage_per_gb=10.0)
        assert plan.cost_of(3e9) == 20.0

    def test_overage_billed_per_gb(self):
        plan = DataPlan("p", monthly_fee=20.0, quota_bytes=5e9, overage_per_gb=10.0)
        assert plan.cost_of(7e9) == pytest.approx(20.0 + 20.0)

    def test_throttled_plan_never_bills_overage(self):
        plan = TYPICAL_PLANS["throttled"]
        assert plan.cost_of(100e9) == plan.monthly_fee

    def test_marginal_cost(self):
        plan = DataPlan("p", monthly_fee=20.0, quota_bytes=5e9, overage_per_gb=10.0)
        assert plan.marginal_cost_per_gb(1e9) == 0.0
        assert plan.marginal_cost_per_gb(6e9) == 10.0

    def test_quota_fraction(self):
        plan = TYPICAL_PLANS["small"]
        assert plan.quota_fraction(1e9) == pytest.approx(0.5)


class TestSessionBytes:
    def test_symmetric_accounting(self):
        b = session_metered_bytes(uplink_bps=8e6, downlink_bps=2e6,
                                  duration_s=100, metered_fraction=0.5)
        assert b == pytest.approx((10e6 / 8) * 100 * 0.5)

    def test_wifi_only_costs_nothing(self):
        assert session_metered_bytes(8e6, 2e6, 3600, 0.0) == 0.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            session_metered_bytes(1e6, 1e6, 10, 1.5)


class TestMonthlyEconomics:
    def test_mar_on_lte_blows_small_plans(self):
        """One hour/day of aggregate-policy MAR (~50 % on LTE at ~9 Mb/s
        up+down) costs far more than the WiFi-preferred habit — the
        economics behind the paper's policy 2 default."""
        aggregate_daily = session_metered_bytes(8e6, 1e6, 3600, 0.55)
        preferred_daily = session_metered_bytes(8e6, 1e6, 3600, 0.06)
        plan = TYPICAL_PLANS["medium"]
        aggressive = monthly_cost_of_usage(plan, aggregate_daily)
        frugal = monthly_cost_of_usage(plan, preferred_daily)
        assert aggressive > frugal * 2
        assert frugal == plan.monthly_fee     # stays inside quota

    def test_cheapest_plan_scales_with_usage(self):
        assert cheapest_plan(1e9).name in ("small", "throttled")
        heavy = cheapest_plan(60e9)
        assert heavy.name == "large"

    def test_throttled_excluded_when_over_quota(self):
        choice = cheapest_plan(20e9)
        assert not choice.throttles

    def test_no_viable_plan_raises(self):
        only_throttled = {"t": TYPICAL_PLANS["throttled"]}
        with pytest.raises(ValueError):
            cheapest_plan(50e9, only_throttled)
