"""Whole-program analysis tests: the project model and SIM007–SIM010.

Model tests drive :class:`repro.lint.project.Project` directly on
small multi-module programs; rule tests go end-to-end through
``lint_paths`` over a temp tree (multi-module) or ``lint_source``
(single module, which wraps the file in a one-module project).  The
seeded-violation fixture corpus under ``tests/fixtures/lint`` is
checked here too — the same files the CI gate feeds to the linter.
"""

import ast
import pathlib

from repro.lint import lint_paths, lint_source
from repro.lint.project import Project, module_name_for

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
SIM_PATH = "src/repro/simnet/fake_module.py"


def build_project(sources):
    """``{path: source}`` → Project (paths decide module names)."""
    entries = [(path, src, ast.parse(src, filename=path))
               for path, src in sorted(sources.items())]
    return Project.build(entries)


def codes(source: str, path: str = SIM_PATH) -> set:
    return {f.rule for f in lint_source(source, path)}


# ----------------------------------------------------------------------
# Project model
# ----------------------------------------------------------------------
def test_module_name_for_src_layout():
    assert module_name_for("src/repro/scale/population.py") == \
        "repro.scale.population"
    assert module_name_for("src/repro/scale/__init__.py") == "repro.scale"
    assert module_name_for("standalone.py") == "standalone"


def test_symbol_table_indexes_functions_classes_globals():
    project = build_project({
        "src/pkg/mod.py": (
            "CACHE = {}\n"
            "LIMIT = 3\n"
            "def helper(x):\n"
            "    return x\n"
            "class Widget:\n"
            "    gauge = []\n"
            "    def spin(self):\n"
            "        self.rate = 1\n"
        ),
    })
    mod = project.modules["pkg.mod"]
    assert "pkg.mod.helper" in project.functions
    assert "pkg.mod.Widget" in project.classes
    assert "pkg.mod.Widget.spin" in project.functions
    assert mod.globals["CACHE"].mutable
    assert not mod.globals["LIMIT"].mutable
    widget = project.classes["pkg.mod.Widget"]
    assert widget.class_attrs["gauge"].mutable
    assert "rate" in widget.instance_attrs


def test_import_resolution_with_reexport_hop():
    project = build_project({
        "src/pkg/impl.py": "def work():\n    return 1\n",
        "src/pkg/__init__.py": "from pkg.impl import work\n",
        "src/app.py": (
            "from pkg import work\n"
            "def go():\n"
            "    return work()\n"
        ),
    })
    sites = project.calls.get("app.go", [])
    assert any("pkg.impl.work" in s.callees for s in sites)


def test_call_graph_resolves_self_and_local_instances():
    project = build_project({
        "src/pkg/mod.py": (
            "class Engine:\n"
            "    def start(self):\n"
            "        self.warm()\n"
            "    def warm(self):\n"
            "        pass\n"
            "def drive():\n"
            "    e = Engine()\n"
            "    e.start()\n"
        ),
    })
    start_sites = project.calls["pkg.mod.Engine.start"]
    assert any("pkg.mod.Engine.warm" in s.callees for s in start_sites)
    drive_sites = project.calls["pkg.mod.drive"]
    callees = {c for s in drive_sites for c in s.callees}
    assert "pkg.mod.Engine.start" in callees


def test_call_graph_cha_fallback_is_weak():
    project = build_project({
        "src/pkg/a.py": (
            "class Alpha:\n"
            "    def make_world(self):\n"
            "        return 1\n"
        ),
        "src/pkg/b.py": (
            "def run(harness):\n"
            "    return harness.make_world()\n"
        ),
    })
    sites = project.calls["pkg.b.run"]
    assert any(s.weak and "pkg.a.Alpha.make_world" in s.callees
               for s in sites)
    # Weak edges still contribute to reachability by default.
    reach = project.reachable_from(["pkg.b.run"])
    assert "pkg.a.Alpha.make_world" in reach
    assert "pkg.a.Alpha.make_world" not in project.reachable_from(
        ["pkg.b.run"], include_weak=False)


def test_return_class_inference_through_helper():
    project = build_project({
        "src/pkg/mod.py": (
            "class World:\n"
            "    def ping(self):\n"
            "        pass\n"
            "def make_world():\n"
            "    return World()\n"
            "def go():\n"
            "    w = make_world()\n"
            "    w.ping()\n"
        ),
    })
    callees = {c for s in project.calls["pkg.mod.go"] for c in s.callees}
    assert "pkg.mod.World.ping" in callees


# ----------------------------------------------------------------------
# SIM007 — RNG provenance
# ----------------------------------------------------------------------
def test_sim007_cross_module_fallback(tmp_path):
    pkg = tmp_path / "src" / "repro" / "simnet"
    pkg.mkdir(parents=True)
    (pkg / "helpers.py").write_text(
        "import random\n"
        "def jitter(rng):\n"
        "    return rng.random() + random.random()\n",
        encoding="utf-8")
    (pkg / "driver.py").write_text(
        "from repro.simnet.helpers import jitter\n"
        "def drive(sim):\n"
        "    return jitter(sim.child_rng('drv'))\n",
        encoding="utf-8")
    findings, _ = lint_paths([str(tmp_path / "src")], root=tmp_path)
    sim007 = [f for f in findings if f.rule == "SIM007"]
    assert sim007 and sim007[0].path == "src/repro/simnet/helpers.py"
    assert "rng" in sim007[0].message


def test_sim007_fallback_via_module_as_value():
    # The classic optional-rng shape: ``(rng or random)`` silently
    # substitutes the process global — the docs/LINT.md bad example.
    bad = (
        "import random\n"
        "def jitter(rng, spread):\n"
        "    return (rng or random).uniform(0.0, spread)\n"
        "def drive(sim):\n"
        "    return jitter(sim.child_rng('m.jitter'), 0.1)\n"
    )
    assert "SIM007" in codes(bad)
    # A local shadowing the module name is not the module.
    shadowed = (
        "import random\n"
        "def seeded(seed):\n"
        "    return random.Random(seed)\n"
        "def jitter(rng, spread):\n"
        "    fallback = seeded(7)\n"
        "    return (rng or fallback).uniform(0.0, spread)\n"
        "def drive(sim):\n"
        "    return jitter(sim.child_rng('m.jitter'), 0.1)\n"
    )
    assert "SIM007" not in codes(shadowed)


def test_sim007_clean_when_only_injected_stream_used():
    good = (
        "def jitter(rng):\n"
        "    return 2.0 * rng.random()\n"
        "def drive(sim):\n"
        "    return jitter(sim.child_rng('drv'))\n"
    )
    assert "SIM007" not in codes(good)


def test_sim007_module_level_seeded_rng_escape():
    bad = "import random\n_RNG = random.Random(99)\n"
    assert "SIM007" in codes(bad)
    # The same line in harness code is not SIM007's business.
    assert "SIM007" not in codes(bad, "src/repro/fleet/fake_module.py")


def test_sim007_escape_into_module_dict():
    bad = (
        "_POOL = {}\n"
        "def install(sim, key):\n"
        "    _POOL[key] = sim.child_rng(f'pool:{key}')\n"
    )
    assert "SIM007" in codes(bad)


def test_sim007_per_instance_storage_is_clean():
    good = (
        "class Link:\n"
        "    def __init__(self, sim, name):\n"
        "        self._rng = sim.child_rng(f'link:{name}')\n"
    )
    assert "SIM007" not in codes(good)


# ----------------------------------------------------------------------
# SIM008 — tag collisions
# ----------------------------------------------------------------------
def test_sim008_flags_same_fstring_tag_twice():
    bad = (
        "class Radio:\n"
        "    def __init__(self, sim, cell):\n"
        "        self.rx = sim.child_rng(f'radio:{cell}')\n"
        "        self.tx = sim.child_rng(f'radio:{cell}')\n"
    )
    assert "SIM008" in codes(bad)


def test_sim008_distinct_prefixes_are_clean():
    good = (
        "class Radio:\n"
        "    def __init__(self, sim, cell):\n"
        "        self.rx = sim.child_rng(f'radio.rx:{cell}')\n"
        "        self.tx = sim.child_rng(f'radio.tx:{cell}')\n"
    )
    assert "SIM008" not in codes(good)


def test_sim008_folds_parameters_against_call_sites(tmp_path):
    pkg = tmp_path / "src" / "repro" / "simnet"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(
        "def attach(sim, kind):\n"
        "    return sim.child_rng(f'probe:{kind}')\n"
        "def fixed(sim):\n"
        "    return sim.child_rng('probe:alpha')\n"
        "def build(sim):\n"
        "    return attach(sim, 'alpha'), fixed(sim)\n",
        encoding="utf-8")
    findings, _ = lint_paths([str(tmp_path / "src")], root=tmp_path)
    assert any(f.rule == "SIM008" for f in findings)


def test_sim008_pure_hole_tags_never_reported():
    # A bare-parameter tag could collide with anything; the rule
    # refuses to guess rather than flagging every helper.
    src = (
        "def make(sim, tag):\n"
        "    return sim.child_rng(tag)\n"
        "def other(sim, tag):\n"
        "    return sim.child_rng(tag)\n"
    )
    assert "SIM008" not in codes(src)


# ----------------------------------------------------------------------
# SIM009 — fork-shared mutable state
# ----------------------------------------------------------------------
def test_sim009_reachability_gates_findings(tmp_path):
    pkg = tmp_path / "src" / "repro"
    (pkg / "fleet").mkdir(parents=True)
    (pkg / "simnet").mkdir(parents=True)
    (pkg / "fleet" / "pool.py").write_text(
        "from repro.simnet.state import touch\n"
        "def run_shard(spec):\n"
        "    return touch(spec)\n",
        encoding="utf-8")
    (pkg / "simnet" / "state.py").write_text(
        "_SEEN = {}\n"
        "def touch(spec):\n"
        "    _SEEN[spec] = True\n"
        "    return _SEEN\n"
        "def untouched(spec):\n"
        "    _SEEN[spec] = False\n",
        encoding="utf-8")
    findings, _ = lint_paths([str(tmp_path / "src")], root=tmp_path)
    sim009 = [f for f in findings if f.rule == "SIM009"]
    # touch() is reachable from run_shard; untouched() is not.
    assert [f.line for f in sim009] == [3]


def test_sim009_standalone_file_treats_all_functions_reachable():
    bad = (
        "_CACHE = {}\n"
        "def remember(key):\n"
        "    _CACHE[key] = 1\n"
    )
    assert "SIM009" in codes(bad)


def test_sim009_class_attr_mutation_flagged_instance_state_clean():
    bad = (
        "class Recorder:\n"
        "    seen = []\n"
        "    def record(self, item):\n"
        "        self.seen.append(item)\n"
    )
    assert "SIM009" in codes(bad)
    good = (
        "class Recorder:\n"
        "    def __init__(self):\n"
        "        self.seen = []\n"
        "    def record(self, item):\n"
        "        self.seen.append(item)\n"
    )
    assert "SIM009" not in codes(good)


def test_sim009_import_time_initialization_is_exempt():
    good = (
        "_TABLE = {}\n"
        "for _i in range(8):\n"
        "    _TABLE[_i] = _i * _i\n"
        "def lookup(i):\n"
        "    return _TABLE[i]\n"
    )
    assert "SIM009" not in codes(good)


def test_sim009_harness_modules_are_exempt():
    bad = (
        "_CACHE = {}\n"
        "def remember(key):\n"
        "    _CACHE[key] = 1\n"
    )
    assert "SIM009" not in codes(bad, "src/repro/fleet/fake_module.py")


# ----------------------------------------------------------------------
# SIM010 — checkpoint safety
# ----------------------------------------------------------------------
def test_sim010_flags_generator_and_file_fields():
    bad = (
        "class Session:\n"
        "    def __init__(self, sim, frames):\n"
        "        self.pending = (f for f in frames)\n"
        "        self.log = open('x.log', 'w')\n"
        "def harness(sim, frames):\n"
        "    world = Session(sim, frames)\n"
        "    return sim.checkpoint(world)\n"
    )
    found = {(f.rule, f.line) for f in lint_source(bad, SIM_PATH)}
    assert ("SIM010", 3) in found
    assert ("SIM010", 4) in found


def test_sim010_no_checkpoint_roots_no_findings():
    src = (
        "class Session:\n"
        "    def __init__(self, frames):\n"
        "        self.pending = (f for f in frames)\n"
    )
    assert "SIM010" not in codes(src)


def test_sim010_yield_function_and_iter_fields():
    bad = (
        "def frames():\n"
        "    yield 1\n"
        "class Session:\n"
        "    def __init__(self, sim, xs):\n"
        "        self.feed = frames()\n"
        "        self.cursor = iter(xs)\n"
        "def harness(sim, xs):\n"
        "    return sim.checkpoint(Session(sim, xs))\n"
    )
    lines = [f.line for f in lint_source(bad, SIM_PATH)
             if f.rule == "SIM010"]
    assert lines == [5, 6]


def test_sim010_itertools_count_is_allowed():
    good = (
        "import itertools\n"
        "class Session:\n"
        "    def __init__(self, sim):\n"
        "        self._seq = itertools.count()\n"
        "def harness(sim):\n"
        "    return sim.checkpoint(Session(sim))\n"
    )
    assert "SIM010" not in codes(good)


def test_sim010_deepcopy_dropped_type_flagged_but_optout_field_clean():
    src = (FIXTURES / "bad_sim010_checkpoint_safety.py").read_text(
        encoding="utf-8")
    findings = [f for f in lint_source(src, SIM_PATH)
                if f.rule == "SIM010"]
    messages = " | ".join(f.message for f in findings)
    assert "ScriptController" in messages           # dropped-type alias
    optout_line = next(
        i + 1 for i, text in enumerate(src.splitlines())
        if "session.chooser.controller =" in text)
    assert optout_line not in [f.line for f in findings]


# ----------------------------------------------------------------------
# The seeded-violation fixture corpus (mirrors the CI gate)
# ----------------------------------------------------------------------
def test_fixture_corpus_each_rule_fires():
    expected = {
        "bad_sim007_rng_provenance.py": "SIM007",
        "bad_sim008_tag_collision.py": "SIM008",
        "bad_sim009_fork_shared_state.py": "SIM009",
        "bad_sim010_checkpoint_safety.py": "SIM010",
    }
    seen = set()
    for fixture in sorted(FIXTURES.glob("bad_*.py")):
        rule = expected[fixture.name]
        seen.add(fixture.name)
        source = fixture.read_text(encoding="utf-8")
        found = {f.rule for f in lint_source(
            source, f"src/repro/simnet/{fixture.name}")}
        assert rule in found, (
            f"{fixture.name} no longer trips {rule}; found {sorted(found)}")
    assert seen == set(expected), "fixture corpus drifted from the map"
