"""Tests for overlay alignment under latency."""

import math

import numpy as np
import pytest

from repro.vision.overlay import (
    DEFAULT_ANCHOR,
    PanningCamera,
    acceptable_latency,
    misalignment_profile,
    misalignment_px,
)
from repro.vision.synthetic import apply_homography


class TestPanningCamera:
    def test_projection_in_frame(self):
        camera = PanningCamera()
        pixels = apply_homography(camera.homography_at(0.0), DEFAULT_ANCHOR)
        assert np.all(pixels[:, 0] > 0) and np.all(pixels[:, 0] < 320)
        assert np.all(pixels[:, 1] > 0) and np.all(pixels[:, 1] < 240)

    def test_pan_sweeps_the_anchor(self):
        camera = PanningCamera()
        p0 = apply_homography(camera.homography_at(0.0), DEFAULT_ANCHOR[:1])
        p1 = apply_homography(camera.homography_at(camera.period / 4),
                              DEFAULT_ANCHOR[:1])
        # A quarter period reaches peak yaw: tens of pixels of sweep.
        assert np.linalg.norm(p1 - p0) > 30

    def test_yaw_periodicity(self):
        # The sway component is deliberately incommensurate; with it
        # disabled the motion is exactly periodic.
        camera = PanningCamera(sway=0.0)
        h0 = camera.homography_at(0.0)
        h1 = camera.homography_at(camera.period)
        assert np.allclose(h0, h1, atol=1e-9)

    def test_peak_angular_velocity(self):
        camera = PanningCamera(yaw_amplitude=0.25, period=2.5)
        assert camera.peak_angular_velocity_deg == pytest.approx(
            math.degrees(2 * math.pi * 0.25 / 2.5))


class TestMisalignment:
    def test_zero_latency_zero_error(self):
        camera = PanningCamera()
        h = camera.homography_at(1.0)
        assert misalignment_px(h, h) == 0.0

    def test_error_monotone_in_latency(self):
        camera = PanningCamera()
        profile = misalignment_profile(camera, [0.0, 0.02, 0.05, 0.1, 0.2])
        means = [m for _, m, _ in profile]
        assert means == sorted(means)

    def test_error_scales_with_motion_speed(self):
        slow = PanningCamera(yaw_amplitude=0.1)
        fast = PanningCamera(yaw_amplitude=0.4)
        (_, slow_err, _), = misalignment_profile(slow, [0.075])
        (_, fast_err, _), = misalignment_profile(fast, [0.075])
        assert fast_err > slow_err * 2

    def test_p95_at_least_mean(self):
        camera = PanningCamera()
        profile = misalignment_profile(camera, [0.05, 0.1])
        for _, mean_error, p95 in profile:
            assert p95 >= mean_error


class TestAcceptableLatency:
    def test_threshold_bracketed(self):
        camera = PanningCamera()
        latency = acceptable_latency(camera, max_error_px=5.0)
        (_, at_threshold, _), = misalignment_profile(camera, [latency],
                                                     duration=3.0)
        assert at_threshold <= 5.0
        (_, above, _), = misalignment_profile(camera, [latency + 0.02],
                                              duration=3.0)
        assert above > 5.0

    def test_faster_motion_demands_lower_latency(self):
        calm = acceptable_latency(PanningCamera(yaw_amplitude=0.15),
                                  max_error_px=5.0)
        frantic = acceptable_latency(PanningCamera(yaw_amplitude=0.6),
                                     max_error_px=5.0)
        assert frantic < calm
