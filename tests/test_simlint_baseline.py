"""Baseline round-trip and subtraction-exactness tests.

The contract under test: ``--baseline`` suppresses *exactly* its
entries — each entry matches at most one concrete finding, stale
entries surface as unused, and new findings (even on the same line as
a baselined one, for a different rule) still fail the gate.
"""

import json
import pathlib

from repro.lint import (
    Finding,
    apply_baseline,
    lint_source,
    load_baseline,
    write_baseline,
)

SIM_PATH = "src/repro/simnet/fake_module.py"

DIRTY = (
    "import time\n"
    "import random\n"
    "t = time.time()\n"
    "x = random.random()\n"
)


def findings_for(src: str):
    return lint_source(src, SIM_PATH)


def test_write_then_load_round_trips(tmp_path):
    findings = findings_for(DIRTY)
    assert findings, "fixture must produce findings"
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    keys = load_baseline(path)
    assert keys == [f.key() for f in sorted(findings)]


def test_baseline_suppresses_exactly_its_entries(tmp_path):
    findings = findings_for(DIRTY)
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    new, matched, unused = apply_baseline(findings, load_baseline(path))
    assert new == []
    assert sorted(matched) == sorted(findings)
    assert unused == []


def test_new_finding_not_masked_by_baseline(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(DIRTY))
    dirtier = DIRTY + "y = random.randint(0, 9)\n"
    new, matched, unused = apply_baseline(
        findings_for(dirtier), load_baseline(path))
    assert len(new) == 1
    assert new[0].rule == "SIM001" and new[0].line == 5
    assert unused == []


def test_stale_entries_reported_unused(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(DIRTY))
    clean = "def f(sim):\n    return sim.now\n"
    new, matched, unused = apply_baseline(
        findings_for(clean), load_baseline(path))
    assert new == [] and matched == []
    assert len(unused) == len(findings_for(DIRTY))


def test_each_entry_consumes_one_finding():
    finding = Finding(path=SIM_PATH, line=3, col=1, rule="SIM002",
                      message="m")
    twice = [finding, Finding(path=SIM_PATH, line=3, col=9, rule="SIM002",
                              message="m2")]
    # One baseline entry, two findings on the same (path, rule, line):
    # only one may be absorbed.
    new, matched, unused = apply_baseline(twice, [finding.key()])
    assert len(matched) == 1 and len(new) == 1 and unused == []


def test_rejects_foreign_json(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"something": "else"}))
    try:
        load_baseline(path)
    except ValueError as exc:
        assert "baseline" in str(exc)
    else:  # pragma: no cover - failure path
        raise AssertionError("expected ValueError")


def test_shipped_baseline_is_empty_and_valid():
    repo_root = pathlib.Path(__file__).resolve().parents[1]
    keys = load_baseline(repo_root / "simlint-baseline.json")
    assert keys == [], (
        "the shipped tree must be simlint-clean; grandfathered findings "
        "need a justification in docs/LINT.md")
