"""Suppression edge cases (lint/suppress.py).

The parser is tokenize-based, so only *real* comments count; these
tests pin the corners: suppression-shaped text inside multiline
strings and f-strings, suppressions on decorated defs, CRLF line
endings, and suppressions naming unknown rules (warn, don't crash).
"""

import warnings

import pytest

from repro.lint import Suppressions, lint_source

SIM_PATH = "src/repro/simnet/fake_module.py"


def codes(source: str) -> set:
    return {f.rule for f in lint_source(source, SIM_PATH)}


def test_suppression_text_inside_multiline_string_is_inert():
    src = (
        "import random\n"
        "DOC = '''\n"
        "# simlint: disable-file=SIM001\n"
        "'''\n"
        "x = random.random()\n"
    )
    assert "SIM001" in codes(src)
    sup = Suppressions.from_source(src)
    assert sup.file_rules == frozenset()


def test_suppression_text_inside_fstring_is_inert():
    src = (
        "import random\n"
        "note = f'{1} # simlint: disable=SIM001'\n"
        "x = random.random()  # this line has no suppression\n"
    )
    assert "SIM001" in codes(src)


def test_real_comment_after_fstring_on_same_line_works():
    src = (
        "import random\n"
        "x = random.random()  # simlint: disable=SIM001 -- covered\n"
    )
    assert "SIM001" not in codes(src)


def test_suppression_on_decorated_def_line():
    # SIM006 anchors to the default expression on the def line; the
    # decorator shifting line numbers must not detach the suppression.
    src = (
        "import functools\n"
        "@functools.lru_cache\n"
        "def run(hooks=[]):  # simlint: disable=SIM006 -- test shim\n"
        "    return hooks\n"
    )
    assert "SIM006" not in codes(src)
    bare = (
        "import functools\n"
        "@functools.lru_cache\n"
        "def run(hooks=[]):\n"
        "    return hooks\n"
    )
    assert "SIM006" in codes(bare)


def test_crlf_file_findings_and_suppressions():
    src = (
        "import random\r\n"
        "a = random.random()\r\n"
        "b = random.random()  # simlint: disable=SIM001\r\n"
    )
    findings = [f for f in lint_source(src, SIM_PATH)
                if f.rule == "SIM001"]
    assert [f.line for f in findings] == [2]


def test_unknown_rule_in_suppression_warns_not_crashes():
    src = (
        "import random\n"
        "x = random.random()  # simlint: disable=SIM999\n"
    )
    with pytest.warns(UserWarning, match="unknown rule SIM999"):
        findings = lint_source(src, SIM_PATH)
    # The unknown rule suppresses nothing; the real finding survives.
    assert "SIM001" in {f.rule for f in findings}


def test_known_rules_do_not_warn():
    src = (
        "import random\n"
        "x = random.random()  # simlint: disable=SIM001\n"
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        findings = lint_source(src, SIM_PATH)
    assert findings == []


def test_unknown_rule_tracked_in_mentioned_set():
    sup = Suppressions.from_source(
        "x = 1  # simlint: disable=SIM001,SIM999\n"
        "# simlint: disable-file=BOGUS\n")
    assert {"SIM001", "SIM999", "BOGUS"} <= set(sup.mentioned)


def test_blanket_disable_mentions_nothing():
    sup = Suppressions.from_source("x = 1  # simlint: disable\n")
    assert sup.mentioned == frozenset()


def test_token_error_keeps_earlier_suppressions():
    # An unterminated string ends tokenization midway; suppressions
    # seen before the failure still apply (the parse error itself is
    # reported separately as SIM000).
    src = (
        "import random\n"
        "x = random.random()  # simlint: disable=SIM001\n"
        "broken = '''\n"
    )
    sup = Suppressions.from_source(src)
    assert sup.is_suppressed("SIM001", 2)
