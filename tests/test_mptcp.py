"""Tests for the MPTCP baseline: aggregation and handover."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.mptcp import MptcpReceiver, MptcpSender
from repro.transport.tcp import TcpConnection


def two_path_net(wifi_up=10e6, lte_up=5e6, wifi_rtt=0.02, lte_rtt=0.06, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client-wifi")
    net.add_host("client-lte")
    net.add_host("server")
    net.add_duplex("server", "client-wifi", 50e6, wifi_up, delay=wifi_rtt / 2,
                   queue_up=DropTailQueue(200))
    net.add_duplex("server", "client-lte", 50e6, lte_up, delay=lte_rtt / 2,
                   queue_up=DropTailQueue(200))
    net.build_routes()
    return sim, net


def make_connection(net, ports=(80, 81)):
    receiver = MptcpReceiver(net["server"], list(ports))
    subflows = [
        TcpConnection(net["client-wifi"], 5000, "server", ports[0]),
        TcpConnection(net["client-lte"], 5001, "server", ports[1]),
    ]
    sender = MptcpSender(subflows)
    receiver.attach_sender(sender)
    return sender, receiver


def test_transfer_completes_over_two_subflows():
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(3_000_000)
    sender.connect()
    sim.run(until=60.0)
    assert receiver.bytes_received == 3_000_000


def test_both_subflows_carry_data():
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(5_000_000)
    sender.connect()
    sim.run(until=60.0)
    assert sender.subflow_share(0) > 0.15
    assert sender.subflow_share(1) > 0.15


def test_aggregate_beats_single_path():
    # Single path (WiFi only).
    sim1, net1 = two_path_net()
    single = TcpConnection(net1["client-wifi"], 5000, "server", 80)
    from repro.transport.tcp import TcpListener
    got = []
    TcpListener(net1["server"], 80, on_accept=lambda c: setattr(c, "on_data", got.append))
    single.on_established = single.send_forever
    single.connect()
    sim1.run(until=20.0)
    single_rate = sum(got) * 8 / 20.0

    # MPTCP over both.
    sim2, net2 = two_path_net()
    sender, receiver = make_connection(net2)
    sender.on_established = lambda: sender.send(60_000_000)
    sender.connect()
    sim2.run(until=20.0)
    mptcp_rate = receiver.bytes_received * 8 / 20.0
    assert mptcp_rate > single_rate * 1.2


def test_handover_reinjects_stranded_bytes():
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(4_000_000)
    sender.connect()
    # Kill the WiFi subflow mid-transfer; also break the path so stale
    # in-flight data is really gone.
    def fail_wifi():
        net.path_links("client-wifi", "server")[0].loss = 0.999999
        sender.set_alive(0, False)
    sim.schedule(2.0, fail_wifi)
    sim.run(until=120.0)
    # Everything still arrives, via the LTE subflow.
    assert receiver.bytes_received >= 4_000_000 * 0.98


def test_needs_at_least_one_subflow():
    with pytest.raises(ValueError):
        MptcpSender([])


def test_send_validates():
    sim, net = two_path_net()
    sender, _ = make_connection(net)
    with pytest.raises(ValueError):
        sender.send(0)


def test_throughput_timeseries():
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(2_000_000)
    sender.connect()
    sim.run(until=30.0)
    assert receiver.throughput_bps(0.0, 30.0) > 0
    assert receiver.throughput_bps(5.0, 5.0) == 0.0


def test_clean_transfer_has_no_duplicates_and_is_in_order():
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(3_000_000)
    sender.connect()
    sim.run(until=60.0)
    assert receiver.bytes_delivered_unique == 3_000_000
    assert receiver.duplicate_bytes == 0
    assert receiver.bytes_contiguous == 3_000_000
    assert receiver.bytes_received == (
        receiver.bytes_delivered_unique + receiver.duplicate_bytes
    )


def test_handover_delivers_every_byte_exactly_once():
    """Real path death: in-flight AND backlog bytes stranded on the dead
    subflow are re-injected, so the unique DSN delivery is exact — the
    old in-flight-only re-injection silently lost the send backlog."""
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(4_000_000)
    sender.connect()

    def fail_wifi():
        net.path_links("client-wifi", "server")[0].loss = 0.999999
        sender.set_alive(0, False)
    sim.schedule(2.0, fail_wifi)
    sim.run(until=120.0)
    assert receiver.bytes_delivered_unique == 4_000_000
    assert receiver.bytes_contiguous == 4_000_000
    assert receiver.bytes_received == (
        receiver.bytes_delivered_unique + receiver.duplicate_bytes
    )


def test_spurious_failover_duplicates_detected_not_recounted():
    """MPTCP-level failover without actual path death: the 'dead'
    subflow keeps delivering, so the re-injected copy arrives twice.
    The receiver must classify the second copy as duplicate bytes."""
    sim, net = two_path_net()
    sender, receiver = make_connection(net)
    sender.on_established = lambda: sender.send(4_000_000)
    sender.connect()
    sim.schedule(2.0, sender.set_alive, 0, False)   # path NOT broken
    sim.run(until=120.0)
    assert receiver.bytes_delivered_unique == 4_000_000
    assert receiver.duplicate_bytes > 0
    assert receiver.bytes_received == (
        receiver.bytes_delivered_unique + receiver.duplicate_bytes
    )
    assert sender.reinjected_bytes >= receiver.duplicate_bytes


def test_receiver_without_sender_degrades_to_raw_counting():
    sim, net = two_path_net()
    receiver = MptcpReceiver(net["server"], [80, 81])
    subflows = [
        TcpConnection(net["client-wifi"], 5000, "server", 80),
        TcpConnection(net["client-lte"], 5001, "server", 81),
    ]
    sender = MptcpSender(subflows)
    sender.on_established = lambda: sender.send(500_000)
    sender.connect()
    sim.run(until=30.0)
    assert receiver.bytes_received == 500_000
    assert receiver.bytes_delivered_unique == 0      # accounting disabled


def test_attach_sender_validates_subflow_count():
    sim, net = two_path_net()
    receiver = MptcpReceiver(net["server"], [80])
    sender = MptcpSender([TcpConnection(net["client-wifi"], 5000, "server", 80),
                          TcpConnection(net["client-lte"], 5001, "server", 81)])
    with pytest.raises(ValueError):
        receiver.attach_sender(sender)
