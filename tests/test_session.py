"""Integration tests for scenarios and offloading sessions."""

import pytest

from repro.core.metrics import mos_score
from repro.core.scheduler import MultipathPolicy
from repro.core.session import OffloadSession, ScenarioBuilder


class TestScenarioBuilder:
    def test_single_path_rtt(self):
        sc = ScenarioBuilder(seed=1).single_path(rtt=0.036)
        rtt = sc.net.base_rtt("client", "server", packet_size=64)
        assert rtt == pytest.approx(0.036, abs=0.002)

    def test_single_path_metered_flag(self):
        sc = ScenarioBuilder().single_path(rtt=0.01, path_name="lte", metered=True)
        assert sc.metered["lte"]

    def test_multipath_has_two_distinct_routes(self):
        sc = ScenarioBuilder().multipath()
        wifi_path = [l.name for l in sc.net.path_links("client-wifi", "server")]
        lte_path = [l.name for l in sc.net.path_links("client-lte", "server")]
        assert wifi_path != lte_path
        assert any("ap" in name for name in wifi_path)
        assert any("enb" in name for name in lte_path)

    def test_multipath_two_servers_topology(self):
        sc = ScenarioBuilder().multipath(two_servers=True)
        assert "edge-server" in sc.net.nodes
        # WiFi path reaches the edge server in fewer ms than the cloud.
        edge_rtt = sc.net.base_rtt("client-wifi", "edge-server", packet_size=64)
        cloud_rtt = sc.net.base_rtt("client-lte", "server", packet_size=64)
        assert edge_rtt < cloud_rtt

    def test_d2d_assist_latency_ordering(self):
        sc = ScenarioBuilder().d2d_assist()
        d2d_rtt = sc.net.base_rtt("wearable", "companion", packet_size=64)
        cloud_rtt = sc.net.base_rtt("wearable", "server", packet_size=64)
        assert d2d_rtt < cloud_rtt / 3

    def test_path_endpoints_have_states(self):
        sc = ScenarioBuilder().multipath()
        endpoints = sc.path_endpoints()
        assert [e.state.name for e in endpoints] == ["wifi", "lte"]
        assert endpoints[1].state.is_metered


class TestOffloadSession:
    def test_clean_path_full_quality(self):
        sc = ScenarioBuilder(seed=5).single_path(rtt=0.02, up_bps=30e6)
        session = OffloadSession(sc)
        report = session.run(10.0)
        assert report.critical_intact
        assert report.mean_video_quality > 0.85
        assert mos_score(report) > 4.3

    def test_constrained_uplink_degrades_video_not_metadata(self):
        sc = ScenarioBuilder(seed=5).single_path(rtt=0.036, up_bps=3e6)
        session = OffloadSession(sc)
        report = session.run(15.0)
        assert report.critical_intact                 # metadata survived
        assert report.mean_video_quality < 0.8        # video degraded
        meta = report.per_class[0]
        assert meta.in_time_ratio > 0.95

    def test_all_streams_flow(self):
        sc = ScenarioBuilder(seed=2).single_path(rtt=0.02, up_bps=30e6)
        report = OffloadSession(sc).run(8.0)
        for stream_id, r in report.per_class.items():
            assert r.received > 0, r.name

    def test_multipath_aggregate_beats_single_lte(self):
        lte = ScenarioBuilder(seed=6).single_path(
            rtt=0.070, up_bps=8e6, path_name="lte", metered=True)
        lte_report = OffloadSession(lte).run(10.0)
        multi = ScenarioBuilder(seed=6).multipath()
        multi_report = OffloadSession(
            multi, policy=MultipathPolicy.AGGREGATE).run(10.0)
        assert multi_report.mean_video_quality >= lte_report.mean_video_quality - 0.05

    def test_wifi_preferred_avoids_metered_bytes(self):
        sc = ScenarioBuilder(seed=6).multipath()
        session = OffloadSession(sc, policy=MultipathPolicy.WIFI_PREFERRED)
        session.run(8.0)
        assert session.sender.scheduler.metered_fraction() == 0.0

    def test_aggregate_uses_both_paths(self):
        sc = ScenarioBuilder(seed=6).multipath()
        session = OffloadSession(sc, policy=MultipathPolicy.AGGREGATE)
        session.run(8.0)
        frac = session.sender.scheduler.metered_fraction()
        assert 0.1 < frac < 0.9

    def test_quality_timeline_recorded(self):
        sc = ScenarioBuilder(seed=3).single_path(rtt=0.02)
        session = OffloadSession(sc)
        report = session.run(5.0)
        assert len(report.video_quality_timeline) >= 100  # ~30/s over 5 s
