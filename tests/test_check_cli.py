"""End-to-end tests for ``python -m repro check``."""

import json

from repro.check import cli as check_cli
from repro.check.explorer import Budget
from repro.check.harnesses import BreakerHarness
from repro.cli import main


def test_breaker_run_exits_zero_and_writes_summary(tmp_path, capsys):
    rc = main(["check", "--harness", "breaker", "--out", str(tmp_path)])
    assert rc == 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["total_states"] > 0
    assert summary["harnesses"][0]["harness"] == "breaker"
    assert summary["harnesses"][0]["violations"] == []
    out = capsys.readouterr().out
    assert "breaker" in out and "ok" in out


def test_selfcheck_writes_replayable_artifacts(tmp_path, capsys):
    rc = main(["check", "--selfcheck", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replay reproduced byte-identically" in out

    cex_path = tmp_path / "counterexample-selfcheck-0.json"
    cex = json.loads(cex_path.read_text())
    assert cex["harness"] == "selfcheck"
    assert cex["trace"]
    assert len(cex["digest"]) == 64

    trace = json.loads((tmp_path / "counterexample-selfcheck-0.trace.json")
                       .read_text())
    assert isinstance(trace, dict) and trace["traceEvents"]

    qlog_lines = (tmp_path / "counterexample-selfcheck-0.qlog") \
        .read_text().splitlines()
    assert qlog_lines
    for line in qlog_lines:
        json.loads(line)

    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["harnesses"][0]["replays_reproduced"] == [True]


def test_min_states_regression_exits_three(tmp_path, capsys):
    rc = main(["check", "--harness", "breaker",
               "--min-states", "999999", "--out", str(tmp_path)])
    assert rc == 3
    assert "coverage regression" in capsys.readouterr().out


class _AlwaysBroken(BreakerHarness):
    name = "brokenharness"

    def invariants(self, world):
        return ["always: seeded root violation"]


def test_violation_exits_one_with_artifacts(tmp_path, monkeypatch, capsys):
    monkeypatch.setitem(check_cli.HARNESSES, "brokenharness", _AlwaysBroken)
    monkeypatch.setitem(check_cli.BUDGETS["small"], "brokenharness",
                        Budget(max_states=50, max_depth=4))
    rc = main(["check", "--harness", "brokenharness", "--out", str(tmp_path)])
    assert rc == 1
    assert (tmp_path / "counterexample-brokenharness-0.json").exists()
    assert "violation: always" in capsys.readouterr().out
