"""Dataflow-layer unit tests: taint propagation and tag patterns.

These pin the :mod:`repro.lint.flow` machinery directly — the pattern
DP, the folding of every supported tag shape, and the interprocedural
taint fixpoint — independently of the rules built on top.
"""

import ast

from repro.lint.flow import (
    TagIndex,
    TagPattern,
    TaintAnalysis,
    patterns_intersect,
)
from repro.lint.project import Project


def build_project(sources):
    entries = [(path, src, ast.parse(src, filename=path))
               for path, src in sorted(sources.items())]
    return Project.build(entries)


def fold_first_tag(source: str):
    """Patterns of the first child_rng call in a one-module project."""
    project = build_project({"src/repro/simnet/m.py": source})
    index = TagIndex(project)
    assert index.sites, "no child_rng site found in the snippet"
    return sorted(index.sites, key=lambda s: (s.line, s.col))[0].patterns


# ----------------------------------------------------------------------
# Pattern intersection DP
# ----------------------------------------------------------------------
def test_equal_literals_intersect_unequal_do_not():
    a = TagPattern.literal("link:uplink")
    b = TagPattern.literal("link:uplink")
    c = TagPattern.literal("link:downlink")
    assert patterns_intersect(a, b)
    assert not patterns_intersect(a, c)


def test_hole_absorbs_any_suffix():
    a = TagPattern(tuple("radio:") + (None,))
    b = TagPattern.literal("radio:cell-7")
    assert patterns_intersect(a, b)


def test_disjoint_literal_prefixes_never_intersect():
    cell = TagPattern(tuple("scale.cell.") + (None,))
    promote = TagPattern(tuple("scale.promote.") + (None, ".", None))
    assert not patterns_intersect(cell, promote)


def test_holes_on_both_sides_intersect_when_literals_allow():
    a = TagPattern((None,) + tuple(":x"))
    b = TagPattern(tuple("pre:") + (None,))
    # a can be "pre::x"? a = *:x, b = pre:* -> "pre:x" matches both.
    assert patterns_intersect(a, b)


def test_pure_hole_reported_as_such():
    assert TagPattern.hole().is_pure_hole()
    assert not TagPattern.literal("x").is_pure_hole()


# ----------------------------------------------------------------------
# Tag folding
# ----------------------------------------------------------------------
def test_fold_fstring_concat_and_str():
    pats = fold_first_tag(
        "def f(sim, name):\n"
        "    return sim.child_rng('pre.' + str(name) + f':{name}')\n")
    assert [p.render() for p in pats] == ["pre.{…}:{…}"]


def test_fold_percent_formatting():
    pats = fold_first_tag(
        "def f(sim, a, b):\n"
        "    return sim.child_rng('p:%s.%d' % (a, b))\n")
    assert [p.render() for p in pats] == ["p:{…}.{…}"]


def test_fold_str_format_with_named_and_auto_fields():
    pats = fold_first_tag(
        "def f(sim, cell):\n"
        "    return sim.child_rng('r:{}:{kind}'.format(cell, kind='rx'))\n")
    assert [p.render() for p in pats] == ["r:{…}:rx"]


def test_fold_local_indirection():
    pats = fold_first_tag(
        "def f(sim, cell):\n"
        "    tag = f'radio:{cell}'\n"
        "    return sim.child_rng(tag)\n")
    assert [p.render() for p in pats] == ["radio:{…}"]


def test_fold_parameter_against_constant_call_sites():
    project = build_project({"src/repro/simnet/m.py": (
        "def attach(sim, kind):\n"
        "    return sim.child_rng(f'probe:{kind}')\n"
        "def build(sim):\n"
        "    return attach(sim, 'alpha'), attach(sim, 'beta')\n")})
    index = TagIndex(project)
    site = next(s for s in index.sites if s.line == 2)
    assert sorted(p.render() for p in site.patterns) == [
        "probe:alpha", "probe:beta"]


def test_fold_parameter_with_dynamic_call_site_stays_hole():
    project = build_project({"src/repro/simnet/m.py": (
        "def attach(sim, kind):\n"
        "    return sim.child_rng(f'probe:{kind}')\n"
        "def build(sim, k):\n"
        "    return attach(sim, k)\n")})
    index = TagIndex(project)
    site = next(s for s in index.sites if s.line == 2)
    assert [p.render() for p in site.patterns] == ["probe:{…}"]


def test_fold_format_spec_is_a_hole():
    pats = fold_first_tag(
        "def f(sim, i):\n"
        "    return sim.child_rng(f'c:{i:04d}')\n")
    assert [p.render() for p in pats] == ["c:{…}"]


# ----------------------------------------------------------------------
# Taint propagation
# ----------------------------------------------------------------------
def test_taint_flows_through_call_arguments():
    project = build_project({"src/repro/simnet/m.py": (
        "def inner(rng):\n"
        "    return rng.random()\n"
        "def outer(sim):\n"
        "    r = sim.child_rng('x')\n"
        "    return inner(r)\n")})
    taint = TaintAnalysis(project)
    assert taint.tainted_params.get("repro.simnet.m.inner") == {"rng"}


def test_taint_flows_through_returns():
    project = build_project({"src/repro/simnet/m.py": (
        "def make(sim):\n"
        "    return sim.child_rng('x')\n"
        "def consume(sim):\n"
        "    r = make(sim)\n"
        "    return use(r)\n"
        "def use(rng):\n"
        "    return rng.random()\n")})
    taint = TaintAnalysis(project)
    assert "repro.simnet.m.make" in taint.returns_rng
    assert taint.tainted_params.get("repro.simnet.m.use") == {"rng"}


def test_taint_tracks_self_attribute_stores():
    project = build_project({"src/repro/simnet/m.py": (
        "class Link:\n"
        "    def __init__(self, sim):\n"
        "        self._rng = sim.child_rng('link')\n"
        "    def hand_off(self):\n"
        "        return drain(self._rng)\n"
        "def drain(rng):\n"
        "    return rng.random()\n")})
    taint = TaintAnalysis(project)
    assert ("repro.simnet.m.Link", "_rng") in taint.rng_attrs
    assert taint.tainted_params.get("repro.simnet.m.drain") == {"rng"}


def test_seeded_random_with_explicit_seed_is_a_source():
    project = build_project({"src/repro/simnet/m.py": (
        "import random\n"
        "def make(seed):\n"
        "    r = random.Random(seed)\n"
        "    return sink(r)\n"
        "def sink(rng):\n"
        "    return rng.random()\n")})
    taint = TaintAnalysis(project)
    assert taint.tainted_params.get("repro.simnet.m.sink") == {"rng"}


def test_plain_values_are_not_tainted():
    project = build_project({"src/repro/simnet/m.py": (
        "def outer(sim):\n"
        "    return inner(sim.now)\n"
        "def inner(t):\n"
        "    return t + 1\n")})
    taint = TaintAnalysis(project)
    assert not taint.tainted_params.get("repro.simnet.m.inner")
