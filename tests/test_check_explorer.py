"""Unit tests for repro.check: choice oracles, engine hooks, explorer DFS."""

import ast
import copy

import pytest

from repro.check.choices import (
    ChoiceError,
    Chooser,
    ReplayController,
    ReplayDivergence,
    ScriptController,
)
from repro.check.explorer import Budget, explore
from repro.check.harnesses import Harness, World
from repro.check.invariants import (
    Counterexample,
    replay_counterexample,
    state_digest,
)
from repro.simnet.engine import Simulator


# ======================================================================
# Engine hooks: checkpoint/restore, pending_ties, fire_event
# ======================================================================

class _Recorder:
    """Bound-method callbacks so deepcopy keeps them world-local."""

    def __init__(self, sim):
        self.sim = sim
        self.fired = []

    def note(self, label):
        self.fired.append((label, self.sim.now))

    def note_a(self):
        self.note("a")

    def note_b(self):
        self.note("b")

    def note_c(self):
        self.note("c")


class TestCheckpoint:
    def test_restore_yields_independent_world(self):
        sim = Simulator(seed=1)
        rec = _Recorder(sim)
        sim.schedule(1.0, rec.note_a)
        sim.schedule(2.0, rec.note_b)
        cp = sim.checkpoint(rec)

        sim.run(until=3.0)
        assert [l for l, _ in rec.fired] == ["a", "b"]

        sim2, rec2 = cp.restore()
        assert sim2.now == 0.0
        assert rec2.fired == []
        sim2.run(until=3.0)
        assert rec2.fired == [("a", 1.0), ("b", 2.0)]
        # The restored recorder reads its own simulator's clock, not the
        # original's (deepcopy kept the shared reference consistent).
        assert rec2.sim is sim2
        # The original world is untouched by the restored run.
        assert len(rec.fired) == 2

    def test_multiple_restores_are_independent(self):
        sim = Simulator(seed=1)
        rec = _Recorder(sim)
        sim.schedule(1.0, rec.note_a)
        cp = sim.checkpoint(rec)
        sim_a, rec_a = cp.restore()
        sim_b, rec_b = cp.restore()
        sim_a.run(until=2.0)
        assert rec_a.fired and not rec_b.fired

    def test_consume_forbids_further_restores(self):
        sim = Simulator(seed=1)
        cp = sim.checkpoint(None)
        assert not cp.consumed
        cp.restore(consume=True)
        assert cp.consumed
        with pytest.raises(RuntimeError):
            cp.restore()


class TestTieExploration:
    def test_pending_ties_lists_same_deadline_events_by_seq(self):
        sim = Simulator(seed=1)
        rec = _Recorder(sim)
        e1 = sim.schedule(1.0, rec.note_a)
        e2 = sim.schedule(1.0, rec.note_b)
        sim.schedule(2.0, rec.note_c)
        ties = sim.pending_ties()
        assert ties == [e1, e2]
        assert [e.seq for e in ties] == sorted(e.seq for e in ties)

    def test_fire_event_runs_the_chosen_tie_first(self):
        sim = Simulator(seed=1)
        rec = _Recorder(sim)
        sim.schedule(1.0, rec.note_a)
        e2 = sim.schedule(1.0, rec.note_b)
        sim.fire_event(e2)
        assert rec.fired == [("b", 1.0)]
        assert sim.now == 1.0
        remaining = sim.pending_ties()
        assert len(remaining) == 1
        sim.fire_event(remaining[0])
        assert [l for l, _ in rec.fired] == ["b", "a"]

    def test_fire_event_rejects_non_pending(self):
        sim = Simulator(seed=1)
        rec = _Recorder(sim)
        event = sim.schedule(1.0, rec.note_a)
        sim.fire_event(event)
        with pytest.raises(ValueError):
            sim.fire_event(event)

    def test_empty_heap_has_no_ties(self):
        assert Simulator(seed=1).pending_ties() == []


# ======================================================================
# Choice oracles
# ======================================================================

class TestChooser:
    def test_defaults_to_engine_order(self):
        chooser = Chooser()
        assert chooser.choose("x", 4) == 0

    def test_arity_one_is_not_a_decision(self):
        chooser = Chooser()
        chooser.controller = ScriptController([3])
        assert chooser.choose("trivial", 1) == 0
        assert chooser.controller.log == []

    def test_deepcopy_drops_controller(self):
        chooser = Chooser()
        chooser.controller = ScriptController([1])
        clone = copy.deepcopy(chooser)
        assert clone.controller is None


class TestScriptController:
    def test_prefix_then_defaults_and_siblings(self):
        ctl = ScriptController([1])
        picked = [ctl.choose("a", 2), ctl.choose("b", 3), ctl.choose("c", 2)]
        assert picked == [1, 0, 0]
        assert ctl.picks == [1, 0, 0]
        # Siblings only branch at the defaulted tail positions.
        assert ctl.sibling_scripts() == [[1, 1], [1, 2], [1, 0, 1]]

    def test_out_of_range_pick_raises(self):
        ctl = ScriptController([5])
        with pytest.raises(ChoiceError):
            ctl.choose("a", 3)


class TestReplayController:
    def test_extra_decision_raises(self):
        ctl = ReplayController([1])
        ctl.choose("a", 2)
        assert ctl.exhausted
        with pytest.raises(ReplayDivergence):
            ctl.choose("b", 2)

    def test_arity_mismatch_raises(self):
        ctl = ReplayController([2])
        with pytest.raises(ReplayDivergence):
            ctl.choose("a", 2)

    def test_expected_log_mismatch_raises(self):
        ctl = ReplayController([1], expected_log=[("a", 3, 1)])
        with pytest.raises(ReplayDivergence):
            ctl.choose("b", 3)


# ======================================================================
# Explorer DFS over a transparent toy harness
# ======================================================================

class CounterHarness(Harness):
    """Add 0/1/2 per step; fingerprints merge equal running sums."""

    name = "counter"

    def __init__(self, bad_sum=10**9):
        self.bad_sum = bad_sum

    def make_world(self, seed):
        sim = Simulator(seed=seed)
        return World(sim=sim, chooser=Chooser(),
                     roots={"value": 0, "log": []})

    def step(self, world):
        pick = world.chooser.choose("counter.add", 3)
        world.roots["value"] += pick
        world.roots["log"].append(pick)
        world.sim.run(until=world.sim.now + 0.1)

    def invariants(self, world):
        if world.roots["value"] >= self.bad_sum:
            return [f"sum-bound: reached {world.roots['value']}"]
        return []

    def fingerprint(self, world):
        return (world.roots["value"], len(world.roots["log"]))


class TestExplore:
    def test_full_enumeration_with_merging(self):
        # Depth 2, arity 3: 3 + 9 = 12 edges; sums merge, so the unique
        # states are the root, 3 at depth 1, and 5 at depth 2.
        result = explore(CounterHarness(), seed=0,
                         budget=Budget(max_states=100, max_depth=2))
        assert result.ok
        assert result.states == 12
        assert result.unique_states == 9
        assert result.pruned_visited == 4
        assert result.depth_limit_hits == 5
        assert result.finalized_leaves == 0  # base finalize declines

    def test_max_states_stops_exploration(self):
        result = explore(CounterHarness(), seed=0,
                         budget=Budget(max_states=5, max_depth=4))
        assert result.states == 5

    def test_max_branch_truncation_is_counted(self):
        result = explore(CounterHarness(), seed=0,
                         budget=Budget(max_states=50, max_depth=2,
                                       max_branch=1))
        assert result.truncated_branches > 0

    def test_deterministic_given_seed_and_budget(self):
        budget = Budget(max_states=40, max_depth=3)
        a = explore(CounterHarness(), 7, budget).to_dict()
        b = explore(CounterHarness(), 7, budget).to_dict()
        assert a == b

    def test_violation_yields_replayable_counterexample(self):
        harness = CounterHarness(bad_sum=4)
        result = explore(harness, seed=0,
                         budget=Budget(max_states=500, max_depth=4))
        assert not result.ok
        cex = result.violations[0]
        assert cex.harness == "counter"
        assert sum(sum(step) for step in cex.trace) >= 4
        assert cex.digest == state_digest(ast.literal_eval(cex.state))

        replay = replay_counterexample(cex, CounterHarness(bad_sum=4))
        assert replay.reproduced
        assert replay.state == cex.state
        assert replay.digest == cex.digest
        # Every replayed step logged its decisions.
        assert len(replay.choice_log) == len(cex.trace)

    def test_counterexample_json_roundtrip(self):
        harness = CounterHarness(bad_sum=3)
        result = explore(harness, seed=0,
                         budget=Budget(max_states=200, max_depth=3))
        cex = result.violations[0]
        again = Counterexample.from_json(cex.to_json())
        assert again.to_dict() == cex.to_dict()

    def test_replay_rejects_wrong_harness(self):
        cex = Counterexample(harness="other", seed=0, trace=[],
                             violations=["x"], state="()", digest="0" * 64)
        with pytest.raises(ValueError):
            replay_counterexample(cex, CounterHarness())

    def test_tampered_trace_diverges(self):
        harness = CounterHarness(bad_sum=4)
        result = explore(harness, seed=0,
                         budget=Budget(max_states=500, max_depth=4))
        cex = result.violations[0]
        cex.trace[0] = []         # step will choose more than recorded
        with pytest.raises(ReplayDivergence):
            replay_counterexample(cex, CounterHarness(bad_sum=4))
