"""Tests for offloading strategies and the simnet executor."""

import pytest

from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import CLOUD, SMART_GLASSES, SMARTPHONE
from repro.mar.offload import (
    FeatureOffload,
    FullOffload,
    LocalOnly,
    OffloadExecutor,
    TrackingOffload,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Network

GAMING = APP_ARCHETYPES["gaming"]
ORIENTATION = APP_ARCHETYPES["orientation"]


def scenario(rtt=0.02, down=100e6, up=50e6, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", down, up, delay=rtt / 2)
    net.build_routes()
    return sim, net


class TestStrategies:
    def test_local_never_uses_network(self):
        plan = LocalOnly().plan_frame(GAMING, 0)
        assert not plan.needs_network
        assert plan.local_megacycles == GAMING.megacycles_per_frame

    def test_full_offload_ships_whole_frame(self):
        plan = FullOffload().plan_frame(GAMING, 0)
        assert plan.upload_bytes == GAMING.frame_upload_bytes
        assert plan.remote_megacycles == GAMING.megacycles_per_frame
        assert plan.local_megacycles < GAMING.megacycles_per_frame * 0.2

    def test_feature_offload_splits_compute(self):
        plan = FeatureOffload().plan_frame(GAMING, 0)
        assert plan.upload_bytes == GAMING.feature_upload_bytes
        total = plan.local_megacycles + plan.remote_megacycles
        assert total == pytest.approx(GAMING.megacycles_per_frame)

    def test_tracking_offload_only_triggers_touch_network(self):
        strat = TrackingOffload(trigger_interval=10)
        plans = [strat.plan_frame(GAMING, i) for i in range(20)]
        networked = [i for i, p in enumerate(plans) if p.needs_network]
        assert networked == [0, 10]

    def test_tracking_interval_validation(self):
        with pytest.raises(ValueError):
            TrackingOffload(trigger_interval=0)

    def test_mean_uplink_ordering(self):
        full = FullOffload().mean_uplink_bps(GAMING)
        features = FeatureOffload().mean_uplink_bps(GAMING)
        tracking = TrackingOffload(10).mean_uplink_bps(GAMING)
        local = LocalOnly().mean_uplink_bps(GAMING)
        assert full > features > local
        assert full > tracking > local


class TestExecutor:
    def test_link_rtt_measured_matches_path(self):
        sim, net = scenario(rtt=0.036)
        ex = OffloadExecutor(net, "client", "server", GAMING, FeatureOffload(), SMARTPHONE)
        result = ex.run(n_frames=60)
        assert result.mean_link_rtt == pytest.approx(0.036, abs=0.004)

    def test_local_strategy_latency_is_pure_compute(self):
        sim, net = scenario()
        ex = OffloadExecutor(net, "client", "server", ORIENTATION, LocalOnly(), SMARTPHONE)
        result = ex.run(n_frames=30)
        expected = SMARTPHONE.execution_time(ORIENTATION.megacycles_per_frame)
        assert result.mean_latency == pytest.approx(expected, rel=0.01)
        assert result.link_rtts  # pings still flow

    def test_offload_latency_grows_with_rtt(self):
        latencies = []
        for rtt in (0.008, 0.072, 0.120):
            sim, net = scenario(rtt=rtt)
            ex = OffloadExecutor(net, "client", "server", GAMING, FullOffload(),
                                 SMARTPHONE, server_device=CLOUD)
            latencies.append(ex.run(n_frames=60).mean_offloaded_latency)
        assert latencies[0] < latencies[1] < latencies[2]

    def test_full_offload_beats_local_for_glasses(self):
        sim, net = scenario(rtt=0.008)
        local = OffloadExecutor(net, "client", "server", GAMING, LocalOnly(),
                                SMART_GLASSES, client_port=9100, server_port=9101)
        res_local = local.run(n_frames=30)
        sim2, net2 = scenario(rtt=0.008)
        off = OffloadExecutor(net2, "client", "server", GAMING, FullOffload(),
                              SMART_GLASSES, server_device=CLOUD)
        res_off = off.run(n_frames=30)
        assert res_off.mean_latency < res_local.mean_latency

    def test_deadline_hit_rate_on_fast_path(self):
        sim, net = scenario(rtt=0.008)
        ex = OffloadExecutor(net, "client", "server", ORIENTATION, FullOffload(),
                             SMARTPHONE, server_device=CLOUD)
        result = ex.run(n_frames=60)
        assert result.deadline_hit_rate > 0.9

    def test_no_frame_loss_on_clean_path(self):
        sim, net = scenario()
        ex = OffloadExecutor(net, "client", "server", GAMING, FeatureOffload(), SMARTPHONE)
        result = ex.run(n_frames=100)
        assert result.loss_rate == 0.0
        assert result.frames_completed == 100

    def test_energy_accounted(self):
        sim, net = scenario()
        ex = OffloadExecutor(net, "client", "server", GAMING, FullOffload(),
                             SMARTPHONE, radio="lte")
        result = ex.run(n_frames=50)
        assert result.energy.compute_joules > 0
        assert result.energy.radio_joules > 0

    def test_percentile_monotone(self):
        sim, net = scenario(rtt=0.036)
        ex = OffloadExecutor(net, "client", "server", GAMING, FullOffload(), SMARTPHONE)
        result = ex.run(n_frames=60)
        assert result.percentile(50) <= result.percentile(95)

    def test_tracking_strategy_mixes_latencies(self):
        sim, net = scenario(rtt=0.072)
        ex = OffloadExecutor(net, "client", "server", GAMING,
                             TrackingOffload(trigger_interval=5), SMARTPHONE,
                             server_device=CLOUD)
        result = ex.run(n_frames=50)
        # Tracked frames are much faster than offloaded ones.
        assert len(result.offloaded_latencies) == 10
        assert result.mean_latency < result.mean_offloaded_latency
