"""Unit tests for ARQ and FEC loss recovery."""

import pytest

from repro.core.reliability import ArqBuffer, FecDecoder, FecEncoder
from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass


def make_spec(deadline=0.5):
    return StreamSpec(
        stream_id=2, name="ref", traffic_class=TrafficClass.LOSS_RECOVERY,
        priority=Priority.HIGHEST, nominal_rate_bps=1e6, deadline=deadline,
    )


def msg(seq, created=0.0, deadline=0.5):
    return Message(stream_id=2, seq=seq, size=1000, created_at=created, deadline=deadline)


class TestArq:
    def test_nack_triggers_retransmit_within_deadline(self):
        arq = ArqBuffer(make_spec())
        arq.store(msg(0))
        out = arq.nack([0], now=0.1, rtt_estimate=0.05)
        assert len(out) == 1
        assert out[0].is_retransmit
        assert arq.retransmissions == 1

    def test_nack_past_deadline_abandons(self):
        arq = ArqBuffer(make_spec())
        arq.store(msg(0, created=0.0, deadline=0.1))
        out = arq.nack([0], now=0.2, rtt_estimate=0.05)
        assert out == []
        assert arq.abandoned == 1

    def test_rtt_too_large_to_make_deadline_abandons(self):
        arq = ArqBuffer(make_spec())
        arq.store(msg(0, created=0.0, deadline=0.1))
        # now=0.05 but half-RTT of 0.2 lands at 0.15 > 0.1 deadline
        out = arq.nack([0], now=0.05, rtt_estimate=0.4)
        assert out == []
        assert arq.abandoned == 1

    def test_max_retries_enforced(self):
        arq = ArqBuffer(make_spec(deadline=100.0), max_retries=2)
        arq.store(msg(0, deadline=100.0))
        assert len(arq.nack([0], 0.1, 0.01)) == 1
        assert len(arq.nack([0], 0.2, 0.01)) == 1
        assert arq.nack([0], 0.3, 0.01) == []
        assert arq.abandoned == 1

    def test_cumulative_ack_clears_buffer(self):
        arq = ArqBuffer(make_spec())
        for i in range(5):
            arq.store(msg(i))
        arq.ack_through(2)
        assert len(arq) == 2
        assert arq.nack([0, 1, 2], 0.1, 0.01) == []

    def test_ack_one(self):
        arq = ArqBuffer(make_spec())
        arq.store(msg(0))
        arq.ack_one(0)
        assert len(arq) == 0

    def test_expire_drops_stale(self):
        arq = ArqBuffer(make_spec())
        arq.store(msg(0, created=0.0, deadline=0.1))
        arq.store(msg(1, created=1.0, deadline=0.5))
        dropped = arq.expire(now=0.5)
        assert dropped == 1
        assert len(arq) == 1

    def test_nack_unknown_seq_ignored(self):
        arq = ArqBuffer(make_spec())
        assert arq.nack([42], 0.0, 0.01) == []


class TestFecEncoder:
    def test_parity_emitted_every_group(self):
        enc = FecEncoder(group_size=4)
        parities = [enc.push(msg(i)) for i in range(8)]
        emitted = [p for p in parities if p is not None]
        assert len(emitted) == 2
        assert all(p.fec_parity for p in emitted)

    def test_parity_seq_space_negative(self):
        enc = FecEncoder(group_size=2)
        enc.push(msg(0))
        parity = enc.push(msg(1))
        assert parity.seq == -1
        enc.push(msg(2))
        parity2 = enc.push(msg(3))
        assert parity2.seq == -2

    def test_parity_size_is_group_max(self):
        enc = FecEncoder(group_size=2)
        enc.push(Message(stream_id=2, seq=0, size=500, created_at=0, deadline=1))
        parity = enc.push(Message(stream_id=2, seq=1, size=900, created_at=0, deadline=1))
        assert parity.size == 900

    def test_overhead_ratio(self):
        enc = FecEncoder(group_size=4)
        for i in range(8):
            enc.push(msg(i))
        assert enc.overhead_ratio == pytest.approx(0.25)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            FecEncoder(group_size=1)


class TestFecDecoder:
    def test_single_loss_recovered(self):
        dec = FecDecoder(group_size=4)
        for seq in (0, 1, 3):  # 2 missing
            dec.on_data(seq)
        recovered = dec.on_parity(0)
        assert recovered == [2]
        assert dec.recovered == [2]

    def test_double_loss_not_recoverable(self):
        dec = FecDecoder(group_size=4)
        dec.on_data(0)
        dec.on_data(1)  # 2 and 3 missing
        assert dec.on_parity(0) == []

    def test_no_loss_nothing_to_recover(self):
        dec = FecDecoder(group_size=2)
        dec.on_data(0)
        dec.on_data(1)
        assert dec.on_parity(0) == []

    def test_groups_independent(self):
        dec = FecDecoder(group_size=2)
        dec.on_data(0)             # group 0 missing seq 1
        dec.on_data(2)
        dec.on_data(3)             # group 1 complete
        assert dec.on_parity(1) == []
        assert dec.on_parity(0) == [1]


class TestFecEndToEnd:
    def test_encoder_decoder_round_trip_with_loss(self):
        enc = FecEncoder(group_size=4)
        dec = FecDecoder(group_size=4)
        lost = {5}
        parity_count = 0
        for i in range(12):
            parity = enc.push(msg(i))
            if i not in lost:
                dec.on_data(i)
            if parity is not None:
                dec.on_parity(parity_count)
                parity_count += 1
        assert dec.recovered == [5]
