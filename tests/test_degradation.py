"""Unit tests for the degradation (allocation) controller."""

import pytest

from repro.core.degradation import DegradationController
from repro.core.traffic import Priority, StreamSpec, TrafficClass, mar_baseline_streams


def spec(sid, priority, nominal, floor=0.0, name=None):
    return StreamSpec(
        stream_id=sid,
        name=name or f"s{sid}",
        traffic_class=TrafficClass.FULL_BEST_EFFORT,
        priority=priority,
        nominal_rate_bps=nominal,
        min_rate_bps=floor,
    )


def test_abundant_budget_gives_everyone_nominal():
    ctl = DegradationController(mar_baseline_streams())
    total_nominal = sum(s.nominal_rate_bps for s in ctl.streams)
    alloc = ctl.allocate(total_nominal * 2)
    for s in ctl.streams:
        assert alloc.rate(s.stream_id) == pytest.approx(s.nominal_rate_bps)
        assert alloc.quality[s.stream_id] == pytest.approx(1.0)
    assert alloc.dropped == []


def test_moderate_congestion_sheds_lowest_priority_first():
    streams = mar_baseline_streams(video_nominal_bps=8e6)
    ctl = DegradationController(streams)
    # Enough for everything except full interframe quality.
    alloc = ctl.allocate(4e6)
    assert alloc.quality[0] == pytest.approx(1.0)      # metadata intact
    assert alloc.quality[2] == pytest.approx(1.0)      # ref frames intact
    assert alloc.quality[3] < 0.5                      # interframes degraded


def test_severe_congestion_drops_droppables_keeps_guarantees():
    streams = mar_baseline_streams(video_nominal_bps=8e6, ref_frame_bps=1.2e6)
    ctl = DegradationController(streams)
    meta = streams[0]
    # Budget below even metadata+sensors floors.
    alloc = ctl.allocate(meta.min_rate_bps * 1.5)
    assert alloc.rate(0) == pytest.approx(meta.min_rate_bps)  # metadata kept
    assert 3 in alloc.dropped                                  # interframes gone


def test_guaranteed_floor_never_dropped_even_overcommitted():
    streams = [
        spec(0, Priority.HIGHEST, 1e6, floor=1e6),
        spec(1, Priority.MEDIUM_NO_DISCARD, 1e6, floor=5e5),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(1e5)  # far below both floors
    assert alloc.rate(0) == 1e6
    assert alloc.rate(1) == 5e5
    assert alloc.overcommitted


def test_priority_order_of_topup():
    streams = [
        spec(0, Priority.HIGHEST, 2e6),
        spec(1, Priority.LOWEST, 2e6),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(3e6)
    assert alloc.rate(0) == pytest.approx(2e6)
    assert alloc.rate(1) == pytest.approx(1e6)


def test_droppable_floor_unfundable_is_dropped():
    streams = [
        spec(0, Priority.HIGHEST, 1e6, floor=1e6),
        spec(1, Priority.LOWEST, 1e6, floor=5e5),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(1.2e6)
    assert alloc.rate(0) == 1e6
    # Floor of 5e5 cannot be funded with 2e5 left -> dropped entirely...
    # remaining 2e5 then tops up nothing else.
    assert 1 in alloc.dropped
    assert alloc.rate(1) == 0.0


def test_quality_fraction():
    streams = [spec(0, Priority.HIGHEST, 4e6)]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(1e6)
    assert alloc.quality[0] == pytest.approx(0.25)


def test_total_never_exceeds_budget_without_guarantees():
    streams = [
        spec(0, Priority.HIGHEST, 3e6),
        spec(1, Priority.MEDIUM_NO_DELAY, 3e6),
        spec(2, Priority.LOWEST, 3e6),
    ]
    ctl = DegradationController(streams)
    for budget in (1e5, 1e6, 5e6, 2e7):
        alloc = ctl.allocate(budget)
        assert alloc.total_bps <= budget + 1e-6


def test_duplicate_ids_rejected():
    streams = [spec(0, Priority.HIGHEST, 1.0), spec(0, Priority.LOWEST, 1.0)]
    with pytest.raises(ValueError):
        DegradationController(streams)


def test_guaranteed_floor_helper():
    streams = mar_baseline_streams()
    ctl = DegradationController(streams)
    expected = streams[0].min_rate_bps + streams[1].min_rate_bps + streams[2].min_rate_bps
    assert ctl.guaranteed_floor_bps() == pytest.approx(expected)


def test_history_recorded():
    ctl = DegradationController(mar_baseline_streams())
    ctl.allocate(1e6, now=1.0)
    ctl.allocate(2e6, now=2.0)
    assert len(ctl.history) == 2
    assert ctl.history[0][0] == 1.0


def test_spec_lookup():
    ctl = DegradationController(mar_baseline_streams())
    assert ctl.spec(2).name == "video-reference-frames"
    with pytest.raises(KeyError):
        ctl.spec(99)


# ======================================================================
# Exact float-threshold boundaries (repro.check satellite coverage).
#
# The allocator compares the remaining budget against floors and
# demands with plain float arithmetic; these tests pin its behaviour
# *at* the thresholds, one ulp below, and one ulp above.  All rates are
# binary-representable so == assertions are exact, and math.nextafter
# generates true one-ulp neighbours rather than arbitrary epsilons.
# ======================================================================

import math  # noqa: E402


def _boundary_streams():
    return [
        spec(0, Priority.HIGHEST, 1_000_000.0, floor=250_000.0),
        spec(1, Priority.MEDIUM_NO_DISCARD, 2_000_000.0, floor=500_000.0),
        spec(2, Priority.LOWEST, 1_000_000.0, floor=125_000.0),
    ]


def test_priority_major_at_the_sum_of_floors_boundary():
    # Allocation is strictly priority-major: at budget == sum of all
    # floors the HIGHEST level still tops up toward nominal before any
    # budget reaches the next level, so the MEDIUM_NO_DISCARD floor is
    # kept only via the overcommit guarantee and the droppable starves.
    ctl = DegradationController(_boundary_streams())
    floors = 250_000.0 + 500_000.0 + 125_000.0
    alloc = ctl.allocate(floors)
    assert alloc.rate(0) == floors - 500_000.0 - 125_000.0 + 625_000.0
    assert alloc.rate(1) == 500_000.0
    assert alloc.dropped == [2]
    assert alloc.overcommitted


def test_same_level_floors_funded_exactly_at_boundary():
    streams = [
        spec(0, Priority.MEDIUM_NO_DISCARD, 1_000_000.0, floor=250_000.0),
        spec(1, Priority.MEDIUM_NO_DISCARD, 2_000_000.0, floor=500_000.0),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(750_000.0)
    assert alloc.rate(0) == 250_000.0
    assert alloc.rate(1) == 500_000.0
    assert alloc.dropped == []
    assert not alloc.overcommitted


def test_one_ulp_below_same_level_floors_overcommits_the_guarantee():
    streams = [
        spec(0, Priority.MEDIUM_NO_DISCARD, 1_000_000.0, floor=250_000.0),
        spec(1, Priority.MEDIUM_NO_DISCARD, 2_000_000.0, floor=500_000.0),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(math.nextafter(750_000.0, 0.0))
    # One ulp of shortfall: the second guarantee no longer fits, but a
    # non-discardable floor is funded anyway and the round is flagged.
    assert alloc.rate(0) == 250_000.0
    assert alloc.rate(1) == 500_000.0
    assert alloc.overcommitted


def test_one_ulp_below_same_level_floors_drops_the_droppable():
    streams = [
        spec(0, Priority.LOWEST, 1_000_000.0, floor=250_000.0),
        spec(1, Priority.LOWEST, 1_000_000.0, floor=125_000.0),
    ]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(math.nextafter(375_000.0, 0.0))
    # Floors are funded in stream-id order; the ulp shortfall lands on
    # stream 1, which is droppable and therefore dropped outright.
    assert alloc.dropped == [1]
    assert alloc.rate(1) == 0.0
    assert alloc.rate(0) >= 250_000.0
    assert not alloc.overcommitted


def test_budget_one_ulp_below_a_guaranteed_floor_overcommits():
    ctl = DegradationController([
        spec(0, Priority.HIGHEST, 1_000_000.0, floor=250_000.0),
    ])
    alloc = ctl.allocate(math.nextafter(250_000.0, 0.0))
    # The guarantee is kept anyway — the paper's "unaltered at all
    # cost" — and the round is flagged, not silently scaled.
    assert alloc.rate(0) == 250_000.0
    assert alloc.overcommitted


def test_budget_exactly_sum_of_nominals_restores_full_quality():
    ctl = DegradationController(_boundary_streams())
    nominal = 4_000_000.0
    # A congested round first: re-promotion must not depend on history.
    congested = ctl.allocate(500_000.0)
    assert any(q < 1.0 for q in congested.quality.values())
    alloc = ctl.allocate(nominal)
    assert alloc.quality == {0: 1.0, 1: 1.0, 2: 1.0}
    assert alloc.total_bps == nominal


def test_budget_one_ulp_below_nominals_degrades_only_the_lowest():
    ctl = DegradationController(_boundary_streams())
    alloc = ctl.allocate(math.nextafter(4_000_000.0, 0.0))
    # The shortfall is strictly below one bit of budget, but quality
    # must still reflect it — and only on the lowest priority level.
    assert alloc.quality[0] == 1.0
    assert alloc.quality[1] == 1.0
    assert alloc.quality[2] < 1.0


def test_budget_one_ulp_above_nominals_changes_nothing():
    ctl = DegradationController(_boundary_streams())
    alloc = ctl.allocate(math.nextafter(4_000_000.0, math.inf))
    assert alloc.quality == {0: 1.0, 1: 1.0, 2: 1.0}
    assert alloc.total_bps == 4_000_000.0


def test_proportional_topup_splits_exactly_at_the_boundary():
    # Two streams share one priority level; the budget covers floors
    # plus exactly half the total remaining demand.  The water-fill
    # must split that half proportionally to demand, exactly.
    streams = [
        spec(0, Priority.MEDIUM_NO_DISCARD, 1_000_000.0, floor=500_000.0),
        spec(1, Priority.MEDIUM_NO_DISCARD, 2_000_000.0, floor=1_000_000.0),
    ]
    ctl = DegradationController(streams)
    # Demands above floors: 500k and 1000k; half the total is 750k.
    alloc = ctl.allocate(1_500_000.0 + 750_000.0)
    assert alloc.rate(0) == 500_000.0 + 250_000.0
    assert alloc.rate(1) == 1_000_000.0 + 500_000.0
    assert alloc.total_bps == 2_250_000.0


def test_leftover_at_the_waterfill_epsilon_terminates():
    # A leftover budget exactly at the loop's 1e-9 cutoff must neither
    # spin nor grant phantom rate.
    streams = [spec(0, Priority.HIGHEST, 1_000_000.0, floor=0.0)]
    ctl = DegradationController(streams)
    alloc = ctl.allocate(1_000_000.0 + 1e-9)
    assert alloc.rate(0) == 1_000_000.0
    assert alloc.quality[0] == 1.0
