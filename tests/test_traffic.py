"""Unit tests for traffic classes, priorities and stream specs."""

import pytest

from repro.core.traffic import (
    MAR_BASELINE_STREAMS,
    Message,
    Priority,
    StreamSpec,
    TrafficClass,
    mar_baseline_streams,
)


class TestPrioritySemantics:
    def test_highest_never_discarded_nor_delayed(self):
        assert not Priority.HIGHEST.may_discard
        assert not Priority.HIGHEST.may_delay

    def test_medium1_delay_ok_discard_never(self):
        assert Priority.MEDIUM_NO_DISCARD.may_delay
        assert not Priority.MEDIUM_NO_DISCARD.may_discard

    def test_medium2_discard_ok_delay_never(self):
        assert Priority.MEDIUM_NO_DELAY.may_discard
        assert not Priority.MEDIUM_NO_DELAY.may_delay

    def test_lowest_both(self):
        assert Priority.LOWEST.may_discard
        assert Priority.LOWEST.may_delay

    def test_ordering(self):
        assert Priority.HIGHEST < Priority.MEDIUM_NO_DISCARD < Priority.LOWEST


class TestTrafficClass:
    def test_full_best_effort_never_retransmits(self):
        assert not TrafficClass.FULL_BEST_EFFORT.retransmits

    def test_loss_recovery_retransmits_unordered(self):
        assert TrafficClass.LOSS_RECOVERY.retransmits
        assert not TrafficClass.LOSS_RECOVERY.ordered

    def test_critical_is_ordered_and_reliable(self):
        assert TrafficClass.CRITICAL.retransmits
        assert TrafficClass.CRITICAL.ordered


class TestStreamSpec:
    def test_min_above_nominal_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec(
                stream_id=0, name="x", traffic_class=TrafficClass.CRITICAL,
                priority=Priority.HIGHEST, nominal_rate_bps=1.0, min_rate_bps=2.0,
            )


class TestMessage:
    def test_expiry(self):
        m = Message(stream_id=0, seq=0, size=10, created_at=1.0, deadline=0.5)
        assert not m.expired(1.4)
        assert m.expired(1.6)


class TestBaselineStreams:
    def test_four_streams_of_figure4(self):
        names = [s.name for s in MAR_BASELINE_STREAMS]
        assert names == [
            "connection-metadata",
            "sensor-data",
            "video-reference-frames",
            "video-interframes",
        ]

    def test_metadata_is_critical_highest(self):
        meta = MAR_BASELINE_STREAMS[0]
        assert meta.traffic_class is TrafficClass.CRITICAL
        assert meta.priority is Priority.HIGHEST

    def test_interframes_are_droppable(self):
        inter = MAR_BASELINE_STREAMS[3]
        assert inter.priority is Priority.LOWEST
        assert inter.min_rate_bps == 0.0
        assert inter.adjustable

    def test_reference_frames_have_fec_and_recovery(self):
        ref = MAR_BASELINE_STREAMS[2]
        assert ref.traffic_class is TrafficClass.LOSS_RECOVERY
        assert ref.fec

    def test_custom_rates_propagate(self):
        streams = mar_baseline_streams(video_nominal_bps=1e6, sensor_bps=1000.0)
        assert streams[3].nominal_rate_bps == 1e6
        assert streams[1].nominal_rate_bps == 1000.0

    def test_unique_ids(self):
        ids = [s.stream_id for s in MAR_BASELINE_STREAMS]
        assert len(set(ids)) == 4
