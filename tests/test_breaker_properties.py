"""Property tests for core.resilience.CircuitBreaker (no simulator).

The repro.check breaker harness explores decision graphs on the event
engine; these tests attack the same invariants from the other side,
with hypothesis-generated operation sequences against a bare fake
clock.  The two overlap deliberately: a regression caught here pins the
bug to the breaker itself rather than the harness or engine.
"""

from hypothesis import given, settings, strategies as st

from repro.core.resilience import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_breaker():
    clock = FakeClock()
    breaker = CircuitBreaker(
        clock=clock, failure_threshold=2,
        cooldown=0.2, cooldown_factor=2.0, cooldown_cap=0.8,
    )
    return clock, breaker


ops = st.lists(
    st.one_of(
        st.tuples(st.just("advance"),
                  st.floats(min_value=0.001, max_value=1.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("attempt"), st.just(0.0)),
        st.tuples(st.just("success"), st.just(0.0)),
        st.tuples(st.just("failure"), st.just(0.0)),
        st.tuples(st.just("trip"), st.just(0.0)),
    ),
    max_size=80,
)


def check_structural_invariants(breaker):
    # Never wedged closed: at the failure threshold the breaker opens.
    if breaker.state is BreakerState.CLOSED:
        assert breaker.failures < breaker.failure_threshold
    # Adaptive cooldown stays within [base, cap].
    assert breaker.base_cooldown <= breaker._cooldown <= breaker.cooldown_cap
    # OPEN always knows when it opened.
    if breaker.state is BreakerState.OPEN:
        assert breaker._opened_at is not None
        assert breaker.cooldown_remaining <= breaker._cooldown
    else:
        assert breaker.cooldown_remaining == 0.0


@settings(max_examples=300, deadline=None)
@given(ops)
def test_no_sequence_reaches_an_illegal_configuration(sequence):
    clock, breaker = make_breaker()
    outstanding = 0
    for op, value in sequence:
        if op == "advance":
            clock.t += value
        elif op == "attempt":
            state_before = breaker.state
            # The spec's exact admission predicate — no epsilon: at the
            # float boundary where the summed clock lands ulps under
            # the cooldown, the correct answer is "deny".
            should_admit = (
                state_before is not BreakerState.OPEN
                or clock.t - breaker._opened_at >= breaker._cooldown
            )
            allowed = breaker.allow_request()
            if state_before is BreakerState.CLOSED:
                assert allowed, "wedged closed: CLOSED denied a request"
            elif state_before is BreakerState.OPEN:
                assert allowed == should_admit
                if allowed:
                    assert breaker.state is BreakerState.HALF_OPEN
            else:
                assert not allowed, "HALF_OPEN admitted a second probe"
            if allowed:
                outstanding += 1
        elif op == "success" and outstanding > 0:
            outstanding -= 1
            breaker.record_success()
            assert breaker.state is BreakerState.CLOSED
            assert breaker.failures == 0
        elif op == "failure" and outstanding > 0:
            outstanding -= 1
            breaker.record_failure()
        elif op == "trip":
            breaker.trip()
            assert breaker.state is BreakerState.OPEN
        check_structural_invariants(breaker)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=0.3,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=20))
def test_cooldown_elapse_always_readmits(waits):
    """However the wait is sliced, elapsed >= cooldown admits the probe."""
    clock, breaker = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    opened_at, cooldown = breaker._opened_at, breaker._cooldown
    for wait in waits:
        clock.t += wait
        allowed = breaker.allow_request()
        assert allowed == (clock.t - opened_at >= cooldown)
        if allowed:
            return
    # Never elapsed within the generated waits: force it and re-check.
    clock.t = opened_at + cooldown
    assert breaker.allow_request()


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_failed_probes_grow_cooldown_geometrically_to_cap(probe_failures):
    clock, breaker = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    expected = breaker.base_cooldown
    for _ in range(probe_failures):
        # Clear the boundary by a nanosecond: (t + cd) - t can land a
        # few ulps *under* cd in floats, where the spec answer is deny.
        clock.t = breaker._opened_at + breaker._cooldown + 1e-9
        assert breaker.allow_request()           # half-open probe
        breaker.record_failure()                 # probe fails, re-opens
        expected = min(breaker.cooldown_cap,
                       expected * breaker.cooldown_factor)
        assert breaker.state is BreakerState.OPEN
        assert breaker._cooldown == expected
    breaker.record_success()
    assert breaker._cooldown == breaker.base_cooldown
    assert breaker.state is BreakerState.CLOSED
