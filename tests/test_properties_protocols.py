"""Property-based tests on protocol-level invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import PathState
from repro.core.traffic import Priority, StreamSpec, TrafficClass
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.mpegts import TsDemux, TsMux
from repro.transport.rsvp import ReservedQueue
from repro.simnet.packet import Packet
from repro.transport.tcp import TcpConnection, TcpListener


@given(
    loss=st.floats(min_value=0.0, max_value=0.15),
    nbytes=st.integers(min_value=1_000, max_value=300_000),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=12, deadline=None)
def test_tcp_exactly_once_byte_delivery(loss, nbytes, seed):
    """TCP delivers exactly the bytes sent — no loss, no duplication —
    for any loss rate it can survive."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("b", "a", 20e6, 10e6, delay=0.005, loss=loss,
                   queue_up=DropTailQueue(500))
    net.build_routes()
    got = []
    TcpListener(net["b"], 80, on_accept=lambda c: setattr(c, "on_data", got.append))
    conn = TcpConnection(net["a"], 5000, "b", 80)
    conn.on_established = lambda: conn.send(nbytes)
    conn.connect()
    sim.run(until=600.0)
    assert sum(got) == nbytes


@given(
    loss=st.floats(min_value=0.0, max_value=0.1),
    n_messages=st.integers(min_value=5, max_value=120),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=10, deadline=None)
def test_martp_no_duplicate_delivery(loss, n_messages, seed):
    """The receiver never hands the application the same sequence twice,
    even with ARQ retransmissions and wire duplication."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 20e6, 10e6, delay=0.01, loss=loss,
                   queue_up=DropTailQueue(500))
    net.build_routes()
    stream = StreamSpec(
        stream_id=0, name="s", traffic_class=TrafficClass.LOSS_RECOVERY,
        priority=Priority.HIGHEST, nominal_rate_bps=2e6, message_bytes=600,
        deadline=1.0,
    )
    seen = []
    MartpReceiver(net["server"], 7000, [stream],
                  on_message=lambda sid, seq, lat: seen.append(seq))
    from repro.transport.udp import UdpSocket
    endpoint = PathEndpoint(state=PathState(name="p"),
                            socket=UdpSocket(net["client"], 6000),
                            dst="server", dst_port=7000)
    sender = MartpSender([endpoint], [stream])
    sender.start()
    for i in range(n_messages):
        sim.schedule(i * 0.01, sender.submit, 0, 600)
    sim.run(until=n_messages * 0.01 + 5.0)
    assert len(seen) == len(set(seen))
    assert all(0 <= s < n_messages for s in seen)


@given(
    items=st.lists(
        st.tuples(st.sampled_from(["vip", "bulk", "other"]),
                  st.integers(min_value=64, max_value=1500)),
        max_size=80,
    ),
)
def test_reserved_queue_conservation(items):
    """accepted == dequeued; reservations never lose packets silently."""
    q = ReservedQueue(capacity=50)
    q.add_reservation("vip", rate_bps=1e6)
    accepted = 0
    for flow, size in items:
        if q.enqueue(Packet(src="a", dst="b", size=size, flow=flow), 0.0):
            accepted += 1
    # Reserved-eviction counts as a drop but removed a previously
    # accepted packet; track via queue length instead.
    dequeued = 0
    t = 1.0
    while True:
        packet = q.dequeue(t)
        if packet is None:
            break
        dequeued += 1
        t += 0.01
    assert dequeued == len(q) + dequeued  # queue fully drained
    assert dequeued + q.drops == len(items)


@given(
    rows=st.integers(min_value=2, max_value=6),
    cols=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
    loss_count=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=40)
def test_mpegts_recovered_only_if_actually_lost(rows, cols, seed, loss_count):
    """FEC never 'recovers' packets that arrived, and every recovery is
    a genuinely lost data packet."""
    import random as _random
    mux = TsMux(rows=rows, cols=cols)
    from repro.transport.mpegts import TS_PAYLOAD_BYTES
    mux.push(1, rows * cols * TS_PAYLOAD_BYTES * 2)
    mux.flush()
    packets = mux.take()
    rng = _random.Random(seed)
    lost = set(rng.sample([p.index for p in packets],
                          min(loss_count, len(packets))))
    demux = TsDemux(rows=rows, cols=cols)
    for packet in packets:
        if packet.index not in lost:
            demux.on_packet(packet)
    assert demux.recovered.isdisjoint(demux.received)
    assert demux.recovered <= lost
    total = len(packets)
    assert 0.0 <= demux.effective_loss(total) <= len(lost) / total + 1e-9
