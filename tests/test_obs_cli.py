"""Tests for the `repro obs` CLI verb and its artifact determinism."""

import json

from repro.cli import main

ARTIFACTS = ("trace.json", "qlog.jsonl", "metrics.json")


def run_obs(tmp_path, sub, *extra):
    out = tmp_path / sub
    rc = main(["obs", "--scenario", "cell_offload", "--frames", "8",
               "--out", str(out), *extra])
    return rc, {name: (out / f"cell_offload-seed11.{name}").read_text()
                for name in ARTIFACTS}


def test_obs_writes_artifacts_and_passes_check(tmp_path, capsys):
    rc, artifacts = run_obs(tmp_path, "a", "--check")
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "check OK" in out
    doc = json.loads(artifacts["trace.json"])
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    for line in artifacts["qlog.jsonl"].strip().splitlines():
        json.loads(line)
    assert "counters" in json.loads(artifacts["metrics.json"])


def test_obs_double_run_byte_identical(tmp_path):
    _, first = run_obs(tmp_path, "a")
    _, second = run_obs(tmp_path, "b")
    assert first == second


def test_obs_martp_scenario(tmp_path, capsys):
    out = tmp_path / "m"
    assert main(["obs", "--scenario", "martp_session", "--frames", "30",
                 "--out", str(out), "--check"]) == 0
    assert (out / "martp_session-seed11.trace.json").exists()
    assert "check OK" in capsys.readouterr().out


def test_obs_unknown_scenario(capsys):
    assert main(["obs", "--scenario", "nope"]) == 2
    assert "unknown obs scenario" in capsys.readouterr().err


def test_selftest_covers_obs_trace(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "obs trace" in out
    assert "byte-identical aggregates and trace exports" in out
