"""Tests for inter-server sync (§VI-E) and location prefetching (§III-B)."""

import pytest

from repro.edge.sync import SyncGroup
from repro.mar.prefetch import GridWorld, MarkovPredictor, PrefetchingCache
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.wireless.mobility import RandomWaypoint, Waypoint


def server_mesh(n=3, interlink_rtt=0.010, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    names = [f"s{i}" for i in range(n)]
    for name in names:
        net.add_host(name)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            net.add_duplex(a, b, 1e9, delay=interlink_rtt / 2)
    net.build_routes()
    return sim, net, names


class TestSyncGroup:
    def test_update_reaches_all_replicas(self):
        sim, net, names = server_mesh()
        group = SyncGroup(net, names)
        group.publish("s0")
        sim.run(until=1.0)
        assert group.incomplete() == 0

    def test_lag_close_to_interlink_delay(self):
        sim, net, names = server_mesh(interlink_rtt=0.020)
        group = SyncGroup(net, names)
        group.publish("s0")
        sim.run(until=1.0)
        assert group.mean_lag() == pytest.approx(0.010, abs=0.003)

    def test_overhead_scales_with_group_size(self):
        costs = {}
        for n in (2, 4, 6):
            sim, net, names = server_mesh(n=n)
            group = SyncGroup(net, names, update_bytes=500)
            for _ in range(10):
                group.publish(names[0])
            sim.run(until=1.0)
            costs[n] = group.overhead_bytes_per_update()
        assert costs[2] < costs[4] < costs[6]
        assert costs[6] == pytest.approx(500 * 5)

    def test_any_origin_can_publish(self):
        sim, net, names = server_mesh()
        group = SyncGroup(net, names)
        for name in names:
            group.publish(name)
        sim.run(until=1.0)
        assert group.incomplete() == 0

    def test_unknown_origin_rejected(self):
        sim, net, names = server_mesh()
        group = SyncGroup(net, names)
        with pytest.raises(KeyError):
            group.publish("ghost")

    def test_group_needs_two_servers(self):
        sim, net, names = server_mesh()
        with pytest.raises(ValueError):
            SyncGroup(net, ["s0"])


class TestGridWorld:
    def test_cell_mapping(self):
        world = GridWorld(cell_size=100.0)
        assert world.cell_of(Waypoint(0, 50, 50)) == (0, 0)
        assert world.cell_of(Waypoint(0, 150, 250)) == (1, 2)

    def test_catalog_deterministic(self):
        world = GridWorld(seed=5)
        assert world.objects_in((3, 4)) == world.objects_in((3, 4))

    def test_neighbours_are_eight(self):
        assert len(GridWorld().neighbours((0, 0))) == 8


class TestMarkovPredictor:
    def test_predicts_learned_transition(self):
        predictor = MarkovPredictor()
        predictor.train([(0, 0), (0, 1), (0, 0), (0, 1), (0, 0), (1, 0)])
        assert predictor.predict((0, 0))[0] == (0, 1)

    def test_unseen_cell_predicts_nothing(self):
        assert MarkovPredictor().predict((9, 9)) == []

    def test_self_transitions_ignored(self):
        predictor = MarkovPredictor()
        predictor.train([(0, 0), (0, 0), (0, 0), (1, 0)])
        assert predictor.predict((0, 0)) == [(1, 0)]


class TestPrefetchingCache:
    def commute(self, repeats=6):
        """A repetitive commute path: highly predictable movement."""
        path = []
        t = 0.0
        for _ in range(repeats):
            for x in range(0, 1200, 60):
                path.append(Waypoint(t, float(x), 80.0))
                t += 1.0
        return path

    def test_markov_beats_demand_only_on_predictable_path(self):
        world = GridWorld(cell_size=150.0, seed=2)
        path = self.commute()
        demand = PrefetchingCache(world, capacity_bytes=3_000_000, policy="none")
        markov = PrefetchingCache(world, capacity_bytes=3_000_000, policy="markov")
        hit_demand = demand.run_trace(path)
        hit_markov = markov.run_trace(path)
        assert hit_markov > hit_demand

    def test_neighbour_prefetch_beats_demand_only(self):
        world = GridWorld(cell_size=150.0, seed=2)
        path = self.commute()
        demand = PrefetchingCache(world, capacity_bytes=5_000_000, policy="none")
        neighbours = PrefetchingCache(world, capacity_bytes=5_000_000,
                                      policy="neighbours")
        assert neighbours.run_trace(path) > demand.run_trace(path)

    def test_markov_more_byte_efficient_than_neighbours(self):
        """Markov prefetches fewer speculative bytes for similar hits."""
        world = GridWorld(cell_size=150.0, seed=2)
        path = self.commute()
        neighbours = PrefetchingCache(world, capacity_bytes=5_000_000,
                                      policy="neighbours")
        markov = PrefetchingCache(world, capacity_bytes=5_000_000, policy="markov")
        hit_n = neighbours.run_trace(path)
        hit_m = markov.run_trace(path)
        assert hit_m >= hit_n - 0.05
        assert markov.prefetched_bytes < neighbours.prefetched_bytes

    def test_random_walk_gains_less_than_commute(self):
        world = GridWorld(cell_size=150.0, seed=2)
        random_walk = RandomWaypoint(width=1200, height=1200, seed=4,
                                     max_pause=0.0).trajectory(600, tick=1.0)
        commute = self.commute()

        def gain(path):
            base = PrefetchingCache(world, 3_000_000, policy="none").run_trace(path)
            markov = PrefetchingCache(world, 3_000_000, policy="markov").run_trace(path)
            return markov - base

        assert gain(commute) > gain(random_walk)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PrefetchingCache(GridWorld(), 1000, policy="psychic")
