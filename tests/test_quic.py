"""Tests for the QUIC-like transport: streams, 0-RTT, no cross-stream HOL."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.quic import QuicConnection


def make_pair(loss=0.0, rtt=0.02, up=20e6, seed=1, on_stream_data=None):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, up, delay=rtt / 2, loss=loss,
                   queue_up=DropTailQueue(500))
    net.build_routes()
    server = QuicConnection(net["server"], 443, "client", 5000,
                            on_stream_data=on_stream_data)
    client = QuicConnection(net["client"], 5000, "server", 443)
    return sim, net, client, server


def test_handshake_then_stream_delivery():
    got = []
    sim, net, client, server = make_pair(
        on_stream_data=lambda sid, n: got.append((sid, n)))
    client.connect()
    sim.run(until=0.5)
    assert client.established and client.handshake_rtts == 1
    client.send_stream(1, 50_000)
    sim.run(until=5.0)
    assert server.stream_delivered(1) == 50_000


def test_zero_rtt_resumption_sends_immediately():
    sim, net, client, server = make_pair()
    client.connect(resumed=True)
    client.send_stream(1, 10_000)
    sim.run(until=1.0)
    assert client.handshake_rtts == 0
    assert server.stream_delivered(1) == 10_000


def test_streams_multiplex_independently():
    sim, net, client, server = make_pair()
    client.connect(resumed=True)
    for stream_id in (1, 2, 3):
        client.send_stream(stream_id, 30_000)
    sim.run(until=5.0)
    for stream_id in (1, 2, 3):
        assert server.stream_delivered(stream_id) == 30_000


def test_loss_recovered_with_retransmissions():
    sim, net, client, server = make_pair(loss=0.05, seed=4)
    client.connect(resumed=True)
    client.send_stream(1, 300_000)
    sim.run(until=30.0)
    assert server.stream_delivered(1) == 300_000
    assert client.retransmits > 0


def test_no_cross_stream_hol_blocking():
    """A hole on stream 1 must not delay stream 2's delivery."""
    deliveries = []
    sim, net, client, server = make_pair(
        on_stream_data=lambda sid, n: deliveries.append((sim.now, sid, n)))
    server.on_stream_data = lambda sid, n: deliveries.append((sim.now, sid, n))
    client.connect(resumed=True)
    # Install the interceptor BEFORE sending: transmission is synchronous.
    uplink = net.path_links("client", "server")[0]
    original_send = uplink.send
    state = {"dropped": False}

    def lossy_send(packet):
        if (not state["dropped"] and packet.kind == "quic-data"
                and packet.payload.get("stream") == 1):
            state["dropped"] = True
            return True  # swallow it
        return original_send(packet)

    uplink.send = lossy_send
    client.send_stream(1, 1200)
    client.send_stream(2, 1200)
    sim.run(until=5.0)
    stream2_time = next(t for t, sid, _ in deliveries if sid == 2)
    stream1_time = next(t for t, sid, _ in deliveries if sid == 1)
    # Stream 2 delivered long before stream 1's retransmission landed.
    assert stream2_time < stream1_time
    assert server.stream_delivered(1) == 1200  # eventually recovered


def test_rtt_estimated():
    sim, net, client, server = make_pair(rtt=0.04)
    client.connect(resumed=True)
    client.send_stream(1, 100_000)
    sim.run(until=5.0)
    assert client.srtt == pytest.approx(0.04, abs=0.02)


def test_in_order_within_stream():
    """Per-stream bytes are delivered in order even with reordering loss."""
    order = []
    sim, net, client, server = make_pair(
        loss=0.03, seed=9,
        on_stream_data=lambda sid, n: order.append(n))
    client.connect(resumed=True)
    for _ in range(50):
        client.send_stream(7, 1200)
    sim.run(until=20.0)
    assert server.stream_delivered(7) == 50 * 1200


def test_send_validates():
    sim, net, client, server = make_pair()
    with pytest.raises(ValueError):
        client.send_stream(1, 0)
