"""Flagship integration tests: the paper's full narrative through the
public API, each test crossing several packages.

These are the "does the system hang together" tests: vision feeding
offloading, offloading feeding the protocol, the protocol feeding QoE,
QoE feeding economics — the way a downstream user would actually
compose the library.
"""


from repro.core import OffloadSession, ScenarioBuilder, mos_score
from repro.edge import (
    CityTopology,
    PlacementProblem,
    SyncGroup,
    assign_users,
    solve_local_search,
)
from repro.mar import (
    APP_ARCHETYPES,
    CLOUD,
    SMART_GLASSES,
    SMARTPHONE,
    AdaptiveTrackingOffload,
    DecisionEngine,
    FullOffload,
    LocalOnly,
    OffloadExecutor,
    battery_life_hours,
)
from repro.mar.compute import ExecutionBudget, feasible_locally, offloading_delay
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.vision import ArPipeline, make_scene, random_homography, warp_image
from repro.wireless.profiles import LTE, WIFI_HOME


class TestVisionToOffloadChain:
    """Camera frames → pipeline costs → offloading over a real path."""

    def test_measured_vision_costs_drive_the_offload_decision(self):
        scene = make_scene(240, 320, seed=21)
        pipeline = ArPipeline(scene)
        frame = warp_image(scene, random_homography(seed=1))
        result = pipeline.process_frame(frame)
        assert result.recognized

        # Glasses cannot run the measured workload in a 50 ms budget...
        measured_mc = result.costs.total
        glasses_time = SMART_GLASSES.execution_time(measured_mc)
        assert glasses_time > 0.050
        # ...but the cloud can, and the network math says offload wins.
        budget = ExecutionBudget(20e6, 50e6, latency=0.010)
        remote = offloading_delay(SMART_GLASSES, CLOUD,
                                  APP_ARCHETYPES["orientation"], budget)
        assert remote < glasses_time

    def test_adaptive_triggers_reduce_network_load_on_calm_scenes(self):
        scene = make_scene(240, 320, seed=22)
        adaptive = AdaptiveTrackingOffload(ArPipeline(scene))
        frame = scene
        uploads = 0
        app = APP_ARCHETYPES["orientation"]
        for i in range(12):
            frame = warp_image(scene, random_homography(
                seed=i, max_translation=1.5, max_rotation=0.004))
            adaptive.observe_frame(frame)
            if adaptive.plan_frame(app, i).needs_network:
                uploads += 1
        static_uploads = sum(
            1 for i in range(12)
            if FullOffload().plan_frame(app, i).needs_network
        )
        assert uploads < static_uploads / 2


class TestNetworkToQoEChain:
    """Access profile → scenario → MARTP → QoE → battery."""

    def test_lte_profile_numbers_flow_into_session_quality(self):
        # Build the Table II cloud-LTE scenario from the LTE profile's
        # measured numbers rather than hand-picked constants.
        scenario = ScenarioBuilder(seed=23).single_path(
            rtt=LTE.rtt + 0.045,          # access + core to the cloud
            down_bps=LTE.down_mean,
            up_bps=LTE.up_mean,
            path_name="lte",
            metered=True,
        )
        report = OffloadSession(scenario).run(12.0)
        assert report.critical_intact
        # LTE's ~8 Mb/s uplink carries most of the nominal ~9.3 Mb/s
        # workload, degraded but functional.
        assert 0.3 < report.mean_video_quality <= 1.0
        assert mos_score(report) > 3.0

    def test_session_energy_projects_battery_life(self):
        sim = Simulator(seed=24)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 80e6, 20e6, delay=0.015)
        net.build_routes()
        executor = OffloadExecutor(net, "client", "server",
                                   APP_ARCHETYPES["gaming"], FullOffload(),
                                   SMARTPHONE, server_device=CLOUD, radio="lte")
        result = executor.run(n_frames=150)
        duration = 150 / APP_ARCHETYPES["gaming"].fps
        avg_mc = result.energy.compute_joules / 0.0008 / duration
        avg_tx = result.energy.radio_joules and 40_000  # bytes/s scale
        life = battery_life_hours(SMARTPHONE, avg_mc, avg_tx, 5_000, radio="lte")
        assert 1.0 < life < 20.0


class TestEdgeToSessionChain:
    """Placement → assignment → a session against the chosen site."""

    def test_planned_datacenter_serves_its_users_in_time(self):
        topo = CityTopology.random_city(n_users=80, n_sites=16, seed=25)
        placement = solve_local_search(PlacementProblem(topo))
        assert placement.feasible
        assignment = assign_users(topo, placement.chosen)
        assert assignment.all_assigned

        # Take the worst-latency user and run a real session at that RTT.
        worst_rtt = 2 * max(
            lat for lat in assignment.latencies.values() if lat != float("inf")
        )
        scenario = ScenarioBuilder(seed=25).single_path(
            rtt=worst_rtt, down_bps=100e6, up_bps=40e6)
        report = OffloadSession(scenario).run(8.0)
        # Placement guaranteed the budget, so even the worst user's
        # reference frames arrive in time.
        assert report.per_class[2].in_time_ratio > 0.9

    def test_two_edge_sites_stay_consistent_while_serving(self):
        sim = Simulator(seed=26)
        net = Network(sim)
        for name in ("edge-a", "edge-b", "user"):
            net.add_host(name)
        net.add_duplex("edge-a", "edge-b", 1e9, delay=0.004)
        net.add_duplex("edge-a", "user", 100e6, 40e6, delay=0.003)
        net.build_routes()
        group = SyncGroup(net, ["edge-a", "edge-b"], update_bytes=400)
        for i in range(20):
            sim.schedule(i * 0.1, group.publish, "edge-a")
        sim.run(until=5.0)
        assert group.incomplete() == 0
        assert group.mean_lag() < 0.01


class TestDecisionToPlanChain:
    """Live estimates → engine → the equations agree with the pick."""

    def test_engine_choice_is_consistent_with_the_equations(self):
        engine = DecisionEngine(SMART_GLASSES, APP_ARCHETYPES["orientation"])
        for _ in range(20):
            engine.observe_rtt(0.012)
            engine.observe_uplink(WIFI_HOME.up_mean)
        chosen = engine.decide()
        ExecutionBudget(WIFI_HOME.up_mean, WIFI_HOME.up_mean * 3,
                        latency=0.006)
        # Whatever the engine picked, it must not be dominated: local is
        # infeasible here and the chosen forecast meets the deadline.
        assert not feasible_locally(SMART_GLASSES, APP_ARCHETYPES["orientation"])
        assert not isinstance(chosen, LocalOnly)
        assert engine.forecast(chosen).meets_deadline
