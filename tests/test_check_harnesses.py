"""Tests for the three checked harnesses and the seeded-violation one."""

import json

import pytest

from repro.check.choices import ScriptController
from repro.check.explorer import Budget, explore
from repro.check.harnesses import (
    DEFAULT_HARNESSES,
    HARNESSES,
    BreakerHarness,
    DegradationHarness,
    MptcpHandoverHarness,
    SeededViolationHarness,
)
from repro.check.invariants import replay_counterexample
from repro.simnet.faults import FaultPlan


def scripted_step(harness, world, picks):
    """Run one harness step with a fixed pick script."""
    world.chooser.controller = ScriptController(picks)
    harness.step(world)
    world.chooser.controller = None


class TestRegistry:
    def test_default_harnesses_exclude_selfcheck(self):
        assert "selfcheck" not in DEFAULT_HARNESSES
        assert set(DEFAULT_HARNESSES) <= set(HARNESSES)

    def test_every_invariant_label_points_at_protocol_docs(self):
        for name in DEFAULT_HARNESSES:
            docs = HARNESSES[name].invariant_docs
            assert docs, f"{name} documents no invariants"
            for label, pointer in docs.items():
                assert "PROTOCOL.md" in pointer, (name, label)


class TestBreakerHarness:
    def test_explores_clean(self):
        result = explore(BreakerHarness(), seed=0,
                         budget=Budget(max_states=300, max_depth=14,
                                       max_branch=48))
        assert result.ok
        # The quantized breaker graph is tiny; the budget exhausts it.
        assert result.states > 100
        assert result.unique_states > 10

    def test_default_run_outside_explorer_is_benign(self):
        harness = BreakerHarness()
        world = harness.make_world(seed=3)
        for _ in range(20):
            harness.step(world)      # no controller: engine-order picks
        assert harness.invariants(world) == []


class TestDegradationHarness:
    def test_explores_clean_on_small_budget(self):
        result = explore(DegradationHarness(), seed=0,
                         budget=Budget(max_states=60, max_depth=6))
        assert result.ok
        assert result.states == 60

    def test_fingerprint_stable_across_identical_worlds(self):
        harness = DegradationHarness()
        a, b = harness.make_world(0), harness.make_world(0)
        scripted_step(harness, a, [2, 2])
        scripted_step(harness, b, [2, 2])
        assert harness.fingerprint(a) == harness.fingerprint(b)


class TestMptcpHarness:
    def test_explores_clean_on_small_budget(self):
        result = explore(MptcpHandoverHarness(), seed=0,
                         budget=Budget(max_states=40, max_depth=4))
        assert result.ok

    def test_fault_actions_materialize_into_a_valid_plan(self):
        harness = MptcpHandoverHarness()
        world = harness.make_world(seed=0)
        scripted_step(harness, world, [3])   # wifi blackout
        scripted_step(harness, world, [4])   # lte blackout
        plan = harness.fault_plan(world)
        assert len(plan.events) == 2
        # The exported plan round-trips and passes validation, so the
        # counterexample artifact is replayable on its own.
        again = FaultPlan.from_dict(plan.to_dict())
        again.validate()
        assert [e.to_dict() for e in again.events] == \
            [e.to_dict() for e in plan.events]

    def test_finalize_declines_when_no_subflow_lives(self):
        harness = MptcpHandoverHarness()
        world = harness.make_world(seed=0)
        scripted_step(harness, world, [1])   # kill wifi
        scripted_step(harness, world, [2])   # kill lte
        assert harness.finalize(world) is None

    def test_finalize_drains_to_complete_delivery(self):
        harness = MptcpHandoverHarness()
        world = harness.make_world(seed=0)
        scripted_step(harness, world, [0])
        scripted_step(harness, world, [1])   # wifi dies mid-transfer
        assert harness.finalize(world) == []
        receiver = world.roots["receiver"]
        assert receiver.bytes_contiguous == world.roots["model"].total_bytes


class TestSeededViolation:
    def test_pipeline_catches_the_seeded_bug(self):
        harness = SeededViolationHarness()
        result = explore(harness, seed=0,
                         budget=Budget(max_states=500, max_depth=14,
                                       max_branch=48))
        assert not result.ok
        cex = result.violations[0]
        assert any("probe-budget" in v for v in cex.violations)

        replay = replay_counterexample(cex, SeededViolationHarness())
        assert replay.reproduced
        assert replay.state == cex.state
        assert replay.digest == cex.digest
        # The obs exports are valid and carry one span per step.
        chrome = replay.chrome_trace()
        step_spans = [e for e in chrome["traceEvents"]
                      if str(e.get("name", "")).startswith("step:")]
        assert len(step_spans) == len(cex.trace)
        qlog_records = [json.loads(line)
                        for line in replay.qlog().splitlines()]
        assert any(r["name"].startswith("check:") for r in qlog_records)

    def test_healthy_breaker_does_not_reproduce_the_counterexample(self):
        result = explore(SeededViolationHarness(), seed=0,
                         budget=Budget(max_states=500, max_depth=14,
                                       max_branch=48))
        cex = result.violations[0]
        cex_for_healthy = type(cex).from_dict(
            {**cex.to_dict(), "harness": "breaker"})
        replay = replay_counterexample(cex_for_healthy, BreakerHarness())
        assert not replay.reproduced

    def test_selfcheck_fails_under_pytest_too(self):
        # Guard against the seeded bug being "fixed": CI's pipeline
        # check is only meaningful while _LeakyBreaker actually leaks.
        harness = SeededViolationHarness()
        world = harness.make_world(seed=0)
        breaker = world.roots["breaker"]
        breaker.record_failure()
        breaker.record_failure()     # opens (threshold 2)
        world.sim.run(until=1.0)     # past the cooldown
        assert breaker.allow_request()   # half-open probe
        assert breaker.allow_request()   # BUG: second probe admitted
