"""Property test: fault injection never breaks simulator determinism.

The simulator's contract is that a seeded run is a pure function of its
inputs.  Faults mutate link and node state at scheduled times, which is
exactly the kind of side channel that could smuggle in nondeterminism
(dict ordering, object identity, wall-clock anything).  Hypothesis
generates arbitrary fault plans; every plan must produce bit-identical
traces across two independent executions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, ResilientOffloadExecutor
from repro.core.session import ScenarioBuilder
from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultEvent, FaultPlan, FaultInjector
from repro.simnet.flows import CBRSource
from repro.simnet.network import Network

LINKS = ["a<->b:down", "a<->b:up"]


def link_fault(kind, **kw):
    return st.builds(
        lambda start, duration, links: FaultEvent(
            kind=kind, start=start, duration=duration, links=tuple(links), **kw
        ),
        start=st.floats(0.0, 8.0),
        duration=st.one_of(st.none(), st.floats(0.1, 5.0)),
        links=st.lists(st.sampled_from(LINKS), min_size=1, max_size=2, unique=True),
    )


def node_fault():
    return st.builds(
        lambda start, duration, nodes: FaultEvent(
            kind="server-crash", start=start, duration=duration, nodes=tuple(nodes)
        ),
        start=st.floats(0.0, 8.0),
        duration=st.one_of(st.none(), st.floats(0.1, 5.0)),
        nodes=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=2, unique=True),
    )


fault_events = st.one_of(
    link_fault("blackout", loss=1.0),
    link_fault("loss-burst", loss=0.3),
    link_fault("bandwidth-crush", rate_factor=0.1),
    link_fault("delay-spike", extra_delay=0.05, extra_jitter=0.01),
    node_fault(),
)

def _dedupe(events):
    """Drop equal duplicates: ``FaultPlan.validate()`` rejects them."""
    out = []
    for event in events:
        if not any(event == kept for kept in out):
            out.append(event)
    return out


fault_plans = st.lists(fault_events, min_size=0, max_size=6).map(
    lambda events: FaultPlan(_dedupe(events))
)


def run_trace(plan, seed):
    """One seeded run under ``plan``; returns an exhaustive fingerprint."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("a")
    net.add_host("b")
    net.add_duplex("a", "b", 5e6, 5e6, delay=0.01, jitter=0.002)
    net.build_routes()
    got = []
    net["b"].default_handler = lambda p: got.append((sim.now, p.created_at, p.size))
    CBRSource(net["a"], "b", 9999, rate_bps=4e5, packet_size=700)
    injector = FaultInjector(net)
    injector.apply(plan)
    sim.run(until=12.0)
    link_state = [
        (link.name, link.loss, link.rate_bps, link.delay, link.jitter)
        for link in net.links
    ]
    return (
        tuple(got),
        tuple(link_state),
        net["b"].packets_dropped_down,
        injector.activated,
        injector.expired,
        tuple((t, e.kind, edge) for t, e, edge in injector.timeline),
    )


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans, seed=st.integers(0, 2**31 - 1))
def test_traffic_under_any_fault_plan_is_deterministic(plan, seed):
    assert run_trace(plan, seed) == run_trace(plan, seed)


def run_resilient_trace(plan, seed):
    scenario = ScenarioBuilder(seed=seed).edge_failover()
    targets = {
        "links": [l.name for l in scenario.net.links if "client" in l.name],
        "nodes": scenario.all_servers,
    }
    remapped = FaultPlan(_dedupe([
        FaultEvent(
            kind=e.kind, start=e.start, duration=e.duration,
            links=tuple(targets["links"]) if e.links else (),
            nodes=tuple(targets["nodes"][: max(1, len(e.nodes))]) if e.nodes else (),
            loss=e.loss, rate_factor=e.rate_factor,
            extra_delay=e.extra_delay, extra_jitter=e.extra_jitter,
        )
        for e in plan
    ]))
    FaultInjector(scenario.net).apply(remapped)
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers,
        APP_ARCHETYPES["orientation"], FullOffload(), SMARTPHONE,
    )
    result = executor.run(n_frames=90, settle=2.0)
    return (
        result.frames_sent,
        result.frames_completed,
        tuple(result.frame_latencies),
        tuple(result.degraded_latencies),
        tuple(executor.frame_log),
        tuple(executor.metrics.mode_timeline),
        executor.active_server,
    )


@settings(max_examples=6, deadline=None)
@given(plan=st.lists(fault_events, min_size=0, max_size=3).map(
    lambda events: FaultPlan(list(events))
), seed=st.integers(0, 1000))
def test_resilient_executor_under_any_fault_plan_is_deterministic(plan, seed):
    """The full failover machinery (heartbeats, backoff jitter, breaker)
    replays identically: its randomness all flows from child RNGs."""
    assert run_resilient_trace(plan, seed) == run_resilient_trace(plan, seed)
