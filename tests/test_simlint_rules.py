"""Per-rule fixture tests for simlint (repro.lint).

Each SIM rule gets at least one *bad* snippet that must fire and one
*good* snippet that must stay silent, all linted as a sim-domain path
so the domain gate does not mask a broken rule.  Domain and
suppression behaviour are covered at the end.
"""

from repro.lint import Domain, classify, lint_source

SIM_PATH = "src/repro/simnet/fake_module.py"
HARNESS_PATH = "src/repro/fleet/fake_module.py"


def codes(source: str, path: str = SIM_PATH) -> set:
    return {f.rule for f in lint_source(source, path)}


# ----------------------------------------------------------------------
# SIM001 — process-global / unseeded RNGs
# ----------------------------------------------------------------------
def test_sim001_flags_module_level_random_call():
    src = "import random\ndelay = random.uniform(0.0, 1.0)\n"
    assert "SIM001" in codes(src)


def test_sim001_flags_bare_random_instance():
    src = "import random\nrng = random.Random()\n"
    assert "SIM001" in codes(src)


def test_sim001_flags_from_import_draw():
    src = "from random import choice\npick = choice([1, 2, 3])\n"
    assert "SIM001" in codes(src)


def test_sim001_flags_system_random():
    src = "import random\nrng = random.SystemRandom(4)\n"
    assert "SIM001" in codes(src)


def test_sim001_flags_numpy_global_and_unseeded_default_rng():
    assert "SIM001" in codes(
        "import numpy as np\nx = np.random.rand(3)\n")
    assert "SIM001" in codes(
        "import numpy as np\nrng = np.random.default_rng()\n")


def test_sim001_allows_seeded_and_injected_rngs():
    good = (
        "import random\n"
        "def make(seed, tag, sim):\n"
        "    a = random.Random(f'{seed}:{tag}')\n"
        "    b = sim.child_rng(tag)\n"
        "    return a, b\n"
    )
    assert "SIM001" not in codes(good)


def test_sim001_allows_seeded_numpy_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng(7)\n"
    assert "SIM001" not in codes(src)


def test_sim001_ignores_random_attribute_on_local_rng():
    # rng.random() is a draw from an *instance*, not the global module.
    src = "def f(rng):\n    return rng.random()\n"
    assert "SIM001" not in codes(src)


# ----------------------------------------------------------------------
# SIM002 — wall-clock reads
# ----------------------------------------------------------------------
def test_sim002_flags_time_calls():
    assert "SIM002" in codes("import time\nt0 = time.monotonic()\n")
    assert "SIM002" in codes("import time\nt0 = time.time()\n")
    assert "SIM002" in codes(
        "from time import perf_counter\nt0 = perf_counter()\n")


def test_sim002_flags_datetime_now():
    src = "from datetime import datetime\nstamp = datetime.now()\n"
    assert "SIM002" in codes(src)


def test_sim002_allows_sim_clock():
    src = "def f(sim):\n    return sim.now + 0.5\n"
    assert "SIM002" not in codes(src)


def test_sim002_exempts_harness_paths():
    src = "import time\nt0 = time.monotonic()\n"
    assert "SIM002" not in codes(src, HARNESS_PATH)
    assert "SIM002" not in codes(src, "src/repro/cli.py")
    assert "SIM002" not in codes(src, "benchmarks/perf/run_benchmarks.py")


# ----------------------------------------------------------------------
# SIM003 — unstable child_rng tags
# ----------------------------------------------------------------------
def test_sim003_flags_id_hash_repr_tags():
    assert "SIM003" in codes(
        "def f(sim, obj):\n    return sim.child_rng(f'x:{id(obj)}')\n")
    assert "SIM003" in codes(
        "def f(sim, name):\n    return sim.child_rng(str(hash(name)))\n")
    assert "SIM003" in codes(
        "def f(sim, obj):\n    return sim.child_rng(repr(obj))\n")


def test_sim003_applies_in_harness_too():
    src = "def f(sim, obj):\n    return sim.child_rng(f'x:{id(obj)}')\n"
    assert "SIM003" in codes(src, HARNESS_PATH)


def test_sim003_allows_stable_tags():
    src = "def f(sim, name):\n    return sim.child_rng(f'link:{name}')\n"
    assert "SIM003" not in codes(src)


def test_sim003_catches_format_spec_and_format_args():
    assert "SIM003" in codes(
        "def f(sim, obj):\n"
        "    return sim.child_rng(f'x:{0:{id(obj)}}')\n")
    assert "SIM003" in codes(
        "def f(sim, obj):\n"
        "    return sim.child_rng('x:{}'.format(id(obj)))\n")


def test_sim003_catches_unstable_tag_via_local_name():
    src = (
        "def f(sim, obj):\n"
        "    tag = f'x:{id(obj)}'\n"
        "    return sim.child_rng(tag)\n"
    )
    findings = [f for f in lint_source(src, SIM_PATH)
                if f.rule == "SIM003"]
    assert len(findings) == 1
    assert "via 'tag'" in findings[0].message
    # A rebound name is not traced — could be stable by call time.
    rebound = (
        "def f(sim, obj):\n"
        "    tag = f'x:{id(obj)}'\n"
        "    tag = 'x:fixed'\n"
        "    return sim.child_rng(tag)\n"
    )
    assert "SIM003" not in codes(rebound)


# ----------------------------------------------------------------------
# SIM004 — set iteration order reaching ordered sinks
# ----------------------------------------------------------------------
def test_sim004_flags_schedule_over_set():
    src = (
        "def f(sim, nodes):\n"
        "    failed = set(nodes)\n"
        "    for n in failed:\n"
        "        sim.schedule(1.0, n)\n"
    )
    assert "SIM004" in codes(src)


def test_sim004_flags_list_comprehension_over_set_literal():
    src = "names = [n for n in {'a', 'b', 'c'}]\n"
    assert "SIM004" in codes(src)


def test_sim004_flags_list_materialization_of_set():
    src = "def f(xs):\n    s = {x for x in xs}\n    return list(s)\n"
    assert "SIM004" in codes(src)


def test_sim004_allows_sorted_iteration():
    src = (
        "def f(sim, nodes):\n"
        "    failed = set(nodes)\n"
        "    for n in sorted(failed):\n"
        "        sim.schedule(1.0, n)\n"
        "    return sorted(failed)\n"
    )
    assert "SIM004" not in codes(src)


def test_sim004_allows_commutative_folds_over_sets():
    # No order-sensitive sink in the body: union/sum accumulation.
    src = (
        "def f(groups):\n"
        "    seen = set()\n"
        "    chosen = set(groups)\n"
        "    for g in chosen:\n"
        "        seen |= {g}\n"
        "    return seen\n"
    )
    assert "SIM004" not in codes(src)


def test_sim004_ignores_dict_iteration():
    # Dict iteration is insertion-ordered (3.7+), hence deterministic.
    src = (
        "def f(sim, timers):\n"
        "    for name in timers:\n"
        "        sim.schedule(1.0, name)\n"
        "    for name in dict(timers).keys():\n"
        "        sim.schedule(2.0, name)\n"
    )
    assert "SIM004" not in codes(src)


# ----------------------------------------------------------------------
# SIM005 — float equality on sim time
# ----------------------------------------------------------------------
def test_sim005_flags_eq_and_ne_on_now():
    assert "SIM005" in codes(
        "def f(self):\n    return self.sim.now == 0.0\n")
    assert "SIM005" in codes(
        "def f(now, deadline):\n    return now != deadline\n")


def test_sim005_allows_boundary_comparisons():
    src = (
        "def f(self, until):\n"
        "    return self.sim.now <= 0.0 or self.sim.now >= until\n"
    )
    assert "SIM005" not in codes(src)


def test_sim005_ignores_non_time_names():
    src = "def f(count, target):\n    return count == target\n"
    assert "SIM005" not in codes(src)


# ----------------------------------------------------------------------
# SIM006 — mutable default arguments
# ----------------------------------------------------------------------
def test_sim006_flags_literal_and_call_defaults():
    assert "SIM006" in codes("def f(acc=[]):\n    return acc\n")
    assert "SIM006" in codes("def f(table={}):\n    return table\n")
    assert "SIM006" in codes("def f(seen=set()):\n    return seen\n")
    assert "SIM006" in codes(
        "def f(*, hooks=list()):\n    return hooks\n")


def test_sim006_allows_none_and_immutable_defaults():
    src = "def f(acc=None, n=3, name='x', pair=(1, 2)):\n    return acc\n"
    assert "SIM006" not in codes(src)


# ----------------------------------------------------------------------
# Domains, suppression, parse errors
# ----------------------------------------------------------------------
def test_domain_classification():
    assert classify("src/repro/simnet/link.py") is Domain.SIM
    assert classify("src/repro/fleet/workers.py") is Domain.HARNESS
    assert classify("src/repro/cli.py") is Domain.HARNESS
    assert classify("src/repro/lint/rules.py") is Domain.HARNESS
    assert classify("benchmarks/perf/workloads.py") is Domain.HARNESS
    assert classify("tests/test_engine.py") is Domain.HARNESS
    assert classify("src/repro/analysis/stats.py") is Domain.SIM


def test_line_suppression_hides_only_that_line():
    src = (
        "import time\n"
        "a = time.time()  # simlint: disable=SIM002 -- fixture\n"
        "b = time.time()\n"
    )
    findings = lint_source(src, SIM_PATH)
    assert [f.line for f in findings if f.rule == "SIM002"] == [3]


def test_blanket_line_suppression():
    src = "import time\na = time.time()  # simlint: disable\n"
    assert codes(src) == set()


def test_file_suppression_hides_rule_everywhere():
    src = (
        "# simlint: disable-file=SIM002\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
    )
    assert "SIM002" not in codes(src)


def test_suppression_comment_inside_string_is_inert():
    src = (
        "import time\n"
        "note = '# simlint: disable=SIM002'\n"
        "a = time.time()\n"
    )
    assert "SIM002" in codes(src)


def test_parse_error_reports_sim000():
    findings = lint_source("def broken(:\n", SIM_PATH)
    assert [f.rule for f in findings] == ["SIM000"]


def test_findings_are_sorted_and_stable():
    src = (
        "import time\n"
        "import random\n"
        "b = time.time()\n"
        "a = random.random()\n"
    )
    findings = lint_source(src, SIM_PATH)
    assert findings == sorted(findings)
    assert {f.rule for f in findings} == {"SIM001", "SIM002"}
