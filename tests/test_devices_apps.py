"""Tests for Table I devices and the MAR application model."""

import pytest

from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import (
    CLOUD,
    DESKTOP,
    LAPTOP,
    SMART_GLASSES,
    SMARTPHONE,
    TABLET,
    all_devices,
)


class TestDevices:
    def test_ordering_by_compute(self):
        devices = all_devices()
        rates = [d.compute_cycles_per_s for d in devices]
        assert rates == sorted(rates)

    def test_table1_qualitative_power(self):
        assert SMART_GLASSES.computing_power == "very low"
        assert SMARTPHONE.computing_power == "low"
        assert CLOUD.computing_power == "unlimited"

    def test_mobility_classes(self):
        assert SMART_GLASSES.mobile and SMARTPHONE.mobile
        assert not DESKTOP.mobile and not CLOUD.mobile

    def test_battery_presence(self):
        assert SMART_GLASSES.battery_hours == (2, 3)
        assert DESKTOP.battery_hours is None

    def test_network_access_matches_table1(self):
        assert SMART_GLASSES.network_access == ("bluetooth",)
        assert "cellular" in SMARTPHONE.network_access
        assert "ethernet" in LAPTOP.network_access

    def test_execution_time_scales_inverse(self):
        mc = 500.0
        assert SMART_GLASSES.execution_time(mc) > SMARTPHONE.execution_time(mc)
        assert CLOUD.execution_time(mc) < DESKTOP.execution_time(mc)

    def test_execution_time_units(self):
        # 1000 Mcycles on a 1 GHz-equivalent core would be 1 s.
        assert SMARTPHONE.execution_time(1600.0) == pytest.approx(1.0)

    def test_storage_bytes(self):
        assert TABLET.storage_bytes_max() == 256e9


class TestApplications:
    def test_four_archetypes_of_figure1(self):
        assert set(APP_ARCHETYPES) == {"orientation", "memorial", "gaming", "art"}

    def test_gaming_most_demanding_deadline(self):
        deadlines = {n: a.deadline for n, a in APP_ARCHETYPES.items()}
        assert deadlines["gaming"] == min(deadlines.values())

    def test_frame_budget(self):
        gaming = APP_ARCHETYPES["gaming"]
        assert gaming.frame_budget == pytest.approx(1 / 30.0)

    def test_uplink_load_exceeds_feature_load(self):
        for app in APP_ARCHETYPES.values():
            assert app.uplink_bps > app.feature_uplink_bps

    def test_gaming_uplink_close_to_mar_minimum(self):
        gaming = APP_ARCHETYPES["gaming"]
        # Full-frame offload of the gaming archetype needs ~8 Mb/s up.
        assert 4e6 < gaming.uplink_bps < 20e6

    def test_required_local_rate(self):
        app = APP_ARCHETYPES["gaming"]
        assert app.required_local_rate() == pytest.approx(
            app.megacycles_per_frame * 1e6 / app.deadline
        )

    def test_glasses_cannot_run_gaming_locally(self):
        app = APP_ARCHETYPES["gaming"]
        assert app.required_local_rate() > SMART_GLASSES.compute_cycles_per_s

    def test_cloud_can_run_everything(self):
        for app in APP_ARCHETYPES.values():
            assert app.required_local_rate() < CLOUD.compute_cycles_per_s
