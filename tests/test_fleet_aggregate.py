"""Property tests for the fleet's mergeable streaming statistics.

The core contract: ``merge(agg(A), agg(B))`` must equal ``agg(A + B)``
— exactly for counts, min/max and histogram bins; up to float
reassociation for the Welford mean/M2 accumulators.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import (
    Aggregate,
    FixedBinHistogram,
    StreamingMoments,
    approx_equal_moments,
)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
sample_lists = st.lists(finite, max_size=60)


class TestStreamingMoments:
    @given(sample_lists, sample_lists)
    @settings(max_examples=200)
    def test_merge_equals_onepass(self, a, b):
        merged = StreamingMoments().extend(a).merge(StreamingMoments().extend(b))
        onepass = StreamingMoments().extend(a + b)
        assert merged.count == onepass.count
        assert approx_equal_moments(merged, onepass, rel=1e-6, abs_tol=1e-6)

    @given(sample_lists)
    def test_merge_with_empty_is_identity(self, a):
        m = StreamingMoments().extend(a)
        before = m.to_dict()
        m.merge(StreamingMoments())
        assert m.to_dict() == before
        empty = StreamingMoments()
        empty.merge(StreamingMoments().extend(a))
        assert empty == StreamingMoments().extend(a)

    @given(sample_lists)
    def test_roundtrip(self, a):
        m = StreamingMoments().extend(a)
        assert StreamingMoments.from_dict(json.loads(json.dumps(m.to_dict()))) == m

    def test_mean_and_std(self):
        m = StreamingMoments().extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert m.mean == pytest.approx(5.0)
        assert m.std == pytest.approx(2.138, abs=0.01)
        assert m.minimum == 2.0 and m.maximum == 9.0

    def test_empty_stats(self):
        m = StreamingMoments()
        assert m.count == 0 and m.variance == 0.0
        assert "min" not in m.to_dict()


class TestFixedBinHistogram:
    @given(sample_lists, sample_lists)
    @settings(max_examples=200)
    def test_merge_equals_onepass_exactly(self, a, b):
        h1 = FixedBinHistogram(-1e6, 1e6, 50).extend(a)
        h2 = FixedBinHistogram(-1e6, 1e6, 50).extend(b)
        merged = h1.merge(h2)
        onepass = FixedBinHistogram(-1e6, 1e6, 50).extend(a + b)
        assert merged.to_dict() == onepass.to_dict()

    @given(sample_lists)
    def test_percentiles_monotone_and_in_range(self, a):
        h = FixedBinHistogram(-1e6, 1e6, 64).extend(a)
        if not a:
            assert math.isnan(h.p50)
            return
        assert h.lo <= h.p50 <= h.p95 <= h.p99 <= h.hi

    def test_percentile_accuracy_within_bin(self):
        h = FixedBinHistogram(0.0, 100.0, 100)
        h.extend(float(i) + 0.5 for i in range(100))
        assert h.p50 == pytest.approx(50.0, abs=h.bin_width)
        assert h.p95 == pytest.approx(95.0, abs=h.bin_width)
        assert h.p99 == pytest.approx(99.0, abs=h.bin_width)

    def test_out_of_range_buckets(self):
        h = FixedBinHistogram(0.0, 1.0, 10)
        h.extend([-5.0, 0.5, 99.0])
        assert h.underflow == 1 and h.overflow == 1 and h.total == 3
        assert h.percentile(0) == h.lo
        assert h.percentile(100) == h.hi

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError):
            FixedBinHistogram(0, 1, 10).merge(FixedBinHistogram(0, 2, 10))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FixedBinHistogram(1.0, 1.0, 10)
        with pytest.raises(ValueError):
            FixedBinHistogram(0.0, 1.0, 0)


def _fill(agg, latencies, tag_count):
    agg.count("sessions", tag_count)
    agg.moment("latency").extend(latencies)
    agg.histogram("latency", 0.0, 10.0, 20).extend(latencies)
    return agg


class TestAggregate:
    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                    max_size=30),
           st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                    max_size=30))
    @settings(max_examples=100)
    def test_merge_equals_onepass(self, a, b):
        merged = _fill(Aggregate(), a, 1).merge(_fill(Aggregate(), b, 1))
        onepass = _fill(Aggregate(), a + b, 2)
        assert merged.counts == onepass.counts
        assert merged.histograms["latency"] == onepass.histograms["latency"]
        assert approx_equal_moments(merged.moments["latency"],
                                    onepass.moments["latency"],
                                    rel=1e-6, abs_tol=1e-6)

    def test_merge_is_keywise_union(self):
        a = Aggregate()
        a.count("only_a")
        a.moment("shared").add(1.0)
        b = Aggregate()
        b.count("only_b", 2)
        b.moment("shared").add(3.0)
        b.histogram("h", 0, 1, 4).add(0.5)
        a.merge(b)
        assert a.counts == {"only_a": 1, "only_b": 2}
        assert a.moments["shared"].count == 2
        assert a.histograms["h"].total == 1

    def test_merge_does_not_alias_other_histogram(self):
        b = Aggregate()
        b.histogram("h", 0, 1, 4).add(0.5)
        a = Aggregate()
        a.merge(b)
        a.histograms["h"].add(0.25)
        assert b.histograms["h"].total == 1  # b unchanged

    def test_canonical_json_roundtrip_byte_stable(self):
        a = _fill(Aggregate(), [0.1, 2.5, 9.9], 3)
        text = a.to_json()
        assert Aggregate.from_json(text).to_json() == text
        assert " " not in text  # canonical: no whitespace


class TestOrderedReducer:
    """The streaming merge front: arrival order must never change bytes."""

    def _aggs(self, rng_lists):
        return [_fill(Aggregate(), lats, 1) for lats in rng_lists]

    @given(st.lists(st.lists(st.floats(min_value=0, max_value=10,
                                       allow_nan=False), max_size=10),
                    min_size=1, max_size=12),
           st.randoms(use_true_random=False))
    @settings(max_examples=150)
    def test_arrival_order_never_changes_merged_bytes(self, rng_lists, rnd):
        from repro.fleet.aggregate import OrderedReducer

        aggs = self._aggs(rng_lists)
        labels = [f"p{i % 3}" for i in range(len(aggs))]

        in_order = OrderedReducer(labels)
        for i, agg in enumerate(aggs):
            in_order.offer(i, Aggregate.from_json(agg.to_json()))

        order = list(range(len(aggs)))
        rnd.shuffle(order)
        shuffled = OrderedReducer(labels)
        for i in order:
            shuffled.offer(i, Aggregate.from_json(aggs[i].to_json()))

        assert shuffled.finish().to_json() == in_order.finish().to_json()
        assert list(shuffled.per_point) == list(in_order.per_point)
        for label in in_order.per_point:
            assert (shuffled.per_point[label].to_json()
                    == in_order.per_point[label].to_json())
        assert shuffled.pending == 0

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_skipped_indices_are_holes_not_merges(self, rnd):
        from repro.fleet.aggregate import OrderedReducer

        aggs = self._aggs([[1.0], [2.0], [3.0], [4.0]])
        skip = rnd.randrange(4)
        reducer = OrderedReducer(["p"] * 4)
        order = list(range(4))
        rnd.shuffle(order)
        for i in order:
            reducer.offer(i, None if i == skip else aggs[i])
        expected = Aggregate()
        for i in range(4):
            if i != skip:
                expected.merge(aggs[i])
        assert reducer.finish().to_json() == expected.to_json()

    def test_buffer_is_bounded_by_out_of_order_window(self):
        from repro.fleet.aggregate import OrderedReducer

        aggs = self._aggs([[float(i)] for i in range(6)])
        reducer = OrderedReducer(["p"] * 6)
        # worst case: index 0 arrives last -> everything buffers
        for i in (1, 2, 3, 4, 5):
            reducer.offer(i, aggs[i])
        assert reducer.pending == 5 and reducer.merged_through == 0
        reducer.offer(0, aggs[0])
        assert reducer.pending == 0 and reducer.merged_through == 6
        assert reducer.max_buffered == 6

    def test_double_offer_rejected(self):
        from repro.fleet.aggregate import OrderedReducer

        reducer = OrderedReducer(["p", "p"])
        reducer.offer(0, Aggregate())
        with pytest.raises(ValueError):
            reducer.offer(0, Aggregate())
        with pytest.raises(IndexError):
            reducer.offer(7, Aggregate())

    def test_finish_flags_missing_indices(self):
        from repro.fleet.aggregate import OrderedReducer

        reducer = OrderedReducer(["p", "p", "p"])
        reducer.offer(0, Aggregate())
        with pytest.raises(ValueError):
            reducer.finish()
