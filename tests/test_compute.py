"""Tests for the Section III execution-delay equations."""

import pytest

from repro.mar.application import APP_ARCHETYPES, MarApplication
from repro.mar.compute import (
    ExecutionBudget,
    feasible_locally,
    local_delay,
    local_with_db_delay,
    max_latency_for_deadline,
    offloading_delay,
    offloading_wins,
)
from repro.mar.devices import CLOUD, DESKTOP, SMART_GLASSES, SMARTPHONE

GAMING = APP_ARCHETYPES["gaming"]
ORIENTATION = APP_ARCHETYPES["orientation"]

GOOD_NET = ExecutionBudget(bandwidth_up_bps=50e6, bandwidth_down_bps=100e6, latency=0.005)
BAD_NET = ExecutionBudget(bandwidth_up_bps=1e6, bandwidth_down_bps=5e6, latency=0.100)


class TestLocal:
    def test_local_delay_is_cycles_over_rate(self):
        d = local_delay(SMARTPHONE, GAMING)
        assert d == pytest.approx(GAMING.megacycles_per_frame * 1e6
                                  / SMARTPHONE.compute_cycles_per_s)

    def test_glasses_infeasible_for_gaming(self):
        assert not feasible_locally(SMART_GLASSES, GAMING)

    def test_desktop_feasible_for_gaming(self):
        assert feasible_locally(DESKTOP, GAMING)

    def test_eq1_is_strict_inequality_on_deadline(self):
        app = MarApplication(
            name="edge-case", description="", fps=10, megacycles_per_frame=160.0,
            db_requests_per_s=0, object_bytes=0, deadline=0.1,
            frame_upload_bytes=1, feature_upload_bytes=1, result_bytes=1,
        )
        # 160 Mc on 1.6 GHz = exactly 0.1 s -> NOT feasible (strict <).
        assert local_delay(SMARTPHONE, app) == pytest.approx(0.1)
        assert not feasible_locally(SMARTPHONE, app)


class TestLocalWithDb:
    def test_full_cache_equals_pure_local(self):
        with_db = local_with_db_delay(SMARTPHONE, ORIENTATION, GOOD_NET, cache_hit_ratio=1.0)
        assert with_db == pytest.approx(local_delay(SMARTPHONE, ORIENTATION))

    def test_cache_misses_add_fetch_time(self):
        cold = local_with_db_delay(SMARTPHONE, ORIENTATION, GOOD_NET, cache_hit_ratio=0.0)
        warm = local_with_db_delay(SMARTPHONE, ORIENTATION, GOOD_NET, cache_hit_ratio=0.9)
        assert cold > warm > local_delay(SMARTPHONE, ORIENTATION)

    def test_monotone_in_hit_ratio(self):
        delays = [
            local_with_db_delay(SMARTPHONE, ORIENTATION, GOOD_NET, cache_hit_ratio=x)
            for x in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert delays == sorted(delays, reverse=True)

    def test_invalid_hit_ratio(self):
        with pytest.raises(ValueError):
            local_with_db_delay(SMARTPHONE, ORIENTATION, GOOD_NET, cache_hit_ratio=1.5)


class TestOffloading:
    def test_offloading_wins_on_weak_device_good_net(self):
        assert offloading_wins(SMART_GLASSES, CLOUD, GAMING, GOOD_NET)

    def test_offloading_loses_on_strong_device_bad_net(self):
        assert not offloading_wins(DESKTOP, CLOUD, GAMING, BAD_NET)

    def test_high_latency_blows_deadline(self):
        delay = offloading_delay(SMARTPHONE, CLOUD, GAMING, BAD_NET)
        assert delay > GAMING.deadline

    def test_local_fraction_zero_means_full_remote(self):
        d = offloading_delay(SMART_GLASSES, CLOUD, GAMING, GOOD_NET, local_fraction=0.0)
        # Remote compute tiny, dominated by network.
        assert d < local_delay(SMART_GLASSES, GAMING)

    def test_local_fraction_one_still_pays_network(self):
        d_split = offloading_delay(SMARTPHONE, CLOUD, GAMING, GOOD_NET, local_fraction=1.0)
        assert d_split > local_delay(SMARTPHONE, GAMING)

    def test_feature_upload_smaller_than_frame_upload(self):
        frame = offloading_delay(SMART_GLASSES, CLOUD, GAMING,
                                 ExecutionBudget(2e6, 10e6, 0.01),
                                 local_fraction=0.0, use_features=False)
        features = offloading_delay(SMART_GLASSES, CLOUD, GAMING,
                                    ExecutionBudget(2e6, 10e6, 0.01),
                                    local_fraction=0.0, use_features=True)
        assert features < frame

    def test_data_not_colocated_pays_interlink(self):
        colocated = offloading_delay(SMARTPHONE, CLOUD, GAMING, GOOD_NET,
                                     data_colocated=True)
        split = offloading_delay(SMARTPHONE, CLOUD, GAMING, GOOD_NET,
                                 data_colocated=False, cache_hit_ratio=0.0)
        assert split > colocated

    def test_invalid_local_fraction(self):
        with pytest.raises(ValueError):
            offloading_delay(SMARTPHONE, CLOUD, GAMING, GOOD_NET, local_fraction=2.0)


class TestLatencyBudget:
    def test_max_latency_positive_for_feasible_config(self):
        budget = max_latency_for_deadline(SMART_GLASSES, CLOUD, ORIENTATION,
                                          bandwidth_up_bps=20e6,
                                          bandwidth_down_bps=50e6)
        assert budget > 0

    def test_round_trip_at_budget_meets_deadline(self):
        l_max = max_latency_for_deadline(SMART_GLASSES, CLOUD, ORIENTATION,
                                         bandwidth_up_bps=20e6,
                                         bandwidth_down_bps=50e6)
        at_budget = ExecutionBudget(20e6, 50e6, latency=l_max)
        assert offloading_delay(SMART_GLASSES, CLOUD, ORIENTATION, at_budget) \
            == pytest.approx(ORIENTATION.deadline)

    def test_negative_budget_for_impossible_config(self):
        # Glasses can't even run the local fraction in time on 2G-ish net.
        budget = max_latency_for_deadline(SMART_GLASSES, CLOUD, GAMING,
                                          bandwidth_up_bps=100e3,
                                          bandwidth_down_bps=500e3)
        assert budget < 0
