"""Tests for edge-datacenter placement (Section VI-F)."""

import math

import pytest

from repro.edge.assignment import assign_users, failover_order
from repro.edge.placement import (
    PlacementProblem,
    solve_exact,
    solve_greedy,
    solve_local_search,
    solve_lp_rounding,
)
from repro.edge.topology import CandidateSite, CityTopology, UserSite


def small_city(seed=1, **kw):
    defaults = dict(n_users=60, n_sites=16, seed=seed)
    defaults.update(kw)
    return CityTopology.random_city(**defaults)


class TestTopology:
    def test_latency_has_access_floor(self):
        topo = small_city()
        u, s = topo.users[0], topo.sites[0]
        assert topo.latency(u, s) >= CityTopology.ACCESS_LATENCY

    def test_latency_matrix_shape(self):
        topo = small_city()
        assert topo.latency_matrix().shape == (60, 16)

    def test_coverage_shrinks_with_budget(self):
        loose = small_city(latency_budget=0.010)
        tight = small_city(latency_budget=0.004)
        loose_cov = sum(len(s) for s in loose.coverage_sets())
        tight_cov = sum(len(s) for s in tight.coverage_sets())
        assert tight_cov < loose_cov

    def test_default_city_feasible(self):
        assert small_city().feasible()

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            CityTopology([], [CandidateSite("s", 0, 0)])


class TestSolvers:
    def test_greedy_produces_cover(self):
        topo = small_city()
        problem = PlacementProblem(topo)
        result = solve_greedy(problem)
        assert result.feasible
        assert problem.is_cover(result.chosen)

    def test_local_search_never_worse_than_greedy(self):
        for seed in range(5):
            problem = PlacementProblem(small_city(seed=seed))
            g = solve_greedy(problem)
            ls = solve_local_search(problem)
            assert ls.feasible
            assert ls.n_datacenters <= g.n_datacenters

    def test_lp_lower_bound_respected(self):
        for seed in range(4):
            problem = PlacementProblem(small_city(seed=seed))
            lp = solve_lp_rounding(problem)
            ls = solve_local_search(problem)
            assert lp.feasible
            assert lp.lower_bound <= ls.n_datacenters + 1e-9
            assert lp.n_datacenters >= math.ceil(lp.lower_bound - 1e-9)

    def test_exact_optimal_on_tiny_instance(self):
        topo = small_city(n_users=25, n_sites=9)
        problem = PlacementProblem(topo)
        exact = solve_exact(problem)
        assert exact.feasible
        for solver in (solve_greedy, solve_local_search, solve_lp_rounding):
            assert solver(problem).n_datacenters >= exact.n_datacenters

    def test_exact_refuses_large_instances(self):
        problem = PlacementProblem(small_city(n_sites=25))
        with pytest.raises(ValueError):
            solve_exact(problem)

    def test_infeasible_instance_reported(self):
        users = [UserSite("u", 0, 0, latency_budget=0.0001)]
        sites = [CandidateSite("s", 100, 100)]
        problem = PlacementProblem(CityTopology(users, sites))
        assert not solve_greedy(problem).feasible
        assert not solve_local_search(problem).feasible

    def test_relaxed_deadline_needs_fewer_dcs(self):
        tight = PlacementProblem(small_city(latency_budget=0.0045))
        loose = PlacementProblem(small_city(latency_budget=0.012))
        if not tight.topology.feasible():
            pytest.skip("tight instance infeasible for this seed")
        n_tight = solve_local_search(tight).n_datacenters
        n_loose = solve_local_search(loose).n_datacenters
        assert n_loose <= n_tight

    def test_site_names(self):
        problem = PlacementProblem(small_city())
        result = solve_greedy(problem)
        names = result.site_names(problem)
        assert len(names) == result.n_datacenters
        assert all(n.startswith("dc") for n in names)


class TestAssignment:
    def test_all_users_assigned_within_budget(self):
        topo = small_city()
        result_placement = solve_local_search(PlacementProblem(topo))
        assignment = assign_users(topo, result_placement.chosen)
        assert assignment.all_assigned
        matrix = topo.latency_matrix()
        for ui, si in assignment.mapping.items():
            assert matrix[ui, si] <= topo.users[ui].latency_budget

    def test_users_prefer_nearest_opened_site(self):
        users = [UserSite("u", 0, 0, latency_budget=1.0)]
        sites = [CandidateSite("near", 1, 0), CandidateSite("far", 10, 0)]
        topo = CityTopology(users, sites)
        assignment = assign_users(topo, {0, 1})
        assert assignment.mapping[0] == 0

    def test_capacity_spills_to_second_site(self):
        users = [UserSite(f"u{i}", 0, 0, latency_budget=1.0) for i in range(3)]
        sites = [CandidateSite("a", 0, 0, capacity=2.0), CandidateSite("b", 1, 0, capacity=9.0)]
        topo = CityTopology(users, sites)
        assignment = assign_users(topo, {0, 1})
        assert assignment.all_assigned
        assert assignment.load[0] == 2.0
        assert assignment.load[1] == 1.0

    def test_unassignable_user_reported(self):
        users = [UserSite("u", 0, 0, latency_budget=0.0001)]
        sites = [CandidateSite("s", 50, 50)]
        topo = CityTopology(users, sites)
        assignment = assign_users(topo, {0})
        assert assignment.unassigned == [0]
        assert not assignment.all_assigned

    def test_mean_latency_finite_when_assigned(self):
        topo = small_city()
        chosen = solve_greedy(PlacementProblem(topo)).chosen
        assignment = assign_users(topo, chosen)
        assert assignment.mean_latency() < 0.01


class TestFailoverOrder:
    """Ranked backup candidates for a user whose site crashed (§VI-B
    resilience applied to §VI-E placement)."""

    def make(self):
        users = [UserSite("u", 0, 0, latency_budget=0.004, demand=1.0)]
        sites = [
            CandidateSite("primary", 0.1, 0, capacity=5.0),
            CandidateSite("near", 0.5, 0, capacity=5.0),
            CandidateSite("far", 2.0, 0, capacity=5.0),
            CandidateSite("over-budget", 40.0, 0, capacity=5.0),
        ]
        topo = CityTopology(users, sites)
        assignment = assign_users(topo, {0, 1, 2, 3})
        return topo, assignment

    def test_excludes_primary_and_ranks_by_latency(self):
        topo, assignment = self.make()
        order = failover_order(topo, {0, 1, 2, 3}, 0, assignment)
        assert assignment.mapping[0] == 0              # attached to primary
        assert 0 not in order
        assert order[:2] == [1, 2]                     # nearest backups first

    def test_over_budget_sites_rank_last_but_appear(self):
        topo, assignment = self.make()
        order = failover_order(topo, {0, 1, 2, 3}, 0, assignment)
        assert order[-1] == 3                          # degraded beats nothing

    def test_full_sites_are_skipped(self):
        users = [UserSite("u0", 0, 0, latency_budget=1.0, demand=1.0),
                 UserSite("u1", 1, 0, latency_budget=1.0, demand=1.0)]
        sites = [CandidateSite("a", 0, 0, capacity=1.0),
                 CandidateSite("b", 1, 0, capacity=1.0)]
        topo = CityTopology(users, sites)
        assignment = assign_users(topo, {0, 1})
        # Both sites full: u0's only backup (b) has no spare capacity.
        assert failover_order(topo, {0, 1}, 0, assignment) == []

    def test_k_truncates(self):
        topo, assignment = self.make()
        assert len(failover_order(topo, {0, 1, 2, 3}, 0, assignment, k=1)) == 1

    def test_without_assignment_all_opened_sites_rank(self):
        topo, _ = self.make()
        order = failover_order(topo, {1, 2}, 0)
        assert order == [1, 2]
