"""Failure-edge tests for the reliability layer (Section VI-C).

Covers the corners the happy-path suite skips: ARQ retry exhaustion
under total loss, FEC groups where the parity cannot help, and NACK
storms during a loss burst.
"""

import pytest

from repro.core.reliability import ArqBuffer, FecDecoder, FecEncoder
from repro.core.traffic import Message, Priority, StreamSpec, TrafficClass


def make_spec(traffic_class=TrafficClass.LOSS_RECOVERY, deadline=0.075):
    return StreamSpec(
        stream_id=1, name="test", traffic_class=traffic_class,
        priority=Priority.HIGHEST, nominal_rate_bps=1e6, deadline=deadline,
    )


def make_message(seq, created_at=0.0, deadline=10.0, size=1000):
    return Message(stream_id=1, seq=seq, size=size,
                   created_at=created_at, deadline=deadline)


class TestArqRetryExhaustion:
    def test_100_percent_loss_exhausts_retries_then_abandons(self):
        """Under total loss every retransmit is NACKed again; the buffer
        must give up after max_retries, not retry forever."""
        buf = ArqBuffer(make_spec(), max_retries=3)
        buf.store(make_message(0, deadline=100.0))   # deadline never binds

        sent = 0
        for round_ in range(10):
            out = buf.nack([0], now=0.1 * round_, rtt_estimate=0.02)
            sent += len(out)
        assert sent == 3                              # exactly max_retries
        assert buf.retransmissions == 3
        assert buf.abandoned == 1
        assert len(buf) == 0                          # fully drained
        # Further NACKs for the abandoned seq are no-ops.
        assert buf.nack([0], now=2.0, rtt_estimate=0.02) == []

    def test_critical_class_persists_through_long_outage(self):
        """CRITICAL 'should never be discarded': no deadline expiry, and
        the retry budget is floored at 16 even if configured lower."""
        buf = ArqBuffer(make_spec(TrafficClass.CRITICAL), max_retries=3)
        buf.store(make_message(0, deadline=0.075))
        # Hours past the nominal deadline, it still retransmits.
        out = buf.nack([0], now=3600.0, rtt_estimate=0.5)
        assert len(out) == 1 and out[0].is_retransmit
        assert buf.expire(now=7200.0) == 0
        assert len(buf) == 1
        # ... but not unboundedly: the 16-retry floor eventually ends it.
        for i in range(30):
            buf.nack([0], now=3600.0 + i, rtt_estimate=0.5)
        assert buf.retransmissions == 16
        assert buf.abandoned == 1

    def test_deadline_beats_retry_budget(self):
        """A NACK arriving too late to land before the deadline abandons
        immediately, even with retries left."""
        buf = ArqBuffer(make_spec(), max_retries=3)
        buf.store(make_message(0, created_at=0.0, deadline=0.075))
        # now + rtt/2 > created + deadline -> dead on arrival.
        out = buf.nack([0], now=0.08, rtt_estimate=0.02)
        assert out == []
        assert buf.abandoned == 1 and buf.retransmissions == 0

    def test_expire_sweeps_only_dead_messages(self):
        buf = ArqBuffer(make_spec())
        buf.store(make_message(0, created_at=0.0, deadline=0.05))
        buf.store(make_message(1, created_at=0.0, deadline=5.0))
        assert buf.expire(now=1.0) == 1
        assert len(buf) == 1
        assert buf.nack([1], now=1.0, rtt_estimate=0.01)


class TestFecWholeGroupLoss:
    def test_entire_group_lost_is_unrecoverable(self):
        """Parity XOR can reconstruct exactly one loss; when the whole
        group vanished, parity alone must recover nothing."""
        dec = FecDecoder(group_size=4)
        assert dec.on_parity(0) == []                 # no data arrived at all
        assert dec.recovered == []

    def test_two_losses_in_group_unrecoverable(self):
        dec = FecDecoder(group_size=4)
        dec.on_data(0)
        dec.on_data(1)                                # 2 and 3 lost
        assert dec.on_parity(0) == []
        assert dec.recovered == []

    def test_single_loss_recovers_and_does_not_double_count(self):
        dec = FecDecoder(group_size=4)
        for seq in (0, 1, 3):
            dec.on_data(seq)
        assert dec.on_parity(0) == [2]
        # Replayed parity must not recover the same seq again.
        assert dec.on_parity(0) == []
        assert dec.recovered == [2]

    def test_parity_lost_data_complete_is_fine(self):
        dec = FecDecoder(group_size=4)
        for seq in range(4):
            dec.on_data(seq)
        # Parity never arrives; nothing to recover, nothing recovered.
        assert dec.recovered == []

    def test_encoder_emits_parity_every_group(self):
        enc = FecEncoder(group_size=4)
        parities = [p for i in range(12)
                    if (p := enc.push(make_message(i))) is not None]
        assert len(parities) == 3
        assert all(p.fec_parity and p.seq < 0 for p in parities)
        assert enc.overhead_ratio == pytest.approx(1 / 4)


class TestNackStorm:
    def test_storm_of_duplicate_nacks_is_rate_bounded(self):
        """A receiver re-NACKing the same hole every feedback interval
        during a loss burst must not amplify traffic beyond the retry
        budget."""
        buf = ArqBuffer(make_spec(), max_retries=3)
        for seq in range(50):
            buf.store(make_message(seq, deadline=100.0))
        total_retx = 0
        for round_ in range(40):                      # 40 feedback rounds
            out = buf.nack(list(range(50)), now=0.01 * round_, rtt_estimate=0.005)
            total_retx += len(out)
        # Bounded: 50 messages x 3 retries, not 50 x 40.
        assert total_retx == 150
        assert buf.retransmissions == 150
        assert buf.abandoned == 50
        assert len(buf) == 0

    def test_nacks_for_unknown_seqs_are_ignored(self):
        buf = ArqBuffer(make_spec())
        buf.store(make_message(5, deadline=100.0))
        out = buf.nack([1, 2, 3, 4, 99, 5], now=0.0, rtt_estimate=0.01)
        assert [m.seq for m in out] == [5]

    def test_ack_window_during_storm_clears_survivors(self):
        """Mixed signal mid-burst: highest=9 with NACKs {3,7} means the
        rest landed — only the holes stay buffered."""
        buf = ArqBuffer(make_spec())
        for seq in range(10):
            buf.store(make_message(seq, deadline=100.0))
        buf.ack_window(highest=9, nacks=[3, 7])
        assert len(buf) == 2
        out = buf.nack([3, 7], now=0.0, rtt_estimate=0.01)
        assert sorted(m.seq for m in out) == [3, 7]
