"""Targeted tests for corners the main suites touch only in passing."""


from repro.simnet.engine import Simulator
from repro.simnet.flows import CBRSource, PacketSink
from repro.simnet.link import VariableRateLink
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.quic import QuicConnection
from repro.wireless.dcf import DcfChannel, DcfStation


class TestQuicBlackout:
    def test_pto_carries_transfer_through_blackout(self):
        sim = Simulator(seed=31)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_duplex("b", "a", 20e6, 10e6, delay=0.01,
                       queue_up=DropTailQueue(200))
        net.build_routes()
        server = QuicConnection(net["b"], 443, "a", 5000)
        client = QuicConnection(net["a"], 5000, "b", 443)
        client.connect(resumed=True)
        client.send_stream(1, 200_000)
        links = net.path_links("a", "b") + net.path_links("b", "a")

        def black(on):
            for link in links:
                link.loss = 0.999999 if on else 0.0

        sim.schedule(0.05, black, True)
        sim.schedule(1.5, black, False)
        sim.run(until=60.0)
        assert server.stream_delivered(1) == 200_000
        assert client.retransmits > 0

    def test_cwnd_collapses_on_pto(self):
        sim = Simulator(seed=32)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_duplex("b", "a", 20e6, 10e6, delay=0.01)
        net.build_routes()
        QuicConnection(net["b"], 443, "a", 5000)
        client = QuicConnection(net["a"], 5000, "b", 443)
        client.connect(resumed=True)
        client.send_stream(1, 100_000)
        sim.run(until=2.0)
        cwnd_before = client.cwnd
        # Silence the network entirely and let the PTO fire.
        for link in net.path_links("a", "b") + net.path_links("b", "a"):
            link.loss = 0.999999
        client.send_stream(1, 50_000)
        sim.run(until=4.0)
        assert client.cwnd < cwnd_before

    def test_handshake_timeout_is_not_fatal(self):
        # An initial toward a dead server: connection just never opens.
        sim = Simulator(seed=33)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_duplex("b", "a", 1e6, 1e6, delay=0.01, loss=0.999999)
        net.build_routes()
        QuicConnection(net["b"], 443, "a", 5000)
        client = QuicConnection(net["a"], 5000, "b", 443)
        client.connect()
        sim.run(until=5.0)
        assert not client.established


class TestDcfDynamics:
    def test_rate_change_mid_run(self):
        sim = Simulator(seed=34)
        channel = DcfChannel(sim)
        a = channel.add_station(DcfStation("a", 54e6))
        channel.add_station(DcfStation("b", 54e6))
        sim.run(until=3.0)
        channel.set_rate("b", 6e6)
        sim.run(until=6.0)
        assert a.throughput_bps(3.5, 6) < a.throughput_bps(0.5, 3) * 0.6

    def test_collision_counters_consistent(self):
        sim = Simulator(seed=35)
        channel = DcfChannel(sim)
        stations = [channel.add_station(DcfStation(f"s{i}", 54e6))
                    for i in range(6)]
        sim.run(until=3.0)
        assert channel.total_successes == sum(s.frames_sent for s in stations)
        assert channel.total_collisions > 0
        assert 0.0 < channel.collision_probability < 1.0


class TestVariableRateUnderLoad:
    def test_cbr_through_varying_link_delivers_most(self):
        sim = Simulator(seed=36)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = VariableRateLink(
            sim, net["a"], net["b"], mean_rate_bps=8e6, min_rate_bps=2e6,
            max_rate_bps=20e6, sigma=0.5, update_interval=0.25,
            queue=DropTailQueue(500), delay=0.005,
        )
        net.links.append(link)
        net.build_routes()
        sink = PacketSink(net["b"], 80)
        CBRSource(net["a"], "b", 80, rate_bps=1.5e6, packet_size=1000)
        sim.run(until=20.0)
        expected = 1.5e6 * 20 / (1000 * 8)
        # Offered far below the minimum rate: nearly lossless despite
        # the wild rate swings.
        assert sink.stats.packets_total >= expected * 0.98
        # Delay stays bounded by the worst serialization backlog.
        assert sink.stats.delay_percentile(99) < 1.0
