"""Tests for the command-line interface."""

import pytest

from repro.cli import DEMOS, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "anomaly" in out


def test_demo_anomaly(capsys):
    assert main(["demo", "anomaly"]) == 0
    out = capsys.readouterr().out
    assert "performance anomaly" in out
    assert "Mb/s" in out


def test_demo_quickstart(capsys):
    assert main(["demo", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "MOS" in out
    assert "connection-metadata" in out


def test_demo_table2(capsys):
    assert main(["demo", "table2"]) == 0
    out = capsys.readouterr().out
    assert "cloud server / LTE" in out


def test_unknown_demo(capsys):
    assert main(["demo", "nope"]) == 2
    assert "unknown demo" in capsys.readouterr().err


def test_show_missing_report(capsys):
    assert main(["show", "ZZZ_does_not_exist"]) == 2


def test_every_registered_demo_returns_text():
    for name, fn in DEMOS.items():
        text = fn()
        assert isinstance(text, str) and len(text) > 50, name


# ----------------------------------------------------------------------
# fleet verb + fleet-aware list/show
# ----------------------------------------------------------------------
def test_list_includes_fleet_campaigns(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fleet campaigns" in out
    assert "cell256" in out and "smoke" in out


def test_show_finds_fleet_reports(tmp_path, monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    (tmp_path / "fleet").mkdir()
    (tmp_path / "fleet" / "mycampaign.txt").write_text("fleet report body")
    assert main(["show", "mycampaign"]) == 0
    out = capsys.readouterr().out
    assert "fleet report body" in out


def test_fleet_runs_and_saves_report(tmp_path, monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    rc = main(["fleet", "smoke", "--seeds", "1", "-w", "1",
               "--no-cache", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fleet campaign 'smoke'" in out
    assert (tmp_path / "fleet" / "smoke.txt").exists()


def test_fleet_replay_prints_shard_aggregate(capsys):
    import json

    from repro.fleet import demo_campaigns

    tag = demo_campaigns()["smoke"].shards()[0].tag
    assert main(["fleet", "smoke", "--replay", tag]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["sessions"] == 1


def test_fleet_unknown_campaign(capsys):
    assert main(["fleet", "nope"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_fleet_expect_quarantine_fails_on_clean_run(tmp_path, monkeypatch,
                                                    capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    rc = main(["fleet", "smoke", "--seeds", "1", "-w", "1", "--no-cache",
               "--quiet", "--expect-quarantine"])
    assert rc == 1
