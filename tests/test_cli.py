"""Tests for the command-line interface."""


from repro.cli import DEMOS, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "anomaly" in out


def test_demo_anomaly(capsys):
    assert main(["demo", "anomaly"]) == 0
    out = capsys.readouterr().out
    assert "performance anomaly" in out
    assert "Mb/s" in out


def test_demo_quickstart(capsys):
    assert main(["demo", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "MOS" in out
    assert "connection-metadata" in out


def test_demo_table2(capsys):
    assert main(["demo", "table2"]) == 0
    out = capsys.readouterr().out
    assert "cloud server / LTE" in out


def test_unknown_demo(capsys):
    assert main(["demo", "nope"]) == 2
    assert "unknown demo" in capsys.readouterr().err


def test_show_missing_report(capsys):
    assert main(["show", "ZZZ_does_not_exist"]) == 2


def test_every_registered_demo_returns_text():
    for name, fn in DEMOS.items():
        text = fn()
        assert isinstance(text, str) and len(text) > 50, name


# ----------------------------------------------------------------------
# fleet verb + fleet-aware list/show
# ----------------------------------------------------------------------
def test_list_includes_fleet_campaigns(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fleet campaigns" in out
    assert "cell256" in out and "smoke" in out


def test_show_finds_fleet_reports(tmp_path, monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    (tmp_path / "fleet").mkdir()
    (tmp_path / "fleet" / "mycampaign.txt").write_text("fleet report body")
    assert main(["show", "mycampaign"]) == 0
    out = capsys.readouterr().out
    assert "fleet report body" in out


def test_fleet_runs_and_saves_report(tmp_path, monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    rc = main(["fleet", "smoke", "--seeds", "1", "-w", "1",
               "--no-cache", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fleet campaign 'smoke'" in out
    assert (tmp_path / "fleet" / "smoke.txt").exists()


def test_fleet_replay_prints_shard_aggregate(capsys):
    import json

    from repro.fleet import demo_campaigns

    tag = demo_campaigns()["smoke"].shards()[0].tag
    assert main(["fleet", "smoke", "--replay", tag]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["sessions"] == 1


def test_fleet_unknown_campaign(capsys):
    assert main(["fleet", "nope"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_fleet_expect_quarantine_fails_on_clean_run(tmp_path, monkeypatch,
                                                    capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
    rc = main(["fleet", "smoke", "--seeds", "1", "-w", "1", "--no-cache",
               "--quiet", "--expect-quarantine"])
    assert rc == 1


# ----------------------------------------------------------------------
# lint verb (simlint)
# ----------------------------------------------------------------------
def test_lint_clean_file_exits_zero(tmp_path, capsys):
    good = tmp_path / "src" / "repro" / "simnet" / "mod.py"
    good.parent.mkdir(parents=True)
    good.write_text("def f(sim):\n    return sim.now\n")
    assert main(["lint", str(good)]) == 0
    assert capsys.readouterr().out == ""


def test_lint_violation_exits_nonzero_with_location(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "simnet" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SIM002" in out and "mod.py:2" in out


def test_lint_json_format(tmp_path, capsys):
    import json

    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "SIM001"


def test_lint_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(bad), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    # A fresh violation is not masked by the baseline.
    bad.write_text("import random\nx = random.random()\ny = random.choice([1])\n")
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 1


def test_lint_explain_and_list_rules(capsys):
    assert main(["lint", "--explain", "SIM001"]) == 0
    out = capsys.readouterr().out
    assert "child_rng" in out and "Bad:" in out
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006"):
        assert code in out


def test_lint_unknown_rule_is_usage_error(capsys):
    assert main(["lint", "--explain", "SIM999"]) == 2
    assert main(["lint", "--select", "NOPE", "src"]) == 2


def test_lint_shipped_tree_is_clean():
    import pathlib

    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    assert main(["lint", str(src)]) == 0


# ----------------------------------------------------------------------
# selftest verb (determinism smoke)
# ----------------------------------------------------------------------
def test_selftest_determinism_passes(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out
    assert out.count("fingerprint") == 2


def test_selftest_unknown_campaign(capsys):
    assert main(["selftest", "nope"]) == 2
    assert "unknown campaign" in capsys.readouterr().err
