"""Tests for the command-line interface."""

import pytest

from repro.cli import DEMOS, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "anomaly" in out


def test_demo_anomaly(capsys):
    assert main(["demo", "anomaly"]) == 0
    out = capsys.readouterr().out
    assert "performance anomaly" in out
    assert "Mb/s" in out


def test_demo_quickstart(capsys):
    assert main(["demo", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "MOS" in out
    assert "connection-metadata" in out


def test_demo_table2(capsys):
    assert main(["demo", "table2"]) == 0
    out = capsys.readouterr().out
    assert "cloud server / LTE" in out


def test_unknown_demo(capsys):
    assert main(["demo", "nope"]) == 2
    assert "unknown demo" in capsys.readouterr().err


def test_show_missing_report(capsys):
    assert main(["show", "ZZZ_does_not_exist"]) == 2


def test_every_registered_demo_returns_text():
    for name, fn in DEMOS.items():
        text = fn()
        assert isinstance(text, str) and len(text) > 50, name
