"""Tests for pose decomposition, network monitors, and 5G slicing."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import CBRSource, PacketSink
from repro.simnet.monitor import LinkMonitor, QueueMonitor
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.vision.pose import (
    decompose_homography,
    default_intrinsics,
    homography_from_pose,
    rotation_about,
)
from repro.wireless.slicing import Slice, SlicedCell


class TestPose:
    K = default_intrinsics()

    def make_pose(self, yaw=0.1, pitch=-0.05, roll=0.03, t=(0.2, -0.1, 2.0)):
        rotation = (rotation_about("z", yaw) @ rotation_about("y", pitch)
                    @ rotation_about("x", roll))
        return rotation, np.array(t)

    def test_round_trip_recovery(self):
        rotation, translation = self.make_pose()
        h = homography_from_pose(self.K, rotation, translation)
        pose = decompose_homography(h, self.K)
        assert np.allclose(pose.rotation, rotation, atol=1e-9)
        # Translation recovered up to the plane-distance scale.
        scale = translation[2] / pose.translation[2]
        assert np.allclose(pose.translation * scale, translation, atol=1e-9)

    def test_rotation_is_orthonormal(self):
        rotation, translation = self.make_pose(yaw=0.5, pitch=0.3)
        h = homography_from_pose(self.K, rotation, translation)
        pose = decompose_homography(h, self.K)
        assert np.allclose(pose.rotation @ pose.rotation.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(pose.rotation) == pytest.approx(1.0)

    def test_camera_kept_in_front_of_plane(self):
        rotation, translation = self.make_pose()
        h = homography_from_pose(self.K, rotation, translation)
        # Scale flips are unobservable in H; decomposition must still
        # return t_z > 0.
        pose = decompose_homography(-2.5 * h, self.K)
        assert pose.translation[2] > 0

    def test_euler_angles_match_construction(self):
        rotation, translation = self.make_pose(yaw=0.2, pitch=-0.1, roll=0.05)
        h = homography_from_pose(self.K, rotation, translation)
        pose = decompose_homography(h, self.K)
        yaw, pitch, roll = pose.yaw_pitch_roll
        assert yaw == pytest.approx(0.2, abs=1e-6)
        assert pitch == pytest.approx(-0.1, abs=1e-6)
        assert roll == pytest.approx(0.05, abs=1e-6)

    def test_angle_to_self_is_zero(self):
        rotation, translation = self.make_pose()
        h = homography_from_pose(self.K, rotation, translation)
        pose = decompose_homography(h, self.K)
        assert pose.angle_to(pose) == pytest.approx(0.0, abs=1e-6)

    def test_angle_between_distinct_poses(self):
        r1, t = self.make_pose(yaw=0.0)
        r2, _ = self.make_pose(yaw=0.4)
        p1 = decompose_homography(homography_from_pose(self.K, r1, t), self.K)
        p2 = decompose_homography(homography_from_pose(self.K, r2, t), self.K)
        assert p1.angle_to(p2) == pytest.approx(0.4, abs=1e-6)

    def test_noisy_homography_still_close(self):
        rotation, translation = self.make_pose()
        h = homography_from_pose(self.K, rotation, translation)
        rng = np.random.default_rng(0)
        noisy = h + rng.normal(0, 1e-4, (3, 3))
        pose = decompose_homography(noisy, self.K)
        true_pose = decompose_homography(h, self.K)
        assert pose.angle_to(true_pose) < 0.01

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            decompose_homography(np.zeros((3, 3)), self.K)

    def test_rotation_about_validation(self):
        with pytest.raises(ValueError):
            rotation_about("q", 0.1)


class TestMonitors:
    def loaded_link(self, rate=2e6, offered=4e6):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = net.add_link("a", "b", rate, delay=0.005,
                            queue=DropTailQueue(500))
        net.build_routes()
        PacketSink(net["b"], 80)
        CBRSource(net["a"], "b", 80, rate_bps=offered, packet_size=1000)
        return sim, link

    def test_queue_monitor_sees_buildup(self):
        sim, link = self.loaded_link()
        monitor = QueueMonitor(sim, link.queue, interval=0.05)
        sim.run(until=3.0)
        assert monitor.peak_packets() > 50          # 2x overload builds queue
        assert monitor.mean_packets() > 10
        assert monitor.mean_queuing_delay(2e6) > 0.05

    def test_queue_monitor_idle_link(self):
        sim = Simulator(seed=2)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = net.add_link("a", "b", 1e6)
        monitor = QueueMonitor(sim, link.queue, interval=0.1)
        sim.run(until=1.0)
        assert monitor.peak_packets() == 0
        assert monitor.mean_queuing_delay(1e6) == 0.0

    def test_link_monitor_utilization_saturated(self):
        sim, link = self.loaded_link()
        monitor = LinkMonitor(sim, link, interval=0.25)
        sim.run(until=4.0)
        assert monitor.mean_utilization() > 0.9
        assert monitor.peak_throughput_bps() == pytest.approx(2e6, rel=0.1)

    def test_link_monitor_partial_load(self):
        sim, link = self.loaded_link(rate=10e6, offered=2e6)
        monitor = LinkMonitor(sim, link, interval=0.25)
        sim.run(until=4.0)
        assert 0.1 < monitor.mean_utilization() < 0.35

    def test_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            QueueMonitor(sim, DropTailQueue(), interval=0.0)

    def test_stop_halts_sampling(self):
        sim, link = self.loaded_link()
        monitor = QueueMonitor(sim, link.queue, interval=0.05)
        sim.run(until=1.0)
        n = len(monitor.samples)
        monitor.stop()
        sim.run(until=2.0)
        assert len(monitor.samples) == n

    def test_horizon_bounds_monitor_and_drains_heap(self):
        """With a horizon the monitor stops rescheduling itself, so a
        bare ``sim.run()`` (no ``until``) terminates."""
        sim, link = self.loaded_link()
        qmon = QueueMonitor(sim, link.queue, interval=0.05, horizon=1.0)
        lmon = LinkMonitor(sim, link, interval=0.25, horizon=1.0)
        sim.run(until=3.0)
        assert all(t <= 1.0 for t, _, _ in qmon.samples)
        assert all(t <= 1.0 for t, _, _ in lmon.samples)
        # ~1.0/interval ticks; float accumulation may shave the last one.
        assert 19 <= len(qmon.samples) <= 21
        assert 3 <= len(lmon.samples) <= 4

    def test_monitors_feed_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        sim, link = self.loaded_link()
        QueueMonitor(sim, link.queue, interval=0.05, horizon=2.0,
                     registry=registry, name="uplink")
        LinkMonitor(sim, link, interval=0.25, horizon=2.0,
                    registry=registry)
        sim.run(until=3.0)
        depth = registry.histogram("queue.uplink.packets")
        assert 39 <= depth.count <= 41
        assert depth.percentile(95) > 50    # overloaded link builds a queue
        util = registry.histogram(f"link.{link.name}.utilization")
        assert 7 <= util.count <= 8
        assert util.mean > 0.9
        assert registry.gauge("queue.uplink.bytes").moments.count == depth.count


class TestSlicing:
    def sliced_net(self, mar_guarantee=10e6):
        sim = Simulator(seed=3)
        net = Network(sim)
        net.add_host("core")
        net.add_host("ue")
        cell = SlicedCell(
            net, "core",
            slices=[Slice("mar", guaranteed_bps=mar_guarantee),
                    Slice("embb", guaranteed_bps=20e6)],
            uplink_bps=50e6,
        )
        cell.attach("ue")
        net.build_routes()
        return sim, net, cell

    def test_guarantees_must_fit(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("core")
        with pytest.raises(ValueError):
            SlicedCell(net, "core",
                       slices=[Slice("a", 40e6), Slice("b", 20e6)],
                       uplink_bps=50e6)

    def test_mar_slice_protected_from_embb_surge(self):
        sim, net, cell = self.sliced_net()
        mar_sink = PacketSink(net["core"], 80)
        PacketSink(net["core"], 81)
        CBRSource(net["ue"], "core", 80, rate_bps=8e6, packet_size=1000,
                  flow="mar")
        # eMBB offered at 3x the cell uplink.
        CBRSource(net["ue"], "core", 81, rate_bps=150e6, packet_size=1400,
                  flow="embb-bulk")
        sim.run(until=8.0)
        # The MAR slice's delay stays low despite the surge.
        assert mar_sink.stats.mean_delay() < 0.02
        expected = 8e6 * 8 / (1000 * 8)
        assert mar_sink.stats.packets_total >= 0.98 * expected

    def test_unreserved_capacity_reported(self):
        _, _, cell = self.sliced_net(mar_guarantee=10e6)
        assert cell.unreserved_bps == pytest.approx(20e6)

    def test_slice_lookup(self):
        _, _, cell = self.sliced_net()
        assert cell.slice_for("mar").name == "mar"
        assert cell.slice_for("random-flow") is None

    def test_reattach_idempotent(self):
        sim, net, cell = self.sliced_net()
        first = cell.attach("ue")
        assert cell.attach("ue") is first
