"""Tests for vision-driven triggers and live strategy switching."""

import numpy as np
import pytest

from repro.mar.adaptive import AdaptiveExecutor, AdaptiveTrackingOffload
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMART_GLASSES, SMARTPHONE
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.vision.pipeline import ArPipeline
from repro.vision.synthetic import make_scene, random_homography, warp_image

GAMING = APP_ARCHETYPES["gaming"]
ORIENTATION = APP_ARCHETYPES["orientation"]


@pytest.fixture(scope="module")
def scene():
    return make_scene(240, 320, seed=8)


class TestAdaptiveTrigger:
    def test_first_frame_always_triggers(self, scene):
        strategy = AdaptiveTrackingOffload(ArPipeline(scene))
        assert strategy.observe_frame(scene) is True
        assert strategy.plan_frame(GAMING, 0).needs_network

    def test_static_scene_rarely_triggers(self, scene):
        strategy = AdaptiveTrackingOffload(ArPipeline(scene))
        strategy.observe_frame(scene)   # keyframe
        for i in range(10):
            # Barely-moving camera.
            frame = warp_image(scene, random_homography(
                seed=i, max_translation=1.0, max_rotation=0.005))
            strategy.observe_frame(frame)
        assert strategy.trigger_rate < 0.4

    def test_scene_cut_triggers(self, scene):
        strategy = AdaptiveTrackingOffload(ArPipeline(scene))
        strategy.observe_frame(scene)
        other = make_scene(240, 320, seed=77)   # unrelated content
        assert strategy.observe_frame(other) is True

    def test_fast_motion_triggers_more_than_slow(self, scene):
        def run(translation):
            strategy = AdaptiveTrackingOffload(ArPipeline(scene))
            frame = scene
            rng = np.random.default_rng(1)
            for i in range(12):
                h = random_homography(seed=int(rng.integers(1e6)),
                                      max_translation=translation,
                                      max_rotation=0.01)
                frame = warp_image(frame, h)
                strategy.observe_frame(frame)
            return strategy.trigger_rate

        assert run(25.0) > run(0.5)

    def test_plan_follows_observation(self, scene):
        strategy = AdaptiveTrackingOffload(ArPipeline(scene))
        strategy.observe_frame(scene)             # trigger
        assert strategy.plan_frame(GAMING, 0).needs_network
        strategy.observe_frame(scene)             # perfect track
        assert not strategy.plan_frame(GAMING, 1).needs_network

    def test_fallback_interval_without_pipeline(self):
        strategy = AdaptiveTrackingOffload(pipeline=None, fallback_interval=5)
        flags = [strategy.plan_frame(GAMING, i).needs_network for i in range(10)]
        assert flags == [True, False, False, False, False] * 2

    def test_observe_requires_pipeline(self, scene):
        with pytest.raises(RuntimeError):
            AdaptiveTrackingOffload(pipeline=None).observe_frame(scene)


class TestAdaptiveExecutor:
    def scenario(self, rtt=0.020, seed=5):
        sim = Simulator(seed=seed)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 80e6, 20e6, delay=rtt / 2)
        net.build_routes()
        return sim, net

    def test_runs_a_session_with_engine_strategy(self):
        sim, net = self.scenario()
        executor = AdaptiveExecutor(net, "client", "server", GAMING,
                                    SMART_GLASSES)
        result = executor.run(n_frames=90)
        assert result.frames_completed > 80
        assert executor.strategy_timeline

    def test_network_collapse_switches_strategy(self):
        sim, net = self.scenario(rtt=0.012)
        executor = AdaptiveExecutor(net, "client", "server", ORIENTATION,
                                    SMART_GLASSES, decide_interval=0.5)
        # Degrade the path sharply mid-session.
        links = net.path_links("client", "server") + net.path_links("server", "client")

        def collapse():
            for link in links:
                link.delay = 0.30

        sim.schedule(4.0, collapse)
        executor.run(n_frames=300)
        used = executor.strategies_used()
        assert len(used) >= 2        # at least one live switch happened
        # The engine saw the RTT rise.
        assert executor.engine.rtt_estimate > 0.1

    def test_rtt_estimate_tracks_pings(self):
        sim, net = self.scenario(rtt=0.050)
        executor = AdaptiveExecutor(net, "client", "server", GAMING, SMARTPHONE)
        executor.run(n_frames=60)
        assert executor.engine.rtt_estimate == pytest.approx(0.05, abs=0.02)
