"""Tests for the privacy filter (Section VI-G)."""

import numpy as np
import pytest

from repro.core.privacy import PrivacyFilter, SensitiveRegion
from repro.vision.features import detect_corners
from repro.vision.synthetic import make_scene


@pytest.fixture(scope="module")
def scene():
    return make_scene(240, 320, seed=2)


def test_blur_changes_only_declared_regions(scene):
    f = PrivacyFilter("medium")
    region = SensitiveRegion(50, 50, 40, 40)
    result = f.apply(scene, [region])
    out = result.frame
    # Outside the region (with margin): untouched.
    assert np.allclose(out[:40, :40], scene[:40, :40])
    # Inside: changed (scene is textured).
    assert not np.allclose(out[55:85, 55:85], scene[55:85, 55:85])


def test_original_frame_not_mutated(scene):
    before = scene.copy()
    PrivacyFilter().apply(scene, [SensitiveRegion(0, 0, 100, 100)])
    assert np.array_equal(scene, before)


def test_higher_level_destroys_more_information(scene):
    region = [SensitiveRegion(40, 40, 120, 120)]
    low = PrivacyFilter("low").apply(scene, region).frame
    high = PrivacyFilter("high").apply(scene, region).frame
    assert PrivacyFilter.information_loss(scene, high) > \
        PrivacyFilter.information_loss(scene, low)


def test_cost_proportional_to_area(scene):
    f = PrivacyFilter()
    small = f.apply(scene, [SensitiveRegion(0, 0, 20, 20)])
    large = f.apply(scene, [SensitiveRegion(0, 0, 80, 80)])
    assert large.megacycles == pytest.approx(small.megacycles * 16, rel=0.01)
    assert small.pixels_blurred == 400


def test_regions_clamped_to_frame(scene):
    f = PrivacyFilter()
    result = f.apply(scene, [SensitiveRegion(300, 230, 100, 100)])
    assert result.pixels_blurred <= 20 * 10
    assert result.frame.shape == scene.shape


def test_blur_removes_corners(scene):
    """Privacy costs utility: blurred regions lose trackable features."""
    corners_before = detect_corners(scene, max_corners=500, quality=0.005)
    region = SensitiveRegion(20, 20, 280, 200)
    blurred = PrivacyFilter("high").apply(scene, [region]).frame
    corners_after = detect_corners(blurred, max_corners=500, quality=0.005)
    assert len(corners_after) < len(corners_before)


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        PrivacyFilter("paranoid")


def test_no_regions_is_identity(scene):
    result = PrivacyFilter().apply(scene, [])
    assert np.array_equal(result.frame, scene)
    assert result.megacycles == 0.0
