"""Engine profiler: deterministic counts, segregated sampled wall times.

The determinism boundary is the thing under test here: attaching a
profiler (counts-only *or* with an injected clock) must change no
result byte, counts must be a pure function of ``(scenario, seed)``,
and wall times must never leak into the deterministic export.
"""

import pytest

from repro.obs import chrome_trace_json, run_obs_scenario
from repro.obs.profile import EngineProfiler, handler_name
from repro.simnet.engine import Simulator

FRAMES = 10


class FakeClock:
    """Deterministic injected clock: each reading advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step
        self.reads = 0

    def __call__(self):
        self.reads += 1
        self.t += self.step
        return self.t


def profiled_run(profiler=None):
    return run_obs_scenario("cell_offload", seed=11, frames=FRAMES,
                            profiler=profiler)


class TestDeterministicCounts:
    def test_counts_reproduce_exactly(self):
        a = EngineProfiler()
        b = EngineProfiler()
        profiled_run(a)
        profiled_run(b)
        assert a.counts_by_name() == b.counts_by_name()
        assert a.to_dict() == b.to_dict()
        assert a.events == b.events > 0

    def test_events_property_sums_counts(self):
        prof = EngineProfiler()
        profiled_run(prof)
        assert prof.events == sum(prof.counts.values())

    def test_profiler_changes_no_result_byte(self):
        plain = profiled_run()
        counted = profiled_run(EngineProfiler())
        timed = profiled_run(EngineProfiler(clock=FakeClock(), stride=1))
        assert (counted.registry.to_json() == plain.registry.to_json()
                == timed.registry.to_json())
        assert (chrome_trace_json(counted.tracer)
                == chrome_trace_json(plain.tracer)
                == chrome_trace_json(timed.tracer))

    def test_export_excludes_wall_times(self):
        prof = EngineProfiler(clock=FakeClock(), stride=1)
        profiled_run(prof)
        doc = prof.to_dict()
        assert set(doc) == {"events", "handlers"}
        assert doc["handlers"] == prof.counts_by_name()

    def test_workload_change_changes_counts(self):
        a = EngineProfiler()
        b = EngineProfiler()
        run_obs_scenario("cell_offload", seed=11, frames=FRAMES, profiler=a)
        run_obs_scenario("cell_offload", seed=11, frames=FRAMES + 2,
                         profiler=b)
        assert a.events < b.events


class TestWallAttribution:
    def run_handlers(self, prof, ticks=8, pings=3):
        """Drive a real engine loop with two distinguishable handlers."""
        sim = Simulator(seed=1)
        sim.profiler = prof

        def tick():
            pass

        def ping():
            pass

        for i in range(ticks):
            sim.schedule(0.001 * (i + 1), tick)
        for i in range(pings):
            sim.schedule(0.002 * (i + 1), ping)
        sim.run()
        return tick, ping

    def test_untimed_profiler_never_reads_a_clock(self):
        clock = FakeClock()
        prof = EngineProfiler()  # no clock injected
        self.run_handlers(prof)
        assert clock.reads == 0
        assert prof.timed is False
        assert prof.wall_by_name() == {}

    def test_stride_one_times_every_dispatch(self):
        clock = FakeClock(step=1.0)
        prof = EngineProfiler(clock=clock, stride=1)
        tick, ping = self.run_handlers(prof, ticks=8, pings=3)
        assert prof.timed is True
        # two clock reads per dispatch, 11 dispatches
        assert clock.reads == 2 * 11
        wall = prof.wall_by_name()
        # each dispatch measures exactly one clock step
        assert wall[handler_name(tick)] == pytest.approx(8.0)
        assert wall[handler_name(ping)] == pytest.approx(3.0)

    def test_stride_samples_and_scales_back(self):
        clock = FakeClock(step=1.0)
        prof = EngineProfiler(clock=clock, stride=4)
        tick, ping = self.run_handlers(prof, ticks=10, pings=3)
        # per-handler sampling: tick fired 10x -> 2 samples; ping 3x -> 0
        assert clock.reads == 2 * 2
        wall = prof.wall_by_name()
        assert wall[handler_name(tick)] == pytest.approx(2 * 1.0 * 4)
        assert wall.get(handler_name(ping), 0.0) == 0.0
        # counts are complete even where the wall sample is empty
        counts = prof.counts_by_name()
        assert counts[handler_name(tick)] == 10
        assert counts[handler_name(ping)] == 3

    def test_sampled_dispatch_still_passes_args(self):
        seen = []
        sim = Simulator(seed=1)
        sim.profiler = EngineProfiler(clock=FakeClock(), stride=1)
        sim.schedule(0.001, seen.append, "pos")
        sim.schedule(0.002, lambda **kw: seen.append(kw), tag="kw")
        sim.run()
        assert seen == ["pos", {"tag": "kw"}]

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineProfiler(stride=0)

    def test_default_stride(self):
        assert EngineProfiler().stride == EngineProfiler.DEFAULT_STRIDE >= 1


class TestHotspots:
    def test_untimed_sorts_by_count(self):
        prof = EngineProfiler()

        def a():
            pass

        def b():
            pass

        prof.counts[a] = 3
        prof.counts[b] = 7
        rows = prof.hotspots()
        assert [r[0] for r in rows] == [handler_name(b), handler_name(a)]
        assert rows[0][1:] == (7, 0.0)

    def test_timed_sorts_by_wall(self):
        prof = EngineProfiler(clock=FakeClock(), stride=1)

        def a():
            pass

        def b():
            pass

        prof.counts[a] = 100
        prof.counts[b] = 2
        prof.wall[a] = 0.001
        prof.wall[b] = 0.5
        rows = prof.hotspots()
        assert [r[0] for r in rows] == [handler_name(b), handler_name(a)]

    def test_top_truncates(self):
        prof = EngineProfiler()
        profiled_run(prof)
        assert len(prof.hotspots(top=2)) == 2
        assert len(prof.hotspots(top=1000)) == len(prof.counts_by_name())

    def test_bound_methods_merge_per_name(self):
        class Node:
            def fire(self):
                pass

        prof = EngineProfiler()
        x, y = Node(), Node()
        prof.counts[x.fire] = 2
        prof.counts[y.fire] = 3
        merged = prof.counts_by_name()
        assert merged == {handler_name(Node.fire): 5}


class TestHandlerName:
    def test_plain_function(self):
        def handler():
            pass

        name = handler_name(handler)
        assert name.endswith("handler")
        assert name.startswith(__name__)

    def test_object_without_metadata(self):
        class Opaque:
            def __call__(self):
                pass

        obj = Opaque()  # instances expose neither __module__ nor __qualname__
        name = handler_name(obj)
        assert name == f"{Opaque.__module__}.{repr(obj)}"
