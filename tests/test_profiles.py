"""Unit tests for wireless access profiles (Section IV-A numbers)."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.packet import Packet
from repro.wireless.profiles import (
    FIVE_G,
    HSPA_PLUS,
    LTE,
    LTE_DIRECT,
    WIFI_AC,
    WIFI_DIRECT,
    WIFI_HOME,
    WIFI_N,
    all_profiles,
    mbps,
)


def test_mbps_helper():
    assert mbps(2.5) == 2.5e6


class TestPaperNumbers:
    def test_hspa_measured_range(self):
        assert 0.3e6 <= HSPA_PLUS.down_mean <= 3.48e6
        assert HSPA_PLUS.rtt >= 0.109

    def test_lte_improves_on_hspa(self):
        assert LTE.down_mean > HSPA_PLUS.down_mean
        assert LTE.rtt < HSPA_PLUS.rtt

    def test_wifi_ac_faster_than_n(self):
        assert WIFI_AC.down_mean > WIFI_N.down_mean

    def test_5g_kpis_from_white_paper(self):
        assert FIVE_G.down_mean == pytest.approx(300e6)
        assert FIVE_G.up_mean == pytest.approx(50e6)
        assert FIVE_G.rtt == pytest.approx(0.010)

    def test_d2d_technologies_flagged(self):
        assert LTE_DIRECT.d2d and WIFI_DIRECT.d2d
        assert LTE_DIRECT.range_m == 1000.0
        assert WIFI_DIRECT.range_m == 200.0


class TestMarReadiness:
    def test_hspa_fails_everything(self):
        assert not HSPA_PLUS.mar_ready()
        assert not HSPA_PLUS.meets_mar_uplink()
        assert not HSPA_PLUS.meets_mar_latency()

    def test_lte_fails_uplink(self):
        # Measured LTE upload (~8 Mb/s) is just under the 10 Mb/s floor.
        assert not LTE.meets_mar_uplink()

    def test_public_wifi_fails_latency(self):
        assert not WIFI_N.meets_mar_latency()

    def test_home_wifi_ready(self):
        assert WIFI_HOME.mar_ready()

    def test_5g_kpi_ready(self):
        assert FIVE_G.mar_ready()

    def test_only_few_profiles_ready(self):
        ready = [p.name for p in all_profiles() if p.mar_ready()]
        assert "HSPA+" not in ready
        assert len(ready) <= 4


class TestAsymmetry:
    def test_cellular_profiles_asymmetric(self):
        assert LTE.asymmetry_ratio > 1.0
        assert FIVE_G.asymmetry_ratio == pytest.approx(6.0)

    def test_wifi_symmetric(self):
        assert WIFI_N.asymmetry_ratio == 1.0


class TestBuildDuplex:
    def test_links_attached_and_functional(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("infra")
        net.add_host("phone")
        links = LTE.build_duplex(net, "infra", "phone", static=True)
        net.build_routes()
        got = []
        net["phone"].default_handler = got.append
        net["infra"].send(Packet(src="infra", dst="phone", size=1000, dst_port=1))
        sim.run(until=1.0)
        assert len(got) == 1
        assert links["down"].rate_bps == LTE.down_mean

    def test_static_freezes_rate(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("infra")
        net.add_host("phone")
        links = LTE.build_duplex(net, "infra", "phone", static=True)
        sim.run(until=10.0)
        rates = {r for _, r in links["up"].rate_history}
        assert rates == {LTE.up_mean}

    def test_dynamic_rate_varies(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("infra")
        net.add_host("phone")
        links = HSPA_PLUS.build_duplex(net, "infra", "phone")
        sim.run(until=30.0)
        rates = {round(r) for _, r in links["down"].rate_history}
        assert len(rates) > 20  # HSPA's huge variance

    def test_oversized_uplink_buffer_default(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_host("infra")
        net.add_host("phone")
        links = LTE.build_duplex(net, "infra", "phone")
        assert links["up"].queue.capacity == 1000
