"""The `python -m repro scale` verb and hierarchical shard campaigns."""

import hashlib

import pytest

from repro.cli import main
from repro.fleet import run_campaign, run_shard
from repro.scale.shards import (
    CITY_BUDGETS,
    cell_contention_campaign,
    city_cell_spec,
    city_coverage_campaign,
    city_users,
)


def small_city():
    # The smoke tier cut down further: 4 cells, still exercising the
    # full member-0 fluid/promotion path + the cohort path.
    campaign = city_coverage_campaign("smoke", city_seed=7)
    campaign.grid = {"cell": [0, 1, 2, 3], "member": [0]}
    return campaign


class TestCampaignShape:
    def test_budgets_are_tiered(self):
        assert CITY_BUDGETS["smoke"].n_cells < CITY_BUDGETS["small"].n_cells \
            < CITY_BUDGETS["metro"].n_cells

    def test_city_is_pure_function_of_seed(self):
        a = city_cell_spec(7, 5, CITY_BUDGETS["smoke"])
        b = city_cell_spec(7, 5, CITY_BUDGETS["smoke"])
        c = city_cell_spec(8, 5, CITY_BUDGETS["smoke"])
        assert a == b
        assert a != c

    def test_campaign_fingerprint_stable(self):
        assert (city_coverage_campaign("smoke").fingerprint()
                == city_coverage_campaign("smoke").fingerprint())
        assert (city_coverage_campaign("smoke").fingerprint()
                != city_coverage_campaign("small").fingerprint())

    def test_shards_cover_city_grid(self):
        campaign = city_coverage_campaign("metro")
        budget = CITY_BUDGETS["metro"]
        shards = campaign.shards()
        assert len(shards) == budget.n_cells * budget.cohort


class TestCampaignRuns:
    def test_city_campaign_double_run_fingerprint(self):
        campaign = small_city()
        a = run_campaign(campaign, workers=1)
        b = run_campaign(campaign, workers=1)
        fp_a = hashlib.sha256(a.aggregate.to_json().encode()).hexdigest()
        fp_b = hashlib.sha256(b.aggregate.to_json().encode()).hexdigest()
        assert fp_a == fp_b

    def test_city_campaign_counts_background_users(self):
        result = run_campaign(small_city(), workers=1)
        users = city_users(result.aggregate)
        assert users > 1000          # thousands of fluid users in 4 cells
        assert result.aggregate.counts["scale.cells"] == 4
        assert result.aggregate.counts["sessions"] >= 4   # cohort sessions
        assert "scale.utilization" in result.aggregate.moments
        assert "frame_latency" in result.aggregate.histograms

    def test_shard_replay_matches(self):
        campaign = small_city()
        tag = campaign.shards()[1].tag
        assert (run_shard(campaign, tag).to_json()
                == run_shard(campaign, tag).to_json())

    def test_cell_contention_sweep_degrades_with_load(self):
        campaign = cell_contention_campaign(seeds=2)
        result = run_campaign(campaign, workers=1)
        per_point = result.per_point
        rho = {label: agg.moments["scale.utilization"].mean
               for label, agg in per_point.items()}
        labels = sorted(rho, key=lambda k: rho[k])
        # utilization tracks the offered-load factor across the sweep
        assert rho[labels[-1]] > rho[labels[0]]
        # and the heaviest cell serves a smaller fraction of demand
        sf = {label: agg.moments["scale.service_fraction"].mean
              for label, agg in per_point.items()}
        assert sf[labels[-1]] < sf[labels[0]]


class TestScaleVerb:
    @pytest.fixture
    def out_dir(self, tmp_path, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "FLEET_RESULTS_DIR", tmp_path / "fleet")
        return tmp_path / "fleet"

    def test_double_run_gate_passes(self, out_dir, capsys):
        assert main(["scale", "city_coverage", "--budget", "smoke",
                     "--double-run", "-w", "1", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "byte-identical aggregates" in err
        assert "background users simulated" in err
        assert (out_dir / "city_coverage-smoke.txt").exists()

    def test_unknown_campaign_rejected(self, out_dir, capsys):
        assert main(["scale", "nope", "--quiet"]) == 2
        assert "unknown scale campaign" in capsys.readouterr().err

    def test_list_includes_scale_campaigns(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "city_coverage" in out
        assert "cell_contention" in out
