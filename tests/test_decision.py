"""Tests for the runtime offloading decision engine."""

import pytest

from repro.mar.application import APP_ARCHETYPES
from repro.mar.decision import DecisionEngine
from repro.mar.devices import DESKTOP, SMART_GLASSES, SMARTPHONE
from repro.mar.offload import FeatureOffload, FullOffload, LocalOnly, TrackingOffload

GAMING = APP_ARCHETYPES["gaming"]
ORIENTATION = APP_ARCHETYPES["orientation"]


def engine(device=SMARTPHONE, app=GAMING, **kw):
    return DecisionEngine(device, app, **kw)


class TestEstimates:
    def test_ewma_converges(self):
        e = engine()
        for _ in range(60):
            e.observe_rtt(0.040)
        assert e.rtt_estimate == pytest.approx(0.040, abs=1e-4)

    def test_invalid_samples_ignored(self):
        e = engine()
        e.observe_rtt(-1.0)
        e.observe_uplink(0.0)
        assert not e.network_known

    def test_battery_clamped(self):
        e = engine()
        e.observe_battery(1.5)
        assert e.battery_fraction == 1.0
        e.observe_battery(-0.1)
        assert e.battery_fraction == 0.0


class TestDecisions:
    def feed_network(self, e, rtt, up_bps):
        for _ in range(30):
            e.observe_rtt(rtt)
            e.observe_uplink(up_bps)

    def test_without_network_stays_local(self):
        e = engine()
        assert isinstance(e.decide(), LocalOnly)

    def test_weak_device_good_network_offloads(self):
        e = engine(device=SMART_GLASSES)
        self.feed_network(e, rtt=0.012, up_bps=25e6)
        decision = e.decide()
        assert not isinstance(decision, LocalOnly)

    def test_strong_device_prefers_local(self):
        e = engine(device=DESKTOP, app=GAMING)
        self.feed_network(e, rtt=0.040, up_bps=10e6)
        assert isinstance(e.decide(), LocalOnly)

    def test_bad_network_falls_back_to_local_even_if_slow(self):
        e = engine(device=SMART_GLASSES, app=ORIENTATION)
        self.feed_network(e, rtt=0.020, up_bps=20e6)
        first = e.decide()
        assert not isinstance(first, LocalOnly)
        # Network collapses: 600 ms RTT, dial-up uplink.
        self.feed_network(e, rtt=0.600, up_bps=100e3)
        second = e.decide()
        # Nothing meets the deadline now; the engine picks the least bad
        # — which must not be a full-frame upload over 100 Kb/s.
        assert not isinstance(second, FullOffload)

    def test_low_battery_prefers_energy(self):
        e = engine(device=SMARTPHONE, app=ORIENTATION)
        self.feed_network(e, rtt=0.010, up_bps=30e6)
        e.observe_battery(1.0)
        normal = e.decide()
        e2 = engine(device=SMARTPHONE, app=ORIENTATION)
        self.feed_network(e2, rtt=0.010, up_bps=30e6)
        e2.observe_battery(0.05)
        frugal = e2.decide()
        f_normal = e.forecast(normal)
        f_frugal = e2.forecast(frugal)
        assert f_frugal.energy_joules <= f_normal.energy_joules + 1e-9

    def test_hysteresis_prevents_flapping(self):
        e = engine(device=SMART_GLASSES, switch_margin=0.3)
        self.feed_network(e, rtt=0.015, up_bps=20e6)
        e.decide()
        switches_before = e.switches
        # Tiny oscillation in RTT must not flip the strategy.
        for rtt in (0.016, 0.014, 0.0155, 0.0145) * 5:
            e.observe_rtt(rtt)
            e.decide()
        assert e.switches == switches_before

    def test_feasibility_always_overrides_hysteresis(self):
        """When the incumbent breaks its deadline and a challenger still
        meets it, the switch happens regardless of the margin."""
        from repro.mar.application import MarApplication
        from repro.mar.devices import TABLET

        app = MarApplication(
            name="custom", description="override scenario", fps=20,
            megacycles_per_frame=360.0, db_requests_per_s=0, object_bytes=0,
            deadline=0.150, frame_upload_bytes=18_000,
            feature_upload_bytes=1_200, result_bytes=1_000,
        )
        e = DecisionEngine(TABLET, app, switch_margin=10.0)
        self.feed_network(e, rtt=0.010, up_bps=30e6)
        first = e.decide()
        assert e.forecast(first).meets_deadline
        assert not isinstance(first, FeatureOffload)  # cheaper options exist
        # Uplink collapses: the frame-shipping strategies break their
        # deadline; only the thin feature upload still fits.
        self.feed_network(e, rtt=0.010, up_bps=400e3)
        second = e.decide()
        assert isinstance(second, FeatureOffload)
        assert e.forecast(second).meets_deadline
        assert not e.forecast(first).meets_deadline

    def test_history_records_switches(self):
        e = engine(device=SMART_GLASSES)
        self.feed_network(e, rtt=0.010, up_bps=30e6)
        e.decide(now=1.0)
        assert e.history and e.history[0][0] == 1.0


class TestForecasts:
    def test_tracking_latency_between_local_and_full(self):
        e = engine(device=SMARTPHONE, app=GAMING)
        for _ in range(30):
            e.observe_rtt(0.040)
            e.observe_uplink(15e6)
        tracked = e.forecast(TrackingOffload()).latency
        full = e.forecast(FullOffload()).latency
        local = e.forecast(LocalOnly()).latency
        assert tracked < full
        assert tracked < local

    def test_feature_offload_wins_on_starved_uplink(self):
        """Features ship 4x fewer bytes, so on a thin uplink the feature
        split's latency beats the full-frame upload despite its larger
        on-device compute share."""
        e = engine(device=SMARTPHONE, app=GAMING, radio="lte")
        for _ in range(30):
            e.observe_rtt(0.030)
            e.observe_uplink(600e3)   # starved uplink
        features = e.forecast(FeatureOffload())
        full = e.forecast(FullOffload())
        assert features.latency < full.latency

    def test_full_offload_more_energy_frugal_than_feature_split(self):
        """With WiFi-class radio energy, shipping the frame costs less
        energy than computing the extraction locally — one reason full
        offload exists at all."""
        e = engine(device=SMARTPHONE, app=GAMING, radio="wifi")
        for _ in range(30):
            e.observe_rtt(0.030)
            e.observe_uplink(15e6)
        features = e.forecast(FeatureOffload())
        full = e.forecast(FullOffload())
        assert full.energy_joules < features.energy_joules
