"""A8 — extension: MAC model cross-validation (Figure 2's foundation).

Two independent 802.11 models live in this repo: the airtime *grant*
model (``wireless.wifi``, used by the Figure 2 benchmark) and a
slot-level DCF simulation with real contention windows and collisions
(``wireless.dcf``).  This benchmark cross-validates them and
characterizes what the grant model abstracts away:

- the performance-anomaly equalization must agree between models;
- collision probability must grow with station count (slot model only);
- aggregate goodput must decay under heavy contention (slot model),
  which the collision-free grant model cannot show.
"""

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table, format_rate
from repro.simnet.engine import Simulator
from repro.wireless.dcf import DcfChannel, DcfStation
from repro.wireless.wifi import WifiCell, WifiStation, anomaly_throughput

DURATION = 8.0


def run_slot_model(rates, seed=181):
    sim = Simulator(seed=seed)
    channel = DcfChannel(sim)
    stations = [channel.add_station(DcfStation(f"s{i}", r))
                for i, r in enumerate(rates)]
    sim.run(until=DURATION)
    return channel, stations


def run_grant_model(rates, seed=181):
    sim = Simulator(seed=seed)
    cell = WifiCell(sim)
    stations = [cell.add_station(WifiStation(f"s{i}", r))
                for i, r in enumerate(rates)]
    sim.run(until=DURATION)
    return cell, stations


def test_a8_mac_model_cross_validation(benchmark, record_result):
    def run_all():
        out = {"anomaly-slot": run_slot_model([54e6, 18e6]),
               "anomaly-grant": run_grant_model([54e6, 18e6])}
        for n in (2, 5, 10, 20):
            out[f"contention-{n}"] = run_slot_model([54e6] * n)
        return out

    outcome = run_once(benchmark, run_all)

    # --- anomaly agreement ---
    _, slot_stations = outcome["anomaly-slot"]
    _, grant_stations = outcome["anomaly-grant"]
    slot_fast = slot_stations[0].throughput_bps(1, DURATION)
    slot_slow = slot_stations[1].throughput_bps(1, DURATION)
    grant_fast = grant_stations[0].throughput_bps(1, DURATION)
    analytic = anomaly_throughput([54e6, 18e6])[0]

    anomaly_rows = [
        ["slot-level DCF", format_rate(slot_fast), format_rate(slot_slow)],
        ["airtime grant model", format_rate(grant_fast),
         format_rate(grant_stations[1].throughput_bps(1, DURATION))],
        ["Heusse closed form", format_rate(analytic), format_rate(analytic)],
    ]
    contention_rows = []
    for n in (2, 5, 10, 20):
        channel, stations = outcome[f"contention-{n}"]
        agg = channel.aggregate_throughput_bps(1, DURATION)
        contention_rows.append([
            n, f"{channel.collision_probability:.1%}", format_rate(agg),
        ])
    table = (
        ascii_table(["model", "station A (54 Mb/s)", "station B (18 Mb/s)"],
                    anomaly_rows,
                    title="A8a — performance anomaly across MAC models")
        + "\n\n"
        + ascii_table(["stations", "collision probability", "aggregate goodput"],
                      contention_rows,
                      title="A8b — slot-level contention cost (all at 54 Mb/s)")
    )
    record_result("A8_dcf_validation", table)

    # Anomaly equalization in both models.
    assert slot_fast == pytest.approx(slot_slow, rel=0.15)
    assert slot_fast == pytest.approx(analytic, rel=0.3)
    assert grant_fast == pytest.approx(analytic, rel=0.1)
    # Collision probability strictly grows with contention.
    probs = [outcome[f"contention-{n}"][0].collision_probability
             for n in (2, 5, 10, 20)]
    assert probs == sorted(probs)
    assert probs[-1] > 3 * probs[0]
    # Goodput decays under heavy contention (what the grant model hides).
    aggs = [outcome[f"contention-{n}"][0].aggregate_throughput_bps(1, DURATION)
            for n in (2, 5, 10, 20)]
    assert aggs[-1] < aggs[0]
