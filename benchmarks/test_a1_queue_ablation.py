"""A1 — ablation (Section VI-H): uplink queue discipline.

The paper: "the uplink buffer implemented in the kernel is usually
oversized (around 1000 packets), dramatically increasing the overall
latency ... may be achieved by a combination of latency queuing and low
priority queues such as FQ_CoDel".

A MARTP session shares an asymmetric uplink with a greedy TCP upload,
under three uplink queue disciplines: oversized DropTail, CoDel, and
FQ-CoDel.

Expected shape: DropTail inflates the critical stream's latency by
hundreds of ms (bufferbloat); CoDel cuts it sharply; FQ-CoDel isolates
the thin MARTP flows from the bulk upload almost completely while the
upload still gets the remaining capacity.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.simnet.queues import CoDelQueue, DropTailQueue, FQCoDelQueue
from repro.transport.tcp import TcpConnection, TcpListener

DURATION = 20.0
UP_BPS = 6e6


def run_discipline(make_queue, seed=91):
    scenario = ScenarioBuilder(seed=seed).single_path(rtt=0.020, up_bps=UP_BPS)
    uplink = scenario.net.path_links("client", "server")[0]
    uplink.queue = make_queue()

    # Bulk TCP upload sharing the uplink (port clear of MARTP's 6000).
    TcpListener(scenario.net["server"], 81)
    upload = TcpConnection(scenario.net["client"], 6500, "server", 81)
    upload.on_established = upload.send_forever
    upload.connect()

    session = OffloadSession(scenario)
    report = session.run(DURATION)
    return report, upload


def test_a1_uplink_queue_discipline(benchmark, record_result):
    disciplines = {
        "DropTail(1000)": lambda: DropTailQueue(1000),
        "CoDel": lambda: CoDelQueue(capacity=1000),
        "FQ-CoDel": lambda: FQCoDelQueue(capacity=1000),
    }
    outcome = run_once(
        benchmark, lambda: {n: run_discipline(q) for n, q in disciplines.items()}
    )

    rows = []
    stats = {}
    for name, (report, upload) in outcome.items():
        meta = report.per_class[0]
        ref = report.per_class[2]
        upload_goodput = upload.snd_una * 8 / DURATION
        stats[name] = (meta.mean_latency, ref.in_time_ratio, upload_goodput)
        rows.append([
            name,
            format_time(meta.mean_latency),
            format_time(meta.p95_latency),
            f"{ref.in_time_ratio:.0%}",
            f"{upload_goodput / 1e6:.1f} Mb/s",
        ])
    table = ascii_table(
        ["uplink queue", "metadata latency", "metadata p95",
         "ref frames in-time", "TCP upload goodput"],
        rows,
        title="Ablation A1 — queue discipline on a shared 6 Mb/s uplink",
    )
    record_result("A1_queue_ablation", table)

    droptail, codel, fqcodel = (
        stats["DropTail(1000)"], stats["CoDel"], stats["FQ-CoDel"])
    # Bufferbloat: oversized DropTail pushes latency into the hundreds of ms.
    assert droptail[0] > 0.200
    # CoDel recovers most of it.
    assert codel[0] < droptail[0] / 3
    # FQ-CoDel isolates the MAR flow best of all.
    assert fqcodel[0] <= codel[0] * 1.2
    assert fqcodel[0] < 0.100
    # The bulk upload still makes real progress under AQM.
    assert codel[2] > 1e6 and fqcodel[2] > 1e6
