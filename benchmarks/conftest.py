"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints a
paper-vs-measured report, and saves the rendered text under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable output.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Save (and echo) a benchmark's rendered report."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


def run_once(benchmark, fn):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
