"""E10 — extension: overlay misalignment vs motion-to-photon latency.

The paper's latency ladder — 100 ms for generic real-time apps, 75 ms
as its working MAR budget, Abrash's ≤20 ms for AR/VR, a 7 ms "holy
grail" — is usually argued by citation.  Here it is *derived*: a
calmly panning camera (peak ~34°/s) renders a plane-anchored virtual
card with a stale homography; the registration error in pixels is a
pure function of latency.

Expected shape: error grows monotonically (≈ linearly for small L)
with latency; the paper's 75 ms round-trip budget sits near the edge of
a ~15 px error on a 320-wide frame; 20 ms keeps mean error under ~5 px
(barely noticeable); 7 ms under ~2 px (imperceptible); 250 ms telemetry
latency produces a visually broken overlay.
"""

from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_time
from repro.vision.overlay import (
    PanningCamera,
    acceptable_latency,
    misalignment_profile,
)

LATENCIES = [0.0, 0.007, 0.020, 0.0375, 0.075, 0.120, 0.250]


def run_profile():
    camera = PanningCamera()
    profile = misalignment_profile(camera, LATENCIES)
    threshold_latency = acceptable_latency(camera, max_error_px=5.0)
    return camera, profile, threshold_latency


def test_e10_alignment_error_vs_latency(benchmark, record_result):
    camera, profile, threshold_latency = run_once(benchmark, run_profile)

    labels = {
        0.0: "(no latency)",
        0.007: "Abrash 'holy grail'",
        0.020: "Abrash AR/VR bound",
        0.0375: "half the paper budget",
        0.075: "paper round-trip budget",
        0.120: "measured cloud/LTE RTT",
        0.250: "telemetry class",
    }
    rows = [
        [format_time(latency), labels.get(latency, ""),
         f"{mean_error:.1f} px", f"{p95:.1f} px"]
        for latency, mean_error, p95 in profile
    ]
    fig = Figure(
        f"E10 — overlay error vs latency (panning at ~{camera.peak_angular_velocity_deg:.0f} deg/s)",
        x_label="latency (s)", y_label="mean error (px)",
    )
    fig.add_series("mean error", [(l, e) for l, e, _ in profile])
    table = ascii_table(
        ["motion-to-photon latency", "corresponds to", "mean error", "p95 error"],
        rows,
        title="Registration error of a plane-anchored overlay (320 px frame)",
    )
    note = (f"largest latency keeping mean error <= 5 px at this motion: "
            f"{format_time(threshold_latency)}")
    record_result("E10_alignment_latency", fig.render() + "\n\n" + table
                  + "\n\n" + note)

    errors = {latency: mean for latency, mean, _ in profile}
    # Monotone growth with latency.
    ordered = [errors[l] for l in LATENCIES]
    assert ordered == sorted(ordered)
    # The paper's cited thresholds, derived:
    assert errors[0.007] < 2.5          # holy grail: imperceptible
    assert errors[0.020] < 6.0          # AR/VR bound: barely noticeable
    assert errors[0.250] > 20.0         # telemetry class: broken overlay
    # The derived 5 px-acceptable latency lands in the 10-60 ms band —
    # bracketing Abrash's 20 ms claim for this motion speed.
    assert 0.010 < threshold_latency < 0.060
    # And the paper's 75 ms budget is already a visible-compromise zone.
    assert 6.0 < errors[0.075] < 40.0
