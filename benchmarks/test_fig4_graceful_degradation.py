"""F4 — Figure 4: TCP's congestion window versus graceful degradation.

The paper's worked example: an AR flow with four traffic types
(connection metadata, sensor data, video reference frames, video
interframes) rides through two congestion episodes.  Where TCP halves
a congestion window, MARTP selects *which data* to stop sending:
interframes and sensor samples first, reference frames only in the
severest phase, metadata never.

Setup: the uplink rate drops 12 -> 4 -> 1.2 Mb/s at t=15 s and t=30 s.
A TCP bulk flow runs through an identical fresh network to provide the
cwnd trace the figure contrasts.

Expected shape: metadata delivery stays 100 % through both episodes;
interframe allocation collapses toward zero in the last phase; the
budget trace steps down like TCP's cwnd but per-class service degrades
instead of pausing.
"""

from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_rate
from repro.analysis.stats import timeseries_bins
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.tcp import TcpConnection, TcpListener

PHASES = [(0.0, 12e6), (15.0, 4e6), (30.0, 1.2e6)]
DURATION = 45.0


def run_martp():
    scenario = ScenarioBuilder(seed=41).single_path(rtt=0.020, up_bps=PHASES[0][1])
    uplink = scenario.net.path_links("client", "server")[0]
    for start, rate in PHASES[1:]:
        scenario.sim.schedule(start, lambda r=rate: setattr(uplink, "rate_bps", r))
    session = OffloadSession(scenario)
    report = session.run(DURATION)
    return session, report


def run_tcp_reference():
    sim = Simulator(seed=41)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, PHASES[0][1], delay=0.010,
                   queue_up=DropTailQueue(300))
    net.build_routes()
    uplink = net.path_links("client", "server")[0]
    for start, rate in PHASES[1:]:
        sim.schedule(start, lambda r=rate: setattr(uplink, "rate_bps", r))
    TcpListener(net["server"], 81)
    conn = TcpConnection(net["client"], 6000, "server", 81)
    conn.on_established = conn.send_forever
    conn.connect()
    sim.run(until=DURATION)
    return conn


def test_fig4_graceful_degradation_vs_tcp(benchmark, record_result):
    (session, report), tcp = run_once(
        benchmark, lambda: (run_martp(), run_tcp_reference())
    )

    # --- figure: TCP cwnd + MARTP per-stream allocations over time ---
    fig = Figure("Figure 4 — TCP cwnd (bytes) vs MARTP per-class allocation (b/s)",
                 x_label="time (s)", y_label="normalized")
    cwnd_max = max(c for _, c in tcp.cwnd_trace)
    fig.add_series("tcp cwnd", [(t, c / cwnd_max) for t, c in tcp.cwnd_trace])
    alloc_trace = session.sender.offered_rate_trace()
    for sid, label in ((3, "interframes"), (2, "ref frames"), (1, "sensors")):
        nominal = session.sender.degradation.spec(sid).nominal_rate_bps
        pts = [(t, rates[sid] / nominal) for t, rates in alloc_trace]
        fig.add_series(label, timeseries_bins(pts, 1.0))

    # --- per-phase allocations ---
    def mean_alloc(sid, t0, t1):
        vals = [r[sid] for t, r in alloc_trace if t0 <= t < t1]
        return sum(vals) / len(vals) if vals else 0.0

    rows = []
    for i, (start, rate) in enumerate(PHASES):
        end = PHASES[i + 1][0] if i + 1 < len(PHASES) else DURATION
        rows.append([
            f"{format_rate(rate)} uplink",
            format_rate(mean_alloc(0, start + 3, end)),
            format_rate(mean_alloc(1, start + 3, end)),
            format_rate(mean_alloc(2, start + 3, end)),
            format_rate(mean_alloc(3, start + 3, end)),
        ])
    table = ascii_table(
        ["phase", "metadata", "sensors", "ref frames", "interframes"],
        rows,
        title="MARTP mean allocation per congestion phase",
    )
    summary = ascii_table(
        ["stream", "delivery", "in-time", "shed at sender"],
        [
            [r.name, f"{r.delivery_ratio:.1%}", f"{r.in_time_ratio:.1%}",
             f"{r.shed_ratio:.1%}"]
            for r in report.per_class.values()
        ],
    )
    record_result("F4_graceful_degradation",
                  fig.render() + "\n\n" + table + "\n\n" + summary)

    # --- shape assertions ---
    meta = report.per_class[0]
    # (1) Metadata is never lost — "unaltered at all cost".
    assert meta.delivery_ratio >= 0.999
    # (2) Interframes collapse in the severe phase.
    assert mean_alloc(3, 33.0, DURATION) < mean_alloc(3, 3.0, 15.0) * 0.3
    # (3) Reference frames outlive interframes but degrade in phase 3.
    assert mean_alloc(2, 33.0, DURATION) >= session.sender.degradation.spec(2).min_rate_bps * 0.9
    # (4) TCP saw real multiplicative decreases on the same path.
    assert tcp.retransmits > 0
    cwnds = [c for _, c in tcp.cwnd_trace]
    assert min(cwnds) < max(cwnds) / 4
    # (5) MARTP kept the session alive: some video still flowed at the end.
    assert report.mean_video_quality > 0.05
