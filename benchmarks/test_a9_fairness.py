"""A9 — property (2) and its §VI-B caveat: fairness against TCP.

MARTP's congestion control is delay-centric ("a sudden rise of delay or
jitter should be treated as a congestion indication").  The paper
itself flags the consequence: "this strategy may result in unfairness
toward the connection when competing with multiple other flows [65]" —
the classic TCP-Vegas-vs-Reno submissiveness — and concludes "a
trade-off has to be found between the latency and bandwidth
requirements".

This benchmark measures all three sides of that statement:

1. against a single TCP the shares are near-fair (Jain ≥ 0.9);
2. against several loss-driven TCPs the delay-based budget *yields* —
   MARTP ends below its fair share but never starves the TCP flows
   (the polite failure mode, unlike the reverse);
3. relaxing the delay threshold (the paper's "trade-off" knob) buys
   share back at the cost of queueing latency.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_rate, format_time
from repro.analysis.stats import jain_index
from repro.core.congestion import RateController
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.core.traffic import mar_baseline_streams
from repro.transport.tcp import TcpConnection, TcpListener

LINK_BPS = 12e6
DURATION = 30.0


def run_with_n_tcp(n_tcp, delay_threshold=0.015, seed=201):
    scenario = ScenarioBuilder(seed=seed).single_path(rtt=0.030, up_bps=LINK_BPS)
    controller = RateController(delay_threshold=delay_threshold)
    session = OffloadSession(
        scenario,
        streams=mar_baseline_streams(video_nominal_bps=16e6),
        controller=controller,
    )
    TcpListener(scenario.net["server"], 81)
    tcp_flows = []
    for i in range(n_tcp):
        conn = TcpConnection(scenario.net["client"], 6500 + i, "server", 81)
        conn.on_established = conn.send_forever
        conn.connect()
        tcp_flows.append(conn)
    session.run(DURATION, settle=0.0)

    tcp_rates = [c.snd_una * 8 / DURATION for c in tcp_flows]
    martp_bytes = sum(
        session.sender.stream_stats(s.stream_id).bytes_sent
        for s in session.streams
    )
    martp_rate = martp_bytes * 8 / DURATION
    queuing = session.sender.controller.queuing_delay
    return martp_rate, tcp_rates, queuing


def test_a9_fairness_and_the_vegas_tradeoff(benchmark, record_result):
    outcome = run_once(benchmark, lambda: {
        ("default", 1): run_with_n_tcp(1),
        ("default", 2): run_with_n_tcp(2),
        ("default", 3): run_with_n_tcp(3),
        ("relaxed", 2): run_with_n_tcp(2, delay_threshold=0.12),
    })

    rows = []
    for (variant, n), (martp_rate, tcp_rates, queuing) in outcome.items():
        all_rates = [martp_rate] + tcp_rates
        rows.append([
            f"{variant} vs {n} TCP",
            format_rate(martp_rate),
            format_rate(sum(tcp_rates) / len(tcp_rates)),
            f"{jain_index(all_rates):.2f}",
            format_time(queuing),
            f"{sum(all_rates) / LINK_BPS:.0%}",
        ])
    table = ascii_table(
        ["scenario", "MARTP share", "TCP mean share", "Jain", "queuing seen",
         "utilization"],
        rows,
        title=f"A9 — fairness vs TCP on a {LINK_BPS / 1e6:.0f} Mb/s uplink "
              "(delay-based vs loss-based control)",
    )
    record_result("A9_fairness", table)

    one = outcome[("default", 1)]
    two = outcome[("default", 2)]
    three = outcome[("default", 3)]
    relaxed = outcome[("relaxed", 2)]
    fair1 = LINK_BPS / 2

    # (1) One-on-one: near-fair.
    assert jain_index([one[0]] + one[1]) >= 0.9
    assert one[0] >= fair1 * 0.4

    # (2) The §VI-B caveat: against multiple loss-driven TCPs the
    # delay-based budget yields...
    fair3 = LINK_BPS / 4
    assert three[0] < fair3
    # ...but the failure mode is polite: TCP keeps the link busy and no
    # TCP flow is starved by MARTP.
    assert sum(three[1]) > LINK_BPS * 0.5

    # (3) The trade-off knob: a relaxed delay threshold (tolerating the
    # TCP-built standing queue instead of backing off from it) buys the
    # share back and restores the fairness index.
    assert relaxed[0] > two[0] * 2
    assert jain_index([relaxed[0]] + relaxed[1]) > jain_index([two[0]] + two[1]) + 0.2
    # Either way the standing queue (TCP's doing) stays in the hundreds
    # of ms — the latency price the paper's trade-off weighs.
    assert relaxed[2] > 0.1
