"""E3 — Section IV-A: the wireless access-network survey, measured.

For each access technology the paper quotes real-world throughput and
latency figures.  This benchmark *measures* those quantities end-to-end
through the corresponding stochastic link models: a greedy probe flow
reports achieved downlink throughput; echo probes report RTT.

Expected shape: the measured numbers land near the paper's quoted
means; HSPA+ shows the largest variance; no cellular technology meets
all three MAR requirements; home WiFi and the 5G KPI profile do.
"""

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table, format_rate, format_time
from repro.analysis.stats import summarize
from repro.simnet.engine import Simulator
from repro.simnet.flows import CBRSource, PacketSink
from repro.simnet.network import Network
from repro.transport.udp import UdpSocket
from repro.wireless.profiles import FIVE_G, HSPA_PLUS, LTE, WIFI_AC, WIFI_HOME, WIFI_N

PROFILES = [HSPA_PLUS, LTE, WIFI_N, WIFI_AC, WIFI_HOME, FIVE_G]
DURATION = 15.0


def measure(profile, seed=61):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("infra")
    net.add_host("phone")
    profile.build_duplex(net, "infra", "phone")
    net.build_routes()

    sink = PacketSink(net["phone"], 80)
    # Saturating probe (2x the profile max) measures achievable rate.
    # Fast links use aggregated probe packets so the event count stays
    # bounded; the rate measurement is unaffected.
    probe_size = max(1400, int(profile.down_max / 1e6) * 40)
    CBRSource(net["infra"], "phone", 80, rate_bps=profile.down_max * 2,
              packet_size=probe_size)

    rtts = []

    def on_pong(packet):
        rtts.append(sim.now - packet.payload["t0"])

    pinger = UdpSocket(net["phone"], 90, on_receive=on_pong)
    echo = UdpSocket(net["infra"], 91,
                     on_receive=lambda p: echo.sendto(p.src, p.src_port, 64,
                                                      kind="pong", t0=p.payload["t0"]))

    def ping():
        pinger.sendto("infra", 91, 64, kind="ping", t0=sim.now)
        if sim.now < DURATION:
            sim.schedule(0.2, ping)

    sim.schedule(0.0, ping)
    sim.run(until=DURATION)

    series = sink.stats.throughput_timeseries(1.0, until=DURATION)
    rates = [r for _, r in series if r > 0]
    return summarize(rates), summarize(rtts)


def test_e3_wireless_survey(benchmark, record_result):
    measurements = run_once(benchmark, lambda: {p.name: measure(p) for p in PROFILES})

    rows = []
    for profile in PROFILES:
        rate_summary, rtt_summary = measurements[profile.name]
        rows.append([
            profile.name,
            format_rate(profile.down_mean),
            format_rate(rate_summary.mean),
            f"{rate_summary.std / max(rate_summary.mean, 1):.0%}",
            format_time(profile.rtt),
            format_time(rtt_summary.mean),
            "yes" if profile.mar_ready() else "no",
        ])
    table = ascii_table(
        ["technology", "paper downlink", "measured", "CoV", "paper RTT",
         "measured RTT", "MAR-ready"],
        rows,
        title="Section IV-A — access technologies, paper vs measured",
    )
    record_result("E3_wireless_survey", table)

    for profile in PROFILES:
        rate_summary, rtt_summary = measurements[profile.name]
        # Measured throughput within a factor ~2 of the paper's mean
        # (stochastic rate process + probe overhead).
        assert rate_summary.mean == pytest.approx(profile.down_mean, rel=0.8), profile.name
        # Measured RTT at least the propagation floor, near quoted value.
        assert rtt_summary.mean >= profile.rtt * 0.9, profile.name
        assert rtt_summary.mean < profile.rtt + profile.rtt_jitter + 0.4, profile.name

    hspa_rate, _ = measurements["HSPA+"]
    wifi_home_rate, _ = measurements["WiFi(controlled)"]
    # HSPA+ variance (CoV) exceeds controlled WiFi's.
    assert hspa_rate.std / hspa_rate.mean > wifi_home_rate.std / wifi_home_rate.mean
    # Ordering: LTE ~ faster than HSPA+, 5G fastest.
    assert measurements["LTE"][0].mean > measurements["HSPA+"][0].mean
    assert measurements["5G(KPI)"][0].mean > measurements["LTE"][0].mean
