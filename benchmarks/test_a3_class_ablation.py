"""A3 — ablation (Section VI-A/B): do traffic classes actually help?

The same MAR workload runs through a congested uplink twice:

1. **classful** — the four-stream Figure 4 set with distinct classes
   and priorities (MARTP as proposed);
2. **classless** — identical streams flattened to one priority level
   and one best-effort class (what a class-blind transport would do).

Expected shape: under congestion the classful run keeps metadata
delivery ~100 % and reference frames in-time, shedding interframes; the
classless run spreads the pain uniformly, losing critical data — the
core argument for property (1) of Section VI.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.core.metrics import mos_score
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.core.traffic import Priority, StreamSpec, TrafficClass, mar_baseline_streams

DURATION = 20.0
UP_BPS = 2.5e6   # well under the ~9.3 Mb/s the workload offers


def flatten(streams):
    """Strip class/priority structure: everything best-effort, equal."""
    flat = []
    for s in streams:
        flat.append(StreamSpec(
            stream_id=s.stream_id,
            name=s.name,
            traffic_class=TrafficClass.FULL_BEST_EFFORT,
            priority=Priority.MEDIUM_NO_DELAY,   # uniform: drop-on-overload
            nominal_rate_bps=s.nominal_rate_bps,
            min_rate_bps=0.0,
            message_bytes=s.message_bytes,
            adjustable=s.adjustable,
            deadline=s.deadline,
        ))
    return flat


def run_variant(classful, seed=111):
    scenario = ScenarioBuilder(seed=seed).single_path(rtt=0.030, up_bps=UP_BPS)
    streams = mar_baseline_streams() if classful else flatten(mar_baseline_streams())
    session = OffloadSession(scenario, streams=streams)
    report = session.run(DURATION)
    return report


def evaluate_with_true_semantics(report):
    """Re-label the classless run's streams with the application's real
    classes/priorities so QoE is judged against actual needs, not the
    flattened declaration the class-blind transport saw."""
    import dataclasses

    true_specs = {s.stream_id: s for s in mar_baseline_streams()}
    relabelled = {
        sid: dataclasses.replace(
            r,
            traffic_class=true_specs[sid].traffic_class,
            priority=true_specs[sid].priority,
        )
        for sid, r in report.per_class.items()
    }
    return dataclasses.replace(report, per_class=relabelled)


def test_a3_traffic_class_ablation(benchmark, record_result):
    classful, classless_raw = run_once(
        benchmark, lambda: (run_variant(True), run_variant(False))
    )
    classless = evaluate_with_true_semantics(classless_raw)

    rows = []
    for label, report in (("classful (MARTP)", classful), ("classless", classless)):
        for sid, r in sorted(report.per_class.items()):
            rows.append([
                label, r.name, f"{r.delivery_ratio:.1%}", f"{r.in_time_ratio:.1%}",
                f"{r.shed_ratio:.1%}",
            ])
        rows.append([label, "-> MOS", f"{mos_score(report):.2f}", "", ""])
    table = ascii_table(
        ["variant", "stream", "delivery", "in-time", "shed"],
        rows,
        title=f"Ablation A3 — classes on/off over a {UP_BPS / 1e6:.1f} Mb/s uplink",
    )
    record_result("A3_class_ablation", table)

    # Classful: metadata fully protected; the interframe stream absorbs
    # the congestion by *generating* less (adaptive source follows its
    # collapsed allocation — video quality well below nominal).
    assert classful.per_class[0].delivery_ratio >= 0.999
    assert classful.mean_video_quality < 0.5
    # Classless: the metadata stream is starved to its proportional
    # share — it moves far fewer messages than its nominal rate needs
    # (77 vs ~200 at 16 Kb/s x 20 s), while the classful run sustains it.
    expected_meta = int(16_000 * DURATION / (200 * 8))
    assert classless.per_class[0].received < 0.6 * expected_meta
    assert classful.per_class[0].received > 0.9 * expected_meta
    # Reference frames survive better with classes.
    assert (classful.per_class[2].delivery_ratio
            >= classless.per_class[2].delivery_ratio - 0.02)
    # And the overall experience is better.
    assert mos_score(classful) > mos_score(classless)
