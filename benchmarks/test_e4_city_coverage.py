"""E4 — Section IV-A4: the city coverage/handover study.

Castignani et al. (quoted by the paper): in a medium-sized French city
WiFi was nominally available 98.9 % of the time (3G: 99.23 %) but an
actual Internet connection was possible only 53.8 % of the time, due to
closed APs, association delay and multi-second handover gaps.

A random-waypoint walker crosses an urban AP deployment for an hour;
every second is classified radio-covered / actually-usable / cellular.

Expected shape: in-range ~99 %, usable 50-65 %, cellular > 95 %, and
dozens of handovers per hour.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.analysis.stats import mean
from repro.wireless.handover import CoverageMap
from repro.wireless.mobility import RandomWaypoint

SEEDS = [1, 2, 3, 4, 5]
WALK_SECONDS = 3600


def run_walks():
    traces = []
    for seed in SEEDS:
        coverage = CoverageMap.urban(seed=seed)
        walk = RandomWaypoint(seed=seed).trajectory(WALK_SECONDS, tick=1.0)
        traces.append(coverage.connectivity(walk))
    return traces


def test_e4_city_coverage(benchmark, record_result):
    traces = run_once(benchmark, run_walks)

    in_range = mean([t.wifi_in_range_fraction for t in traces])
    usable = mean([t.wifi_usable_fraction for t in traces])
    cellular = mean([t.cellular_fraction for t in traces])
    any_conn = mean([t.any_connectivity_fraction for t in traces])
    handovers = mean([float(t.handover_count()) for t in traces])

    table = ascii_table(
        ["quantity", "paper (Wi2Me)", "measured (5 walks x 1 h)"],
        [
            ["WiFi radio coverage", "98.9 %", f"{in_range:.1%}"],
            ["WiFi usable (internet)", "53.8 %", f"{usable:.1%}"],
            ["cellular coverage", "99.23 %", f"{cellular:.1%}"],
            ["any connectivity", "-", f"{any_conn:.1%}"],
            ["AP handovers per hour", "-", f"{handovers:.0f}"],
        ],
        title="Section IV-A4 — city coverage study",
    )
    record_result("E4_city_coverage", table)

    assert in_range > 0.95                       # radio almost everywhere
    assert 0.45 < usable < 0.70                  # but barely half usable
    assert usable < in_range - 0.25              # the paper's headline gap
    assert cellular > 0.93
    assert any_conn > usable                     # multipath's opportunity
    assert handovers > 10
