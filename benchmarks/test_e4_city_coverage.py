"""E4 — Section IV-A4: the city coverage study, at metro scale.

Two halves, one report:

**Walker study (Wi2Me).**  Castignani et al. (quoted by the paper): in
a medium-sized French city WiFi was nominally available 98.9 % of the
time (3G: 99.23 %) but an actual Internet connection was possible only
53.8 % of the time, due to closed APs, association delay and
multi-second handover gaps.  A random-waypoint walker crosses an urban
AP deployment for an hour; every second is classified radio-covered /
actually-usable / cellular.  Expected shape: in-range ~99 %, usable
50-65 %, cellular > 95 %, dozens of handovers per hour.

**Metro population study (repro.scale).**  The same question asked at
the paper's §IV scale — given 10^6 concurrent MAR users across a metro
cell deployment, what fraction of user time is the network actually
*MAR-usable*?  The hybrid-fidelity layer (docs/SCALE.md) runs every
cell's background load as a fluid process and drops event-level
foreground sessions into each cell under that load: the walker study's
radio/usable gap reappears as the gap between cells that are *covered*
and cell-time that meets the §III-B MAR requirements under load.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.analysis.stats import mean
from repro.fleet import run_campaign
from repro.scale.shards import CITY_BUDGETS, city_coverage_campaign, city_users
from repro.wireless.handover import CoverageMap
from repro.wireless.mobility import RandomWaypoint

SEEDS = [1, 2, 3, 4, 5]
WALK_SECONDS = 3600

#: The metro tier: 512 cells / ~10^6 distinct background users.
CITY_BUDGET = "metro"


def run_walks():
    traces = []
    for seed in SEEDS:
        coverage = CoverageMap.urban(seed=seed)
        walk = RandomWaypoint(seed=seed).trajectory(WALK_SECONDS, tick=1.0)
        traces.append(coverage.connectivity(walk))
    return traces


def run_city():
    return run_campaign(city_coverage_campaign(CITY_BUDGET), workers=1)


def run_study():
    return run_walks(), run_city()


def test_e4_city_coverage(benchmark, record_result):
    traces, city = run_once(benchmark, run_study)

    in_range = mean([t.wifi_in_range_fraction for t in traces])
    usable = mean([t.wifi_usable_fraction for t in traces])
    cellular = mean([t.cellular_fraction for t in traces])
    any_conn = mean([t.any_connectivity_fraction for t in traces])
    handovers = mean([float(t.handover_count()) for t in traces])

    walk_table = ascii_table(
        ["quantity", "paper (Wi2Me)", "measured (5 walks x 1 h)"],
        [
            ["WiFi radio coverage", "98.9 %", f"{in_range:.1%}"],
            ["WiFi usable (internet)", "53.8 %", f"{usable:.1%}"],
            ["cellular coverage", "99.23 %", f"{cellular:.1%}"],
            ["any connectivity", "-", f"{any_conn:.1%}"],
            ["AP handovers per hour", "-", f"{handovers:.0f}"],
        ],
        title="Section IV-A4 — city coverage study",
    )

    agg = city.aggregate
    budget = CITY_BUDGETS[CITY_BUDGET]
    users = city_users(agg)
    rho = agg.moments["scale.utilization"].mean
    mar_ready = agg.moments["scale.mar_ready_fraction"].mean
    service = agg.moments["scale.service_fraction"].mean
    mos = agg.moments["mos"].mean
    promoted = agg.counts.get("scale.promoted_sessions", 0)
    city_table = ascii_table(
        ["quantity", "value"],
        [
            ["cells / cohort sessions", f"{budget.n_cells} / "
                                        f"{agg.counts['sessions']}"],
            ["background users", f"{users:,}"],
            ["mean cell utilization", f"{rho:.2f}"],
            ["user-time served", f"{service:.1%}"],
            ["cell-time MAR-ready (III-B)", f"{mar_ready:.1%}"],
            ["contention promotions", f"{promoted}"],
            ["foreground MOS under load", f"{mos:.2f}/5"],
        ],
        title=f"Metro population study — repro.scale, "
              f"budget={CITY_BUDGET}",
    )
    record_result("E4_city_coverage", walk_table + "\n\n" + city_table)

    # Walker study: the paper's headline numbers.
    assert in_range > 0.95                       # radio almost everywhere
    assert 0.45 < usable < 0.70                  # but barely half usable
    assert usable < in_range - 0.25              # the paper's headline gap
    assert cellular > 0.93
    assert any_conn > usable                     # multipath's opportunity
    assert handovers > 10

    # Metro study: the same gap at population scale.
    assert users >= 10**6                        # a real metro population
    assert len(city.outcomes) == budget.n_cells * budget.cohort
    assert not city.quarantined
    assert service > 0.80                        # most user-time served...
    assert mar_ready < 0.50                      # ...but MAR-ready well
    assert mar_ready > 0.0                       #    under half of cell-time
    assert 1.0 <= mos <= 5.0
    assert promoted > 0                          # contention tier exercised
