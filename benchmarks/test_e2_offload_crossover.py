"""E2 — Section III equations: when does offloading win?

Sweeps the (one-way latency, uplink bandwidth) plane for each device
and marks where P_offloading beats P_local and where it also meets the
application deadline δa.

Expected shape: on weak devices offloading wins almost everywhere; on
desktops it wins nowhere interesting; the deadline-feasible region
shrinks as RTT grows, with the crossover for the gaming archetype
falling well under 75 ms RTT.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.mar.application import APP_ARCHETYPES
from repro.mar.compute import ExecutionBudget, local_delay, offloading_delay
from repro.mar.devices import CLOUD, DESKTOP, SMART_GLASSES, SMARTPHONE

GAMING = APP_ARCHETYPES["gaming"]

LATENCIES = [0.002, 0.005, 0.010, 0.020, 0.040, 0.080]
BANDWIDTH = 20e6


def sweep():
    grid = {}
    for device in (SMART_GLASSES, SMARTPHONE, DESKTOP):
        row = []
        for latency in LATENCIES:
            budget = ExecutionBudget(BANDWIDTH, 50e6, latency)
            remote = offloading_delay(device, CLOUD, GAMING, budget, use_features=False)
            local = local_delay(device, GAMING)
            wins = remote < local
            feasible = remote < GAMING.deadline
            row.append((remote, wins, feasible))
        grid[device.name] = (local, row)
    return grid


def test_e2_offloading_crossover(benchmark, record_result):
    grid = run_once(benchmark, sweep)

    rows = []
    for device, (local, cells) in grid.items():
        marks = []
        for remote, wins, feasible in cells:
            if feasible and wins:
                marks.append("OF")      # offload and deadline met
            elif wins:
                marks.append("of")      # offload wins but misses δa
            else:
                marks.append(".")       # run locally
        rows.append([device, format_time(local)] + marks)
    table = ascii_table(
        ["device", "P_local"] + [format_time(l) + " owd" for l in LATENCIES],
        rows,
        title=("Section III — offloading decision for the gaming archetype "
               "(OF = offload & in-time, of = offload, . = local)"),
    )
    record_result("E2_offload_crossover", table)

    glasses_local, glasses_cells = grid["smart glasses"]
    desktop_local, desktop_cells = grid["desktop PC"]
    # Offloading always wins on glasses across the sweep, and the
    # glasses are never deadline-feasible locally.
    assert all(wins for _, wins, _ in glasses_cells)
    assert glasses_local > GAMING.deadline
    # A desktop never *needs* the network: local execution meets δa.
    assert desktop_local < GAMING.deadline
    # And beyond trivial latencies offloading stops paying off on it.
    assert not all(wins for _, wins, _ in desktop_cells)
    # The deadline-feasible region for gaming ends below 40 ms one-way
    # (paper: 75 ms round trip budget minus compute/transfer).
    phone_cells = grid["smartphone"][1]
    feasible_latencies = [l for l, (_, _, ok) in zip(LATENCIES, phone_cells) if ok]
    assert feasible_latencies and max(feasible_latencies) <= 0.040
    # Latency monotonically inflates offloaded delay.
    remotes = [r for r, _, _ in phone_cells]
    assert remotes == sorted(remotes)
