"""E8 — extension: the user-cost side of multipath (§V-C + §VI-D).

"Most mobile networks continue to be expensive to the user" — the
reason the paper proposes *three* multipath behaviours rather than just
"use everything".  This benchmark runs the E5 policy sessions, converts
each policy's metered bytes into a monthly bill for one hour of daily
MAR use, and prices the quality difference.

Expected shape: the aggregate policy posts a dramatically higher bill
on a small plan (quota overrun) than the WiFi-preferred policy, for a
modest MOS gain; WiFi-preferred stays inside every plan's quota — the
economics that make it the sensible default.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.core.metrics import mos_score
from repro.core.scheduler import MultipathPolicy
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.mar.dataplan import TYPICAL_PLANS, cheapest_plan, monthly_cost_of_usage

SESSION_SECONDS = 40.0
DAILY_USE_SECONDS = 3600.0


def run_policies():
    out = {}
    for policy in MultipathPolicy:
        scenario = ScenarioBuilder(seed=171).multipath()
        session = OffloadSession(scenario, policy=policy)
        # A couple of WiFi outages so LTE actually gets exercised.
        sched = session.sender.scheduler
        bridge = 1.0   # policy 1 pays for LTE only this long per outage
        for start, end in ((10.0, 14.0), (25.0, 26.0)):
            scenario.sim.schedule(start, sched.set_usable, "wifi", False)
            scenario.sim.schedule(end, sched.set_usable, "wifi", True)
            if (policy is MultipathPolicy.WIFI_ONLY_HANDOVER
                    and end - start > bridge):
                scenario.sim.schedule(start + bridge, sched.set_usable,
                                      "lte", False)
                scenario.sim.schedule(end, sched.set_usable, "lte", True)
        report = session.run(SESSION_SECONDS)
        metered = sum(
            p.bytes_sent for p in sched.paths.values() if p.is_metered
        )
        out[policy] = (metered, report)
    return out


def test_e8_dataplan_economics(benchmark, record_result):
    outcome = run_once(benchmark, run_policies)

    small = TYPICAL_PLANS["small"]
    rows = []
    monthly = {}
    for policy, (metered_session, report) in outcome.items():
        per_day = metered_session * (DAILY_USE_SECONDS / SESSION_SECONDS)
        per_month = per_day * 30
        cost = monthly_cost_of_usage(small, per_day)
        monthly[policy] = (per_month, cost)
        rows.append([
            policy.value,
            f"{per_month / 1e9:.1f} GB/mo",
            f"{small.quota_fraction(per_month):.1f}x quota",
            f"${cost:.0f}/mo (small plan)",
            cheapest_plan(per_month).name,
            f"{mos_score(report):.2f}",
        ])
    table = ascii_table(
        ["policy", "metered data", "vs 2 GB quota", "bill", "cheapest plan", "MOS"],
        rows,
        title="E8 — one hour of daily MAR, priced per §VI-D policy",
    )
    record_result("E8_dataplan_economics", table)

    handover = monthly[MultipathPolicy.WIFI_ONLY_HANDOVER]
    preferred = monthly[MultipathPolicy.WIFI_PREFERRED]
    aggregate = monthly[MultipathPolicy.AGGREGATE]
    # Data usage strictly ordered by policy aggressiveness.
    assert handover[0] < preferred[0] < aggregate[0]
    # The aggregate policy overruns the small plan's quota badly...
    assert aggregate[0] > small.quota_bytes * 2
    assert aggregate[1] > small.monthly_fee * 2
    # ...while a frugal policy stays within it.
    assert handover[0] < small.quota_bytes
    assert handover[1] == small.monthly_fee
