"""F3 — Figure 3: uploads starving a TCP download on an asymmetric link.

Heusse et al.'s experiment (reprinted as the paper's Figure 3): one TCP
download shares an ADSL-like 8:1 asymmetric access link with 0, then 1,
then 2 TCP uploads.  The uplink buffer is oversized (1000 packets), so
once an upload fills it, the download's ACKs sit behind ~12 s of queued
data and its ACK clock collapses.

Expected shape: the download runs near link rate alone, then loses well
over 3x of its throughput the moment the first upload starts.
"""

from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_rate
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.tcp import TcpConnection, TcpListener

PHASE = 30.0


def run_experiment(uplink_buffer=1000):
    sim = Simulator(seed=31)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex(
        "server", "client", 8e6, 1e6, delay=0.01,
        queue_down=DropTailQueue(100), queue_up=DropTailQueue(uplink_buffer),
    )
    net.build_routes()

    TcpListener(net["client"], 80)
    TcpListener(net["server"], 81)

    download = TcpConnection(net["server"], 5000, "client", 80)
    download.on_established = download.send_forever
    download.connect()

    uploads = [
        TcpConnection(net["client"], 6001, "server", 81),
        TcpConnection(net["client"], 6002, "server", 81),
    ]

    def start_upload(conn):
        conn.on_established = conn.send_forever
        conn.connect()

    sim.schedule(PHASE, start_upload, uploads[0])
    sim.schedule(2 * PHASE, start_upload, uploads[1])

    samples = []

    def sample():
        samples.append((sim.now, download.snd_una))
        if sim.now < 3 * PHASE:
            sim.schedule(1.0, sample)

    sim.schedule(1.0, sample)
    sim.run(until=3 * PHASE)
    return samples, uploads


def phase_rate(samples, t0, t1):
    start = next(v for t, v in samples if t >= t0)
    end = next(v for t, v in samples if t >= t1 - 1.5)
    return (end - start) * 8 / (t1 - t0)


def test_fig3_upload_starves_download(benchmark, record_result):
    samples, uploads = run_once(benchmark, run_experiment)

    alone = phase_rate(samples, 2, PHASE)
    one_up = phase_rate(samples, PHASE + 2, 2 * PHASE)
    two_up = phase_rate(samples, 2 * PHASE + 2, 3 * PHASE)

    throughput_series = [
        (t1, (v1 - v0) * 8)
        for (t0, v0), (t1, v1) in zip(samples, samples[1:])
    ]
    fig = Figure(
        "Figure 3 — download goodput; uploads start at t=30 s and t=60 s",
        x_label="time (s)", y_label="goodput (b/s)",
    )
    fig.add_series("download", throughput_series)
    table = ascii_table(
        ["phase", "download goodput", "vs alone"],
        [
            ["download alone", format_rate(alone), "1.0x"],
            ["+1 upload", format_rate(one_up), f"{alone / max(one_up, 1):.0f}x slower"],
            ["+2 uploads", format_rate(two_up), f"{alone / max(two_up, 1):.0f}x slower"],
        ],
    )
    record_result("F3_asymmetric_tcp", fig.render() + "\n\n" + table)

    # Alone, the download uses most of the 8 Mb/s downlink.
    assert alone > 5e6
    # A single upload on the oversized-buffer uplink collapses it >= 3x
    # (the paper's figure shows an order of magnitude).
    assert one_up < alone / 3
    # A second upload makes things strictly worse.
    assert two_up <= one_up * 1.2
    # The uploads themselves do make progress (they're not starved).
    assert uploads[0].snd_una > 1_000_000
