"""A5 — extension: RSVP-style QoS reservation for an MAR flow (§V-A1).

"The possibility to provide QoS guarantees on specific AR applications
could be a commercial argument for mobile broadband operators."  A MAR
uplink flow shares a 6 Mb/s access link with an aggressive 4x overload
of best-effort cross traffic, with and without a reservation.

Expected shape: without the reservation, the MAR flow's delay explodes
(shared FIFO) and it loses packets; with it, delay stays within a few
ms and delivery is complete, while the cross traffic still gets the
unreserved remainder.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_rate, format_time
from repro.simnet.engine import Simulator
from repro.simnet.flows import CBRSource, PacketSink
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.rsvp import ReservationTable

LINK_BPS = 6e6
MAR_BPS = 1.5e6
CROSS_BPS = 24e6
DURATION = 15.0


def run_variant(reserved: bool, seed=131):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, LINK_BPS, delay=0.008,
                   queue_up=DropTailQueue(400))
    net.build_routes()
    if reserved:
        ReservationTable(net).reserve_path("client", "server", "mar-flow", 2e6)
    mar_sink = PacketSink(net["server"], 80)
    cross_sink = PacketSink(net["server"], 81)
    CBRSource(net["client"], "server", 80, rate_bps=MAR_BPS, packet_size=800,
              flow="mar-flow")
    CBRSource(net["client"], "server", 81, rate_bps=CROSS_BPS, packet_size=1200,
              flow="cross")
    sim.run(until=DURATION)
    return mar_sink, cross_sink


def test_a5_reservation_protects_mar_flow(benchmark, record_result):
    (mar_plain, cross_plain), (mar_rsvp, cross_rsvp) = run_once(
        benchmark, lambda: (run_variant(False), run_variant(True))
    )

    expected_mar = MAR_BPS * DURATION / (800 * 8)

    def row(label, mar_sink, cross_sink):
        return [
            label,
            format_time(mar_sink.stats.mean_delay()),
            format_time(mar_sink.stats.delay_percentile(95)),
            f"{mar_sink.stats.packets_total / expected_mar:.0%}",
            format_rate(cross_sink.stats.throughput_bps(1, DURATION)),
        ]

    table = ascii_table(
        ["uplink", "MAR delay (mean)", "MAR p95", "MAR delivered",
         "cross-traffic rate"],
        [
            row("best effort (shared FIFO)", mar_plain, cross_plain),
            row("with 2 Mb/s reservation", mar_rsvp, cross_rsvp),
        ],
        title="A5 — RSVP-style reservation under 4x best-effort overload",
    )
    record_result("A5_rsvp_reservation", table)

    # Without reservation: bufferbloat delay and real loss.
    assert mar_plain.stats.mean_delay() > 0.05
    assert mar_plain.stats.packets_total < expected_mar * 0.9
    # With reservation: milliseconds and complete delivery.
    assert mar_rsvp.stats.mean_delay() < 0.02
    assert mar_rsvp.stats.packets_total >= expected_mar * 0.98
    # The cross traffic still gets most of the unreserved capacity.
    assert cross_rsvp.stats.throughput_bps(1, DURATION) > (LINK_BPS - 2e6) * 0.6
