"""E9 — extension: MARTP through a commute trace (tunnel outage).

The paper's variance argument (§IV-C: "no congestion control algorithm
is prompt enough to accommodate the abrupt changes in throughput
inherent to present wireless networks") stressed with the canonical
worst case: an LTE link replaying a bus commute — good signal at a
stop, degraded while driving, an 8 s tunnel blackout, recovery.

MARTP and a TCP bulk flow ride the same trace.  Expected shape: MARTP's
critical metadata survives the whole loop (delayed through the tunnel,
never lost); its budget collapses during the outage (feedback timeout)
and re-grows within seconds of recovery; TCP stalls through the tunnel
into RTO backoff and also recovers — but MARTP kept *serving* (shedding
video) where TCP served nothing.
"""

from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_rate
from repro.analysis.stats import timeseries_bins
from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import PathState
from repro.core.traffic import mar_baseline_streams
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.simnet.replay import TraceReplayLink, commute_trace
from repro.transport.tcp import TcpConnection, TcpListener
from repro.transport.udp import UdpSocket

LOOP = 68.0   # one commute loop: 20 good + 20 driving + 8 tunnel + 20 driving


def build_commute_net(seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    uplink = TraceReplayLink(sim, net["client"], net["server"], commute_trace(),
                             delay=0.025, queue=DropTailQueue(400))
    net.links.append(uplink)
    net.add_link("server", "client", 50e6, delay=0.025)
    net.build_routes()
    return sim, net, uplink


def run_martp(seed=191):
    sim, net, uplink = build_commute_net(seed)
    streams = mar_baseline_streams()
    receiver = MartpReceiver(net["server"], 7000, streams)
    endpoint = PathEndpoint(state=PathState(name="lte"),
                            socket=UdpSocket(net["client"], 6000),
                            dst="server", dst_port=7000)
    sender = MartpSender([endpoint], streams)
    sender.start()
    for stream_id in (0, 1, 3):
        sender.attach_rate_driver(stream_id)
    # Reference frames at their nominal cadence.
    def ref_frame():
        sender.submit(2, 1200)
        sim.schedule(1.0 / 52, ref_frame)   # ~0.5 Mb/s in 1200 B units
    sim.schedule(0.0, ref_frame)
    sim.run(until=LOOP)
    return sender, receiver


def run_tcp(seed=191):
    sim, net, uplink = build_commute_net(seed)
    deliveries = []
    TcpListener(net["server"], 80,
                on_accept=lambda c: setattr(
                    c, "on_data", lambda n: deliveries.append((sim.now, n))))
    conn = TcpConnection(net["client"], 5000, "server", 80)
    conn.on_established = conn.send_forever
    conn.connect()
    sim.run(until=LOOP)
    return conn, deliveries


def goodput(log, t0, t1):
    return sum(n for t, n in log if t0 < t <= t1) * 8 / (t1 - t0)


def test_e9_commute_resilience(benchmark, record_result):
    (sender, receiver), (tcp, tcp_log) = run_once(
        benchmark, lambda: (run_martp(), run_tcp()))

    # Phase map: good 0-20, driving 20-40, tunnel 40-48, driving 48-68.
    phases = [("at the stop (15 Mb/s)", 2, 20), ("driving (4 Mb/s)", 22, 40),
              ("tunnel (outage)", 41, 48), ("after tunnel (4 Mb/s)", 50, 68)]

    def martp_rate(t0, t1):
        vals = [r[3] for t, r in sender.offered_rate_trace() if t0 <= t < t1]
        return sum(vals) / len(vals) if vals else 0.0

    rows = []
    for name, t0, t1 in phases:
        rows.append([
            name,
            format_rate(martp_rate(t0, t1)),
            format_rate(goodput(tcp_log, t0, t1)),
        ])
    budget_series = timeseries_bins(sender.controller.trace, 2.0)
    fig = Figure("E9 — MARTP budget through the commute (tunnel at 40-48 s)",
                 x_label="time (s)", y_label="budget (b/s)")
    fig.add_series("budget", budget_series)
    table = ascii_table(
        ["phase", "MARTP video allocation", "TCP goodput"],
        rows,
        title="E9 — MARTP vs TCP over the commute trace",
    )
    record_result("E9_commute_resilience", fig.render() + "\n\n" + table)

    # Metadata intact across the loop (delayed in the tunnel, not lost).
    meta = receiver.stream_stats(0)
    offered_meta = sender.stream_stats(0)
    assert meta.received >= (offered_meta.next_seq) * 0.97
    # Budget collapsed in the tunnel and recovered after.
    tunnel_budget = [b for t, b in sender.controller.trace if 42 <= t < 48]
    post_budget = [b for t, b in sender.controller.trace if 55 <= t]
    assert tunnel_budget and min(tunnel_budget) <= sender.controller.min_bps * 1.01
    assert post_budget and max(post_budget) > 2e6
    # TCP stalled through the tunnel...
    assert goodput(tcp_log, 41, 48) < 0.1e6
    assert tcp.timeouts >= 1
    # ...and both made real progress again after it.
    assert goodput(tcp_log, 52, 68) > 1e6
    assert martp_rate(55, 68) > 1e6
