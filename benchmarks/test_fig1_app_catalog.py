"""F1 — Figure 1: MAR usage classes and their resource envelopes.

Figure 1 is a photo collage of four MAR usages (orientation, virtual
memorial, gaming, art).  The reproducible content is the resource
envelope each class implies; this benchmark regenerates a quantitative
catalog: per-archetype frame rate, compute, database and network
demands, plus which offloading strategy each class needs on a
smartphone over a typical WiFi path.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_rate, format_time
from repro.mar.application import APP_ARCHETYPES
from repro.mar.compute import ExecutionBudget, feasible_locally, offloading_delay
from repro.mar.devices import CLOUD, SMARTPHONE

WIFI = ExecutionBudget(bandwidth_up_bps=15e6, bandwidth_down_bps=40e6, latency=0.018)


def build_catalog():
    rows = []
    for name, app in APP_ARCHETYPES.items():
        local_ok = feasible_locally(SMARTPHONE, app)
        offload = offloading_delay(SMARTPHONE, CLOUD, app, WIFI, use_features=True,
                                   local_fraction=0.45)
        offload_ok = offload < app.deadline
        if local_ok:
            verdict = "runs locally"
        elif offload_ok:
            verdict = "needs offloading"
        else:
            verdict = "needs edge (<WiFi RTT)"
        rows.append([
            name,
            f"{app.fps:g}",
            f"{app.megacycles_per_frame:g} Mc",
            f"{app.db_requests_per_s:g}/s x {app.object_bytes // 1000} KB",
            format_time(app.deadline),
            format_rate(app.uplink_bps),
            verdict,
        ])
    return rows


def test_fig1_application_catalog(benchmark, record_result):
    rows = run_once(benchmark, build_catalog)
    rendered = ascii_table(
        ["archetype", "fps", "p(a)/frame", "database d(a) x o(a)", "deadline",
         "offload uplink", "on a smartphone"],
        rows,
        title="Figure 1 — MAR usage classes, quantified (smartphone over WiFi)",
    )
    record_result("F1_app_catalog", rendered)

    verdicts = {r[0]: r[-1] for r in rows}
    # Light orientation apps run locally; gaming cannot.
    assert verdicts["orientation"] == "runs locally"
    assert verdicts["gaming"] != "runs locally"
    # Every archetype is at least serviceable with offloading.
    assert all(v != "impossible" for v in verdicts.values())
