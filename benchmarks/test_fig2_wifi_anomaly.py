"""F2 — Figure 2: the 802.11 performance anomaly.

User A and user B both sit in the 54 Mb/s ring; B then moves into the
18 Mb/s ring.  The paper's claim (after Heusse et al.): A's throughput
falls to roughly B's level even though A never moved, because DCF
shares transmission *opportunities*, not airtime.

Expected shape: phase-1 throughputs equal at the 54/54 analytic value;
phase-2 both collapse to the 54/18 analytic value; A loses ≥ 25 %.
"""

import pytest
from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_rate
from repro.simnet.engine import Simulator
from repro.wireless.wifi import WifiCell, WifiStation, anomaly_throughput

PHASE = 10.0


def run_anomaly():
    sim = Simulator(seed=21)
    cell = WifiCell(sim)
    a = cell.add_station(WifiStation("A", 54e6))
    b = cell.add_station(WifiStation("B", 54e6))
    sim.run(until=PHASE)
    cell.set_rate("B", 18e6)          # B walks into the 18 Mb/s ring
    sim.run(until=2 * PHASE)
    series = {
        "A": [(t, a.throughput_bps(t, t + 1.0)) for t in range(0, int(2 * PHASE))],
        "B": [(t, b.throughput_bps(t, t + 1.0)) for t in range(0, int(2 * PHASE))],
    }
    return a, b, series


def test_fig2_performance_anomaly(benchmark, record_result):
    a, b, series = run_once(benchmark, run_anomaly)

    a1, b1 = a.throughput_bps(1, PHASE), b.throughput_bps(1, PHASE)
    a2, b2 = a.throughput_bps(PHASE + 1, 2 * PHASE), b.throughput_bps(PHASE + 1, 2 * PHASE)
    predicted_equal = anomaly_throughput([54e6, 54e6])[0]
    predicted_mixed = anomaly_throughput([54e6, 18e6])[0]

    fig = Figure("Figure 2 — 802.11 performance anomaly (B moves at t=10 s)",
                 x_label="time (s)", y_label="goodput (b/s)")
    fig.add_series("A (54 Mb/s, static)", series["A"])
    fig.add_series("B (54->18 Mb/s)", series["B"])
    table = ascii_table(
        ["phase", "station A", "station B", "analytic prediction"],
        [
            ["both at 54 Mb/s", format_rate(a1), format_rate(b1), format_rate(predicted_equal)],
            ["B at 18 Mb/s", format_rate(a2), format_rate(b2), format_rate(predicted_mixed)],
        ],
    )
    record_result("F2_wifi_anomaly", fig.render() + "\n\n" + table)

    # Phase 1: equal sharing at the analytic rate.
    assert a1 == pytest.approx(b1, rel=0.1)
    assert a1 == pytest.approx(predicted_equal, rel=0.1)
    # Phase 2: A collapses to B's level although A never moved.
    assert a2 == pytest.approx(b2, rel=0.1)
    assert a2 == pytest.approx(predicted_mixed, rel=0.1)
    assert a2 < a1 * 0.75
