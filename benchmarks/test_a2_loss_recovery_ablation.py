"""A2 — ablation (Section VI-C): loss-recovery mechanisms.

The paper's arithmetic: a retransmission only lands in time when the
RTT is well under half the deadline, so recovery should be selective —
and where ARQ cannot fit, redundancy (FEC, multipath duplication) must
take over.

A loss-recovery-class stream runs over a lossy path at two RTTs (20 ms
— ARQ fits; 60 ms — ARQ cannot) with four mechanisms: none, ARQ, FEC,
and multipath duplication (AGGREGATE policy over two lossy paths).

Expected shape: at 20 ms RTT ARQ ≈ FEC ≫ none; at 60 ms RTT ARQ decays
toward none (recoveries arrive dead) while FEC and duplication hold —
the crossover the paper argues for.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import MultipathPolicy, PathState
from repro.core.traffic import Priority, StreamSpec, TrafficClass
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.udp import UdpSocket

LOSS = 0.06
DEADLINE = 0.075
N_MESSAGES = 1500
SEND_INTERVAL = 0.005


def make_stream(traffic_class, fec):
    return StreamSpec(
        stream_id=0, name="ref", traffic_class=traffic_class,
        priority=Priority.HIGHEST, nominal_rate_bps=2e6, message_bytes=1000,
        deadline=DEADLINE, fec=fec, fec_group=6,
    )


def run_mechanism(mechanism, rtt, seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("client2")
    net.add_host("server")
    # Loss on the data (uplink) direction only, so the experiment
    # isolates recovery of data losses from feedback losses.
    for client in ("client", "client2"):
        net.add_link(client, "server", 20e6, delay=rtt / 2, loss=LOSS,
                     queue=DropTailQueue(1000))
        net.add_link("server", client, 50e6, delay=rtt / 2)
    net.build_routes()

    if mechanism == "none":
        stream = make_stream(TrafficClass.FULL_BEST_EFFORT, fec=False)
    elif mechanism == "arq":
        stream = make_stream(TrafficClass.LOSS_RECOVERY, fec=False)
    elif mechanism == "fec":
        stream = make_stream(TrafficClass.FULL_BEST_EFFORT, fec=True)
    elif mechanism == "duplicate":
        stream = make_stream(TrafficClass.LOSS_RECOVERY, fec=False)
    else:
        raise ValueError(mechanism)

    receiver = MartpReceiver(net["server"], 7000, [stream])
    endpoints = [
        PathEndpoint(state=PathState(name="wifi"),
                     socket=UdpSocket(net["client"], 6000),
                     dst="server", dst_port=7000)
    ]
    policy = MultipathPolicy.WIFI_PREFERRED
    if mechanism == "duplicate":
        endpoints.append(
            PathEndpoint(state=PathState(name="lte", is_metered=True),
                         socket=UdpSocket(net["client2"], 6001),
                         dst="server", dst_port=7000)
        )
        policy = MultipathPolicy.AGGREGATE
    sender = MartpSender(endpoints, [stream], policy=policy)
    sender.start()
    for i in range(N_MESSAGES):
        sim.schedule(i * SEND_INTERVAL, sender.submit, 0, 1000)
    sim.run(until=N_MESSAGES * SEND_INTERVAL + 2.0)

    rx = receiver.stream_stats(0)
    tx = sender.stream_stats(0)
    # Offered = distinct data messages put on the wire (next_seq counts
    # only first transmissions; retransmits and FEC parity excluded).
    offered = tx.next_seq + tx.dropped
    effective = rx.received + rx.recovered  # FEC recoveries count
    in_time = rx.in_time / max(rx.received, 1)
    return {
        "delivery": min(1.0, effective / max(offered, 1)),
        "in_time": in_time,
        # NB: ArqBuffer defines __len__, so test identity, not truthiness.
        "retx": tx.arq.retransmissions if tx.arq is not None else 0,
        "abandoned": tx.arq.abandoned if tx.arq is not None else 0,
    }


def test_a2_loss_recovery_mechanisms(benchmark, record_result):
    mechanisms = ["none", "arq", "fec", "duplicate"]
    rtts = [0.020, 0.060]
    outcome = run_once(
        benchmark,
        lambda: {
            (m, rtt): run_mechanism(m, rtt, seed=101)
            for m in mechanisms for rtt in rtts
        },
    )

    rows = []
    for m in mechanisms:
        for rtt in rtts:
            r = outcome[(m, rtt)]
            rows.append([
                m, f"{rtt * 1000:.0f} ms",
                f"{r['delivery']:.1%}", f"{r['in_time']:.1%}",
                r["retx"], r["abandoned"],
            ])
    table = ascii_table(
        ["mechanism", "RTT", "effective delivery", "in-time (of received)",
         "retransmissions", "abandoned"],
        rows,
        title=f"Ablation A2 — loss recovery at {LOSS:.0%} loss, {DEADLINE * 1000:.0f} ms deadline",
    )
    record_result("A2_loss_recovery", table)

    # Baseline: no recovery loses ~ the loss rate.
    for rtt in rtts:
        assert outcome[("none", rtt)]["delivery"] < 1.0 - LOSS / 2
    # Fast path: ARQ and FEC recover most losses.
    assert outcome[("arq", 0.020)]["delivery"] > 0.97
    assert outcome[("fec", 0.020)]["delivery"] > 0.97
    # Slow path: ARQ stops helping (deadline-aware abandonment)...
    assert outcome[("arq", 0.060)]["abandoned"] > 0
    # ...while FEC and duplication stay effective.
    assert outcome[("fec", 0.060)]["delivery"] > outcome[("arq", 0.060)]["delivery"] - 0.02
    assert outcome[("duplicate", 0.060)]["delivery"] > 0.97
    # Duplication needs no retransmissions at all to get there.
    assert outcome[("duplicate", 0.060)]["retx"] < outcome[("arq", 0.020)]["retx"]
