"""T1 — Table I: the MAR device ecosystem.

Regenerates the device-characteristics table and extends it with the
quantity the paper derives from it: which Figure 1 application
archetypes each platform can run *locally* in time (Eq. 1).  Expected
shape: smart glasses run nothing heavy, smartphones struggle with
gaming, desktops/cloud run everything.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.mar.application import APP_ARCHETYPES
from repro.mar.compute import feasible_locally
from repro.mar.devices import all_devices


def build_tables():
    device_rows = []
    for d in all_devices():
        battery = f"{d.battery_hours[0]:g}-{d.battery_hours[1]:g}h" if d.battery_hours else "unlimited"
        storage = f"{d.storage_gb[0]:g}-{d.storage_gb[1]:g} GB"
        if d.storage_gb[1] >= 1e6:
            storage = "unlimited"
        device_rows.append([
            d.name,
            d.computing_power,
            f"{d.compute_cycles_per_s / 1e9:.1f} Gcyc/s",
            storage,
            battery,
            "/".join(d.network_access),
            d.portability,
        ])
    feasibility_rows = []
    for d in all_devices():
        row = [d.name]
        for name, app in APP_ARCHETYPES.items():
            row.append("yes" if feasible_locally(d, app) else "no")
        feasibility_rows.append(row)
    return device_rows, feasibility_rows


def test_table1_device_ecosystem(benchmark, record_result):
    device_rows, feasibility_rows = run_once(benchmark, build_tables)

    table1 = ascii_table(
        ["platform", "compute", "sustained", "storage", "battery", "network", "portability"],
        device_rows,
        title="Table I — devices participating in a MAR ecosystem",
    )
    table1b = ascii_table(
        ["platform"] + list(APP_ARCHETYPES),
        feasibility_rows,
        title="Derived: local in-time execution feasibility (Eq. 1, P_local < δa)",
    )
    record_result("T1_devices", table1 + "\n\n" + table1b)

    # Shape assertions: the paper's qualitative ordering.
    by_name = {row[0]: row[1:] for row in feasibility_rows}
    assert by_name["smart glasses"] == ["no"] * 4          # glasses run nothing
    assert "no" in by_name["smartphone"]                   # phones can't do it all
    assert by_name["cloud computing"] == ["yes"] * 4       # cloud runs everything
    assert by_name["desktop PC"] == ["yes"] * 4
