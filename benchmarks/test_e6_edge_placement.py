"""E6 — Section VI-F: locating edge datacenters.

Solves min |C| s.t. every (user, application) meets its offloading
deadline, across a sweep of deadline-derived latency budgets, with
three solvers plus the LP lower bound.

Expected shape: local-search <= greedy everywhere; every solver sits
between the LP bound and ln(n) times it; relaxing the deadline
monotonically reduces the number of datacenters; tight AR deadlines
(7 ms class) need several times more sites than relaxed ones.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.edge.assignment import assign_users
from repro.edge.placement import (
    PlacementProblem,
    solve_greedy,
    solve_local_search,
    solve_lp_rounding,
)
from repro.edge.topology import CityTopology

BUDGETS = [0.0045, 0.006, 0.008, 0.012]
SEED = 81


def run_sweep():
    results = []
    for budget in BUDGETS:
        topo = CityTopology.random_city(
            n_users=150, n_sites=36, latency_budget=budget,
            budget_jitter=0.15, seed=SEED,
        )
        if not topo.feasible():
            continue
        problem = PlacementProblem(topo)
        greedy = solve_greedy(problem)
        local = solve_local_search(problem)
        lp = solve_lp_rounding(problem)
        assignment = assign_users(topo, local.chosen)
        results.append((budget, greedy, local, lp, assignment))
    return results


def test_e6_edge_datacenter_placement(benchmark, record_result):
    results = run_once(benchmark, run_sweep)
    assert len(results) >= 3  # the sweep must be mostly feasible

    rows = []
    for budget, greedy, local, lp, assignment in results:
        rows.append([
            format_time(budget),
            greedy.n_datacenters,
            local.n_datacenters,
            lp.n_datacenters,
            f"{lp.lower_bound:.2f}",
            f"{assignment.mean_latency() * 1000:.2f} ms",
        ])
    table = ascii_table(
        ["latency budget (one-way)", "greedy |C|", "local-search |C|",
         "LP-rounding |C|", "LP bound", "mean user latency"],
        rows,
        title="Section VI-F — minimum edge datacenters vs deadline",
    )
    record_result("E6_edge_placement", table)

    for budget, greedy, local, lp, assignment in results:
        assert greedy.feasible and local.feasible and lp.feasible
        assert local.n_datacenters <= greedy.n_datacenters
        assert local.n_datacenters >= lp.lower_bound - 1e-9
        assert assignment.all_assigned

    # Monotone: relaxing the deadline never needs more datacenters.
    counts = [local.n_datacenters for _, _, local, _, _ in results]
    assert counts == sorted(counts, reverse=True)
    # The tight-deadline extreme is substantially more expensive.
    assert counts[0] >= 2 * counts[-1]
