"""E1 — Section III-B: the bandwidth-requirement ladder.

Regenerates the paper's chain of estimates: retina rate → camera-FOV
raw rate → uncompressed 4K60 → lossy-compressed rate → the ~10 Mb/s
minimum for AR-usable video, and checks each rung's magnitude.
"""

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table, format_rate
from repro.mar.video import (
    camera_fov_rate_bps,
    compressed_bitrate,
    raw_retina_rate_bps,
    uncompressed_bitrate,
)
from repro.wireless.profiles import MAR_MIN_UPLINK_BPS, all_profiles


def build_ladder():
    retina_lo, retina_hi = raw_retina_rate_bps()
    # The paper's 9-12 Gb/s range scales the *upper* retina estimate by
    # the 60 and 70 degree fields of view: 10 Mb/s x (60/2)^2 = 9 Gb/s,
    # 10 Mb/s x (70/2)^2 = 12.25 Gb/s.
    _, fov_lo = camera_fov_rate_bps(60.0)
    _, fov_hi = camera_fov_rate_bps(70.0)
    raw_4k = uncompressed_bitrate(3840, 2160, 60, 12)
    compressed_lo = compressed_bitrate(raw_4k, ratio=300)
    compressed_hi = compressed_bitrate(raw_4k, ratio=200)
    return {
        "retina": (retina_lo, retina_hi),
        "fov": (fov_lo, fov_hi),
        "raw4k": raw_4k,
        "compressed": (compressed_lo, compressed_hi),
    }


def test_e1_bandwidth_ladder(benchmark, record_result):
    ladder = run_once(benchmark, build_ladder)

    rows = [
        ["eye -> brain (foveal)", "6-10 Mb/s",
         f"{format_rate(ladder['retina'][0])} - {format_rate(ladder['retina'][1])}"],
        ["60-70 deg camera FOV, raw", "9-12 Gb/s",
         f"{format_rate(ladder['fov'][0])} - {format_rate(ladder['fov'][1])}"],
        ["uncompressed 4K60 12bpp", "711 'Mb/s' (sic: MiB/s)",
         f"{format_rate(ladder['raw4k'])} = {ladder['raw4k'] / 8 / 2**20:.0f} MiB/s"],
        ["lossy-compressed 4K", "20-30 Mb/s",
         f"{format_rate(ladder['compressed'][0])} - {format_rate(ladder['compressed'][1])}"],
        ["minimum AR-usable feed", "~10 Mb/s", format_rate(MAR_MIN_UPLINK_BPS)],
    ]
    table = ascii_table(["quantity", "paper", "reproduced"], rows,
                        title="Section III-B — bandwidth estimate ladder")

    uplink_rows = [
        [p.name, format_rate(p.up_mean),
         "yes" if p.up_mean >= MAR_MIN_UPLINK_BPS else "no"]
        for p in all_profiles()
    ]
    table2 = ascii_table(["technology", "measured uplink", ">= 10 Mb/s floor"],
                         uplink_rows,
                         title="Which access technologies carry the minimal feed?")
    record_result("E1_bandwidth_estimates", table + "\n\n" + table2)

    # Ladder magnitudes.
    assert 6e6 <= ladder["retina"][0] and ladder["retina"][1] <= 10e6
    assert 8e9 < ladder["fov"][0] < 13e9
    assert ladder["raw4k"] / 8 / 2**20 == pytest.approx(711, rel=0.01)
    assert 15e6 < ladder["compressed"][0] < ladder["compressed"][1] < 35e6
    # Today's cellular uplinks sit below the floor (the paper's point).
    failing = [p.name for p in all_profiles()
               if not p.d2d and p.up_mean < MAR_MIN_UPLINK_BPS]
    assert "HSPA+" in failing and "LTE" in failing
