"""T2 — Table II: CloudRidAR offloading latency in four scenarios.

The paper measured the link RTT of a real CloudRidAR deployment:

    local server / WiFi        8 ms
    cloud server / WiFi       36 ms
    university server / WiFi  72 ms
    cloud server / LTE       120 ms

We rebuild each scenario as an emulated path with that unloaded RTT and
run a real feature-offloading session (CloudRidAR split) through it.
Expected shape: measured link RTT reproduces the table row; per-frame
latency rises monotonically with the link RTT; only the low-RTT rows
stay AR-usable.
"""

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import CLOUD, SMARTPHONE
from repro.mar.offload import FeatureOffload, OffloadExecutor
from repro.simnet.engine import Simulator
from repro.simnet.network import Network

SCENARIOS = [
    # (name, paper RTT, downlink, uplink, jitter)
    ("local server / WiFi", 0.008, 150e6, 150e6, 0.001),
    ("cloud server / WiFi", 0.036, 80e6, 40e6, 0.004),
    ("university server / WiFi", 0.072, 80e6, 40e6, 0.006),
    ("cloud server / LTE", 0.120, 20e6, 8e6, 0.010),
]


def run_scenarios():
    rows = []
    for name, rtt, down, up, jitter in SCENARIOS:
        sim = Simulator(seed=11)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", down, up, delay=rtt / 2, jitter=jitter / 2)
        net.build_routes()
        executor = OffloadExecutor(
            net, "client", "server", APP_ARCHETYPES["orientation"],
            FeatureOffload(), SMARTPHONE, server_device=CLOUD,
        )
        result = executor.run(n_frames=300)
        rows.append((name, rtt, result))
    return rows


def test_table2_cloudridar_latency(benchmark, record_result):
    rows = run_once(benchmark, run_scenarios)

    rendered = ascii_table(
        ["scenario", "paper RTT", "measured RTT", "frame latency (mean)",
         "frame p95", "deadline hit"],
        [
            [
                name,
                format_time(paper_rtt),
                format_time(res.mean_link_rtt),
                format_time(res.mean_offloaded_latency),
                format_time(res.percentile(95)),
                f"{res.deadline_hit_rate:.0%}",
            ]
            for name, paper_rtt, res in rows
        ],
        title="Table II — offloading latency on the CloudRidAR scenarios",
    )
    record_result("T2_offload_latency", rendered)

    # Measured link RTT matches the paper's row within jitter.
    for name, paper_rtt, res in rows:
        assert res.mean_link_rtt == pytest.approx(paper_rtt, rel=0.15), name

    # Frame latency ordering follows the RTT ordering.
    latencies = [res.mean_offloaded_latency for _, _, res in rows]
    assert latencies == sorted(latencies)

    # The LTE row is the only one clearly beyond AR usability relative
    # to the local-WiFi baseline (paper: "definitely not suitable").
    assert latencies[-1] - latencies[0] > 0.100
