"""F5 — Figure 5: distributing computation among resources.

The four sub-figures: (a) multipath to multiple servers, (b) home-WiFi
D2D to a companion device plus cloud, (c) LTE-Direct D2D, (d)
WiFi-Direct D2D.  The wearable (lowest-power device) offloads
latency-critical work to whatever is *near*, bulk work to whatever is
*big*.

Expected shape: D2D paths serve the latency-critical class well inside
the 75 ms budget where the cloud-only path cannot; the two-server
multipath splits classes by path; LTE-Direct and WiFi-Direct are both
viable (LTE-Direct slightly faster over distance).
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.core.metrics import mos_score
from repro.core.scheduler import MultipathPolicy
from repro.core.session import OffloadSession, ScenarioBuilder
from repro.wireless.profiles import LTE_DIRECT, WIFI_DIRECT
from repro.wireless.d2d import rate_at_distance

DURATION = 10.0


def latency_of(report, stream_id):
    return report.per_class[stream_id].mean_latency


def run_all():
    results = {}

    # (a) multipath, two servers: WiFi -> edge, LTE -> cloud.
    sc = ScenarioBuilder(seed=51).multipath(two_servers=True)
    session = OffloadSession(sc, policy=MultipathPolicy.AGGREGATE)
    results["(a) multipath + edge server"] = session.run(DURATION)

    # (b) home WiFi D2D to companion (smartphone/PC assists glasses).
    sc = ScenarioBuilder(seed=52).d2d_assist(d2d_rtt=0.004,
                                             d2d_rate_bps=200e6)
    results["(b) home WiFi companion"] = OffloadSession(sc).run(DURATION)

    # (c) LTE-Direct at 300 m.
    rate_c = rate_at_distance(LTE_DIRECT, 300.0, mobility_ms=1.0)
    sc = ScenarioBuilder(seed=53).d2d_assist(d2d_rtt=LTE_DIRECT.rtt,
                                             d2d_rate_bps=rate_c)
    results["(c) LTE-Direct D2D"] = OffloadSession(sc).run(DURATION)

    # (d) WiFi-Direct at 60 m.
    rate_d = rate_at_distance(WIFI_DIRECT, 60.0, mobility_ms=1.0)
    sc = ScenarioBuilder(seed=54).d2d_assist(d2d_rtt=WIFI_DIRECT.rtt,
                                             d2d_rate_bps=rate_d)
    results["(d) WiFi-Direct D2D"] = OffloadSession(sc).run(DURATION)

    # baseline: cloud-only over LTE (what D2D is an alternative to).
    sc = ScenarioBuilder(seed=55).single_path(rtt=0.120, up_bps=8e6,
                                              path_name="lte", metered=True)
    results["cloud over LTE (baseline)"] = OffloadSession(sc).run(DURATION)
    return results


def test_fig5_distributed_offloading(benchmark, record_result):
    results = run_once(benchmark, run_all)

    rows = []
    for name, report in results.items():
        rows.append([
            name,
            format_time(latency_of(report, 2)),          # ref frames (critical path)
            format_time(latency_of(report, 3)),          # interframes (bulk)
            f"{report.per_class[2].in_time_ratio:.0%}",
            f"{mos_score(report):.2f}",
        ])
    table = ascii_table(
        ["approach", "critical latency", "bulk latency", "in-time (critical)", "MOS"],
        rows,
        title="Figure 5 — distributing computation among resources",
    )
    record_result("F5_distributed", table)

    baseline = results["cloud over LTE (baseline)"]
    for name in ("(b) home WiFi companion", "(c) LTE-Direct D2D", "(d) WiFi-Direct D2D"):
        d2d = results[name]
        # D2D cuts critical-path latency by a large factor vs cloud/LTE.
        assert latency_of(d2d, 2) < latency_of(baseline, 2) / 2.5, name
        # And keeps the 75 ms class deadline.
        assert d2d.per_class[2].in_time_ratio > 0.9, name
    # The cloud-over-LTE baseline misses the paper's latency budget.
    assert latency_of(baseline, 2) > 0.060
    # Multipath+edge serves critical traffic within budget too.
    assert results["(a) multipath + edge server"].per_class[2].in_time_ratio > 0.9
