"""A4 — extension: MPTCP for aggregation and handover (Section V-B1).

The paper cites MPTCP for (1) combining WiFi + 4G capacity toward MAR's
bandwidth needs and (2) enhancing WiFi handover.  Both claims measured:

- aggregation: MPTCP goodput over WiFi(10) + LTE(5 Mb/s) vs single-path
  TCP over WiFi alone — expect ~1.4x or better;
- handover: WiFi dies at t=10 s; single-path TCP stalls for good while
  MPTCP re-injects stranded bytes on LTE and keeps delivering — expect
  MPTCP's post-failure goodput ≈ the LTE path rate, single-path ≈ 0.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_rate
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.mptcp import MptcpReceiver, MptcpSender
from repro.transport.tcp import TcpConnection, TcpListener

WIFI_UP = 10e6
LTE_UP = 5e6
DURATION = 30.0
FAIL_AT = 10.0


def build_net(seed=121):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client-wifi")
    net.add_host("client-lte")
    net.add_host("server")
    net.add_duplex("server", "client-wifi", 50e6, WIFI_UP, delay=0.010,
                   queue_up=DropTailQueue(200))
    net.add_duplex("server", "client-lte", 50e6, LTE_UP, delay=0.030,
                   queue_up=DropTailQueue(200))
    net.build_routes()
    return sim, net


def run_single(fail_wifi: bool):
    sim, net = build_net()
    got = []
    TcpListener(net["server"], 80,
                on_accept=lambda c: setattr(c, "on_data",
                                            lambda n: got.append((sim.now, n))))
    conn = TcpConnection(net["client-wifi"], 5000, "server", 80)
    conn.on_established = conn.send_forever
    conn.connect()
    if fail_wifi:
        sim.schedule(FAIL_AT, lambda: setattr(
            net.path_links("client-wifi", "server")[0], "loss", 0.999999))
    sim.run(until=DURATION)
    return got


def run_mptcp(fail_wifi: bool):
    sim, net = build_net()
    receiver = MptcpReceiver(net["server"], [80, 81])
    subflows = [
        TcpConnection(net["client-wifi"], 5000, "server", 80),
        TcpConnection(net["client-lte"], 5001, "server", 81),
    ]
    sender = MptcpSender(subflows)
    sender.on_established = lambda: sender.send(200_000_000)
    sender.connect()
    if fail_wifi:
        def fail():
            net.path_links("client-wifi", "server")[0].loss = 0.999999
            sender.set_alive(0, False)
        sim.schedule(FAIL_AT, fail)
    sim.run(until=DURATION)
    return receiver


def goodput(log, t0, t1):
    return sum(n for t, n in log if t0 < t <= t1) * 8 / (t1 - t0)


def test_a4_mptcp_aggregation_and_handover(benchmark, record_result):
    outcome = run_once(benchmark, lambda: {
        "single": run_single(fail_wifi=False),
        "single-fail": run_single(fail_wifi=True),
        "mptcp": run_mptcp(fail_wifi=False),
        "mptcp-fail": run_mptcp(fail_wifi=True),
    })

    single_rate = goodput(outcome["single"], 2, DURATION)
    mptcp_rate = outcome["mptcp"].throughput_bps(2, DURATION)
    single_after = goodput(outcome["single-fail"], FAIL_AT + 2, DURATION)
    mptcp_after = outcome["mptcp-fail"].throughput_bps(FAIL_AT + 2, DURATION)

    table = ascii_table(
        ["configuration", "goodput"],
        [
            ["single-path TCP (WiFi)", format_rate(single_rate)],
            ["MPTCP (WiFi+LTE)", format_rate(mptcp_rate)],
            ["single-path, after WiFi dies", format_rate(single_after)],
            ["MPTCP, after WiFi dies", format_rate(mptcp_after)],
        ],
        title="A4 — MPTCP aggregation and handover (WiFi 10 + LTE 5 Mb/s)",
    )
    record_result("A4_mptcp_handover", table)

    # Aggregation: both pipes used.
    assert mptcp_rate > single_rate * 1.25
    # Handover: single-path TCP is dead after the WiFi failure...
    assert single_after < 0.2e6
    # ...while MPTCP keeps delivering near the LTE rate.
    assert mptcp_after > LTE_UP * 0.5
