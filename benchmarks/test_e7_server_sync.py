"""E7 — extension: n-way inter-server synchronization (§VI-E).

"The question of inter-server synchronization remains with the need for
n-way synchronization (n being the number of servers)."  Opening more
edge servers reduces user RTT (E6) but multiplies replication traffic
and widens the consistency window.  This benchmark quantifies the
trade: groups of n = 2..8 servers on a metro mesh replicate a stream of
AR state updates.

Expected shape: per-update sync bytes grow linearly with n−1 (the real
cost of "more servers"); the consistency lag is set by the slowest
interlink of the full mesh and stays roughly constant — replication
*cost*, not staleness, is what scales with n.
"""

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.edge.sync import SyncGroup
from repro.simnet.engine import Simulator
from repro.simnet.network import Network

UPDATES = 60
UPDATE_BYTES = 800


def run_group(n, seed=141):
    sim = Simulator(seed=seed)
    net = Network(sim)
    names = [f"s{i}" for i in range(n)]
    for name in names:
        net.add_host(name)
    rng = sim.child_rng("mesh")
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            # Metro interlinks: 2-12 ms one-way, 1 Gb/s.
            delay = rng.uniform(0.002, 0.012)
            net.add_duplex(a, b, 1e9, delay=delay)
    net.build_routes()
    group = SyncGroup(net, names, update_bytes=UPDATE_BYTES)
    for i in range(UPDATES):
        sim.schedule(i * 0.05, group.publish, names[i % n])
    sim.run(until=UPDATES * 0.05 + 1.0)
    return group


def test_e7_sync_scaling(benchmark, record_result):
    groups = run_once(benchmark, lambda: {n: run_group(n) for n in (2, 4, 6, 8)})

    rows = []
    for n, group in groups.items():
        rows.append([
            n,
            format_time(group.mean_lag()),
            f"{group.overhead_bytes_per_update():.0f} B",
            f"{group.sync_bytes_sent / 1e3:.0f} KB",
            group.incomplete(),
        ])
    table = ascii_table(
        ["servers n", "consistency lag", "bytes/update", "total sync", "incomplete"],
        rows,
        title=f"E7 — n-way synchronization cost ({UPDATES} updates of {UPDATE_BYTES} B)",
    )
    record_result("E7_server_sync", table)

    # All updates eventually consistent.
    for group in groups.values():
        assert group.incomplete() == 0
    # Per-update overhead is exactly (n-1) x update size.
    for n, group in groups.items():
        assert group.overhead_bytes_per_update() == pytest.approx(
            (n - 1) * UPDATE_BYTES)
    # Lag bounded by the worst interlink's one-way delay (plus
    # serialization) for every group size — the mesh keeps staleness
    # flat while cost grows.
    lags = [groups[n].mean_lag() for n in (2, 4, 6, 8)]
    assert all(0.002 <= lag < 0.015 for lag in lags)
    # Total sync traffic grows linearly in n for a fixed update rate.
    totals = [groups[n].sync_bytes_sent for n in (2, 4, 6, 8)]
    assert totals == sorted(totals)
    assert totals[-1] == pytest.approx(totals[0] * 7, rel=0.01)
