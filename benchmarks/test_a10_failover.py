"""A10 — Resilient offload failover under edge churn and radio blackout.

Section VI-B: "an AR application should ideally function with degraded
performance even if no network connectivity is available."  This
benchmark injects the two dominant MAR failure modes — edge-server
churn and a radio outage — into one session and compares three
executors:

- **naive** — the plain :class:`OffloadExecutor`: no liveness
  detection, no retry, no fallback.  Frames launched into a dead path
  simply never complete.
- **resilient** — :class:`ResilientOffloadExecutor`: heartbeat
  detection, backoff retries, failover to the next edge server, and a
  circuit breaker that trips to local-only and half-opens to probe
  recovery.
- **local-only** — the paper's graceful-degradation floor: never
  touches the network, pays full on-device compute latency.

Fault plan: the primary edge server crashes at t=5 s (restarting at
t=15 s) and the radio access link blacks out entirely for 3 s starting
at t=10 s — during the blackout *no* server is reachable.

Expected shape: the naive run loses every frame sent into the outages;
the resilient run serves frames in all four phases (pre-fault, failed
over, blackout, recovered), detects the crash within a few heartbeat
intervals, and ends with availability far above the naive run while
local-only remains the slow-but-steady floor.
"""

from conftest import run_once

from repro.analysis.report import Figure, ascii_table, format_time, resilience_table
from repro.core.session import ScenarioBuilder
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, LocalOnly, OffloadExecutor, ResilientOffloadExecutor
from repro.simnet.faults import FaultInjector, FaultPlan

APP = APP_ARCHETYPES["orientation"]
SEED = 101
DURATION = 25.0
N_FRAMES = int(DURATION * APP.fps)
CRASH_AT, CRASH_FOR = 5.0, 10.0
BLACKOUT_AT, BLACKOUT_FOR = 10.0, 3.0
PHASES = [
    ("pre-fault", 0.0, CRASH_AT),
    ("edge crash", CRASH_AT, BLACKOUT_AT),
    ("blackout", BLACKOUT_AT, BLACKOUT_AT + BLACKOUT_FOR),
    ("recovered", BLACKOUT_AT + BLACKOUT_FOR, DURATION),
]


def build_faulted_scenario():
    scenario = ScenarioBuilder(seed=SEED).edge_failover()
    radio_links = [l for l in scenario.net.links if "client" in l.name]
    plan = (
        FaultPlan()
        .server_crash(CRASH_AT, CRASH_FOR, [scenario.server])
        .blackout(BLACKOUT_AT, BLACKOUT_FOR, radio_links)
    )
    FaultInjector(scenario.net).apply(plan)
    return scenario


def run_naive():
    scenario = build_faulted_scenario()
    executor = OffloadExecutor(
        scenario.net, "client", scenario.server, APP, FullOffload(), SMARTPHONE
    )
    return executor.run(n_frames=N_FRAMES, settle=3.0)


def run_resilient():
    scenario = build_faulted_scenario()
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers, APP, FullOffload(), SMARTPHONE
    )
    result = executor.run(n_frames=N_FRAMES, settle=3.0)
    return executor, result


def run_local_only():
    scenario = build_faulted_scenario()
    executor = OffloadExecutor(
        scenario.net, "client", scenario.server, APP, LocalOnly(), SMARTPHONE
    )
    return executor.run(n_frames=N_FRAMES, settle=3.0)


def test_a10_failover(benchmark, record_result):
    naive, (resilient_exec, resilient), local = run_once(
        benchmark, lambda: (run_naive(), run_resilient(), run_local_only())
    )
    report = resilient_exec.resilience_report()

    rows = []
    for name, result in (("naive offload", naive), ("resilient", resilient),
                         ("local-only", local)):
        rows.append([
            name,
            result.frames_sent,
            result.frames_completed,
            f"{1 - result.loss_rate:.1%}",
            format_time(result.mean_latency),
            format_time(result.percentile(95)),
        ])
    table = ascii_table(
        ["executor", "frames", "completed", "served", "mean lat", "p95 lat"],
        rows,
        title=(f"A10 — edge crash @{CRASH_AT:.0f}s for {CRASH_FOR:.0f}s + "
               f"{BLACKOUT_FOR:.0f}s radio blackout @{BLACKOUT_AT:.0f}s"),
    )

    res_table = resilience_table(
        [("resilient", report)],
        title="Resilient executor — failure handling",
    )

    # Service-mode timeline as a step figure.
    order = ["healthy", "suspect", "failed-over", "probing", "degraded-local"]
    fig = Figure("Service mode over time (resilient executor)",
                 x_label="time (s)", y_label="mode (0=healthy .. 4=degraded)")
    pts = []
    timeline = resilient_exec.metrics.mode_timeline
    for (t0, mode), (t1, _) in zip(timeline, timeline[1:] + [(DURATION, None)]):
        level = order.index(mode.value)
        pts.append((t0, level))
        pts.append((max(t0, min(t1, DURATION) - 1e-6), level))
    fig.add_series("mode", pts)

    record_result("A10_failover", table + "\n\n" + res_table + "\n\n" + fig.render())

    # --- shape assertions ---
    # (1) The naive executor lost real work to the outages.
    assert naive.frames_completed < N_FRAMES * 0.8
    # (2) The resilient executor served (almost) everything: offload
    #     where possible, degraded local compute where not.
    assert resilient.frames_completed >= N_FRAMES * 0.98
    assert report.frames_degraded > 0 and report.frames_offloaded > 0
    # (3) Detection was prompt: within a small number of heartbeats.
    assert report.detection_delays
    assert report.mean_detection_time <= 4 * resilient_exec.ping_interval + 0.5
    # (4) Failover actually happened, and the breaker tripped during
    #     the total blackout then recovered (finite MTTR).
    assert report.failovers >= 1
    assert report.breaker_trips >= 1
    assert report.mttr == report.mttr and report.mttr < 8.0   # not NaN, bounded
    # (5) Availability beats the naive run's served fraction.
    assert report.availability > 1 - naive.loss_rate
    # (6) Local-only floor: everything completes, slowly.
    assert local.frames_completed == N_FRAMES
