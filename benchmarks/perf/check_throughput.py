#!/usr/bin/env python
"""repro.check exploration throughput benchmark.

Measures the two costs that size a model-checking budget:

- ``explore`` — end-to-end states/second per harness (one harness
  step + invariants + fingerprint per state, checkpoints amortized
  across siblings);
- ``checkpoint`` — the µs cost of ``Simulator.checkpoint`` and
  ``Checkpoint.restore`` on each harness's freshly built world — the
  deepcopy price the explorer pays per *node* (not per state), and the
  reason the DFS hands a node's live world to its first branch.

Both runs double as a determinism check: exploring the same
``(harness, seed, budget)`` twice must produce identical
``ExploreResult`` dicts — the purity that makes counterexample replay
byte-exact.

Usage::

    python benchmarks/perf/check_throughput.py            # full load
    python benchmarks/perf/check_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

FULL = {"states": {"breaker": 4_500, "degradation": 1_500, "mptcp": 800},
        "snapshots": 60, "repeats": 3}
QUICK = {"states": {"breaker": 300, "degradation": 120, "mptcp": 60},
         "snapshots": 15, "repeats": 2}

DEPTHS = {"breaker": 14, "degradation": 9, "mptcp": 8}


def explore_run(name: str, max_states: int):
    """One timed exploration; returns (wall, result_dict)."""
    from repro.check.explorer import Budget, explore
    from repro.check.harnesses import HARNESSES

    harness = HARNESSES[name]()
    budget = Budget(max_states=max_states, max_depth=DEPTHS[name])
    t0 = time.perf_counter()
    result = explore(harness, seed=0, budget=budget)
    elapsed = time.perf_counter() - t0
    return elapsed, result.to_dict()


def snapshot_cost(name: str, rounds: int):
    """Mean checkpoint/restore µs on the harness's initial world."""
    from repro.check.harnesses import HARNESSES

    harness = HARNESSES[name]()
    world = harness.make_world(seed=0)
    gc.collect()
    t0 = time.perf_counter()
    checkpoints = [world.sim.checkpoint(world) for _ in range(rounds)]
    checkpoint_s = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for cp in checkpoints:
        cp.restore()
    restore_s = (time.perf_counter() - t0) / rounds
    return checkpoint_s * 1e6, restore_s * 1e6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR6.json"),
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of repeat count")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    repeats = args.repeats if args.repeats is not None else cfg["repeats"]

    payload = {
        "bench": "PR6-check-throughput",
        "config": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {},
    }

    print(f"== explore throughput (best of {repeats}) ==", flush=True)
    for name, max_states in sorted(cfg["states"].items()):
        best, reference = None, None
        for _ in range(repeats):
            gc.collect()
            elapsed, result = explore_run(name, max_states)
            if reference is None:
                reference = result
            elif result != reference:
                print(f"ERROR: {name} explorations diverged across "
                      f"identical runs", file=sys.stderr)
                return 1
            if best is None or elapsed < best:
                best = elapsed
        rate = reference["states"] / best if best > 0 else 0.0
        print(f"   {name:<12} {reference['states']:>6} states in "
              f"{best * 1e3:7.1f} ms  ({rate:8,.0f} states/s, "
              f"{reference['unique_states']} unique)")
        payload["benchmarks"][name] = {
            "states": reference["states"],
            "unique_states": reference["unique_states"],
            "best_seconds": best,
            "states_per_second": rate,
            "deterministic": True,
        }

    print(f"== checkpoint/restore cost ({cfg['snapshots']} rounds) ==")
    for name in sorted(cfg["states"]):
        cp_us, rs_us = snapshot_cost(name, cfg["snapshots"])
        print(f"   {name:<12} checkpoint {cp_us:8.1f} us   "
              f"restore {rs_us:8.1f} us")
        payload["benchmarks"][name]["checkpoint_us"] = cp_us
        payload["benchmarks"][name]["restore_us"] = rs_us

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"-> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
