#!/usr/bin/env python
"""Whole-repo simlint wall-time benchmark -> ``BENCH_PR9.json``.

Lints the repository tree twice — serially (``jobs=1``) and across
``usable_cpus()`` fork workers — recording wall time, files/sec, and
the parallel speedup, plus a fingerprint asserting both modes produced
the byte-identical finding list (the parallel-lint contract: workers
only run the per-file rules; the whole-program pass always runs once
in the driver, and findings are sorted before output).

Usage::

    python benchmarks/perf/lint_speed.py                 # full tree
    python benchmarks/perf/lint_speed.py --quick         # src/ only
    python benchmarks/perf/lint_speed.py --gate --baseline BENCH_PR9.json

Gates (``--gate``):

- serial/parallel finding identity is enforced unconditionally;
- with ``--baseline`` and a matching config, the fresh serial wall
  time must stay under ``baseline * (1 + --tolerance)`` (default
  tolerance 1.0, i.e. a 2x slowdown fails — generous because absolute
  wall time tracks the host, and CI shares a runner class);
- on hosts with >= 2 usable cores the parallel run must not be more
  than 10% slower than serial (speedup >= 0.9) — parallelism may not
  pay on a loaded box, but it must never be a regression.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fleet.workers import usable_cpus  # noqa: E402
from repro.lint import lint_paths  # noqa: E402

FULL = dict(paths=("src", "tests", "benchmarks", "examples"), repeats=3)
QUICK = dict(paths=("src",), repeats=1)

#: Floor for parallel speedup on multi-core hosts (never a regression).
GATE_SPEEDUP_FLOOR = 0.9


def _fingerprint(findings) -> str:
    payload = json.dumps([f.to_dict() for f in findings], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _timed(paths, jobs: int, repeats: int):
    """Best-of-N wall time; returns (seconds, findings, files_checked)."""
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        findings, checked = lint_paths(paths, root=REPO, jobs=jobs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, findings, checked)
    return best


def run_bench(cfg: dict, workers: int) -> dict:
    paths = [str(REPO / p) for p in cfg["paths"] if (REPO / p).is_dir()]
    repeats = cfg["repeats"]

    serial_t, serial_findings, checked = _timed(paths, 1, repeats)
    parallel_t, parallel_findings, checked_p = _timed(paths, workers,
                                                      repeats)
    identical = (serial_findings == parallel_findings
                 and checked == checked_p)
    speedup = serial_t / parallel_t if parallel_t > 0 else float("inf")

    def row(elapsed: float) -> dict:
        return {"seconds": elapsed,
                "files_per_sec": checked / elapsed if elapsed > 0 else 0.0}

    print(f"   serial   ({checked} files): {serial_t:6.2f}s  "
          f"{row(serial_t)['files_per_sec']:7.1f} files/s", flush=True)
    print(f"   parallel ({workers} workers): {parallel_t:6.2f}s  "
          f"speedup {speedup:.2f}x", flush=True)

    return {
        "files": checked,
        "findings": len(serial_findings),
        "serial": row(serial_t),
        "parallel": {**row(parallel_t), "workers": workers,
                     "speedup": speedup},
        "findings_identical": identical,
        "fingerprint": _fingerprint(serial_findings),
    }


def apply_gate(stats: dict, usable: int, baseline: dict | None,
               config: str, tolerance: float) -> dict:
    checks = []
    if baseline is not None and baseline.get("config") == config:
        base = baseline["benchmarks"]["lint_speed"]["serial"]["seconds"]
        ceiling = base * (1.0 + tolerance)
        got = stats["serial"]["seconds"]
        checks.append({
            "check": f"serial wall time <= {ceiling:.2f}s "
                     f"(baseline {base:.2f}s + {tolerance:.0%})",
            "value": got,
            "ok": got <= ceiling,
        })
    if usable >= 2:
        speedup = stats["parallel"]["speedup"]
        checks.append({
            "check": f"parallel speedup >= {GATE_SPEEDUP_FLOOR}",
            "value": speedup,
            "ok": speedup >= GATE_SPEEDUP_FLOOR,
        })
    return {
        "applied": bool(checks),
        "skipped_reason": (None if checks else
                           f"no comparable baseline, {usable} usable core(s)"),
        "checks": checks,
        "pass": all(c["ok"] for c in checks),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="src/ only, single repeat (CI smoke)")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR9.json"),
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="fail on wall-time or scaling regression")
    parser.add_argument("--baseline", default=None,
                        help="checked-in baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="allowed fractional slowdown vs baseline "
                             "(default 1.0 = 2x)")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    config = "quick" if args.quick else "full"
    usable = usable_cpus()
    workers = max(2, usable)

    baseline = None
    if args.baseline:
        try:
            baseline = json.loads(pathlib.Path(args.baseline).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    print(f"== lint_speed (whole-repo simlint wall time) ==\n"
          f"   cpu_count {os.cpu_count()}, usable {usable}", flush=True)
    stats = run_bench(cfg, workers)
    gate = apply_gate(stats, usable, baseline, config, args.tolerance)

    payload = {
        "bench": "PR9-lint-speed",
        "config": config,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "benchmarks": {"lint_speed": {**stats, "gate": gate}},
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if not stats["findings_identical"]:
        print("ERROR: serial and parallel lint findings diverged",
              file=sys.stderr)
        return 1
    if args.gate:
        if not gate["applied"]:
            print(f"lint gate skipped: {gate['skipped_reason']} "
                  "(identity check still enforced)")
        else:
            for c in gate["checks"]:
                print(f"gate: {c['check']}: "
                      f"{'PASS' if c['ok'] else 'FAIL'} ({c['value']:.2f})")
            if not gate["pass"]:
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
