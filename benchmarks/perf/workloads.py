"""Perf workloads: each runs against any engine exposing the Simulator API.

Three workloads establish the perf trajectory the ROADMAP calls for:

- ``event_throughput`` — raw schedule/fire rate on a ring of
  self-rescheduling callbacks (no cancellations): the floor cost of one
  event.
- ``rearm_heavy`` — the cancelled-timer-heavy pattern of a loaded
  transport: per-"connection" feedback every millisecond, each feedback
  re-arming a retransmission timer parked far in the future.  On the
  pre-overhaul engine every re-arm leaves a dead heap entry until its
  stale deadline passes; steady state carries ``horizon / feedback``
  dead entries *per connection*.
- ``tcp_transfer`` — a real TCP-over-DuplexLink bulk transfer (lossy,
  jittery, windowed ``run(until=...)`` loop), exercising the full
  packet/link/transport stack on the engine under test.

Every workload returns ``(elapsed_wall_seconds, stats_dict)``; stats
include a determinism fingerprint where meaningful.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple


def _now() -> float:
    return time.perf_counter()


# ----------------------------------------------------------------------
def event_throughput(sim_factory: Callable, n_events: int = 200_000,
                     ring: int = 64) -> Tuple[float, Dict]:
    """Fire ``n_events`` across a ring of chained callbacks."""
    sim = sim_factory(seed=1)
    remaining = [n_events]

    def tick(slot: int) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(0.001, tick, slot)

    for slot in range(ring):
        sim.schedule(0.001 * (slot + 1) / ring, tick, slot)
    t0 = _now()
    fired = sim.run()
    elapsed = _now() - t0
    return elapsed, {
        "events_fired": fired,
        "events_per_sec": fired / elapsed if elapsed > 0 else 0.0,
    }


# ----------------------------------------------------------------------
def rearm_heavy(sim_factory: Callable, n_conns: int = 100,
                duration: float = 1.0, feedback: float = 0.001,
                horizon: float = 0.5) -> Tuple[float, Dict]:
    """TCP-transfer-shaped RTO re-arm churn.

    Each of ``n_conns`` connections receives feedback every ``feedback``
    seconds; every feedback re-arms an RTO-like timer ``horizon``
    seconds out (RFC 6298 rule 5.3: restart on new cumulative ACK).
    The timer virtually never fires — exactly the pathological pattern
    for lazy deletion without compaction or reschedule-in-place.
    """
    sim = sim_factory(seed=1)
    rto_fires = [0]
    timers = [None] * n_conns

    def on_rto(i: int) -> None:
        rto_fires[0] += 1
        timers[i] = None

    def ack(i: int) -> None:
        timer = timers[i]
        if timer is None:
            timers[i] = sim.schedule(horizon, on_rto, i)
        else:
            timers[i] = sim.reschedule(timer, horizon)
        if sim.now < duration:
            sim.schedule(feedback, ack, i)

    for i in range(n_conns):
        sim.schedule(feedback * (i + 1) / n_conns, ack, i)
    t0 = _now()
    fired = sim.run(until=duration + 2 * horizon)
    elapsed = _now() - t0
    return elapsed, {
        "events_fired": fired,
        "events_per_sec": fired / elapsed if elapsed > 0 else 0.0,
        "rto_fires": rto_fires[0],
        "peak_heap": getattr(sim, "heap_size", None),
    }


# ----------------------------------------------------------------------
def tcp_transfer(sim_factory: Callable, nbytes: int = 2_000_000,
                 windows: int = 20, window_len: float = 0.5) -> Tuple[float, Dict]:
    """Bulk TCP over a lossy duplex access link, windowed run loop."""
    from repro.simnet.network import Network
    from repro.transport.tcp import TcpConnection, TcpListener

    sim = sim_factory(seed=7)
    net = Network(sim)
    net.add_host("server")
    net.add_host("client")
    net.add_duplex("server", "client", 20e6, 5e6, delay=0.02,
                   jitter=0.002, loss=0.005)
    net.build_routes()
    TcpListener(net["server"], 80)
    conn = TcpConnection(net["client"], 5000, "server", 80)
    conn.on_established = lambda: conn.send(nbytes)
    conn.connect()
    t0 = _now()
    fired = 0
    for _ in range(windows):
        fired += sim.run(until=sim.now + window_len)
    elapsed = _now() - t0
    return elapsed, {
        "events_fired": fired,
        "events_per_sec": fired / elapsed if elapsed > 0 else 0.0,
        "bytes_acked": conn.snd_una,
        "timeouts": conn.timeouts,
        "retransmits": conn.retransmits,
        "final_heap": getattr(sim, "heap_size", None),
        "fingerprint": f"{conn.snd_una}:{conn.timeouts}:{conn.retransmits}",
    }


# ----------------------------------------------------------------------
def a10_failover(scale: float = 1.0) -> Tuple[float, Dict]:
    """The A10 resilient-failover scenario (current engine only).

    Returns wall time plus a determinism fingerprint of the outcome —
    fixed seed, so the fingerprint must be stable run over run.
    """
    import hashlib

    from repro.core.session import ScenarioBuilder
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import SMARTPHONE
    from repro.mar.offload import FullOffload, ResilientOffloadExecutor
    from repro.simnet.faults import FaultInjector, FaultPlan

    app = APP_ARCHETYPES["orientation"]
    duration = 25.0 * scale
    n_frames = int(duration * app.fps)
    scenario = ScenarioBuilder(seed=101).edge_failover()
    radio_links = [l for l in scenario.net.links if "client" in l.name]
    plan = (
        FaultPlan()
        .server_crash(5.0 * scale, 10.0 * scale, [scenario.server])
        .blackout(10.0 * scale, 3.0 * scale, radio_links)
    )
    FaultInjector(scenario.net).apply(plan)
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers, app, FullOffload(),
        SMARTPHONE,
    )
    t0 = _now()
    result = executor.run(n_frames=n_frames, settle=3.0)
    elapsed = _now() - t0
    timeline = ";".join(f"{t!r}:{m.value}" for t, m in executor.metrics.mode_timeline)
    fingerprint = hashlib.sha256(
        f"{result.frames_sent}/{result.frames_completed}/{timeline}".encode()
    ).hexdigest()
    return elapsed, {
        "frames_sent": result.frames_sent,
        "frames_completed": result.frames_completed,
        "frames_per_sec": result.frames_completed / elapsed if elapsed > 0 else 0.0,
        "fingerprint": fingerprint,
    }


