#!/usr/bin/env python
"""City-scale population throughput benchmark -> ``BENCH_PR8.json``.

Runs the hybrid-fidelity ``city_coverage`` campaign (``repro.scale``)
at one or more budget tiers and records, per tier: wall-clock, distinct
background users simulated, simulated users per second of wall time,
foreground sessions, and the sha256 fingerprint of the merged aggregate.

The fingerprint is a pure function of (scenario, seed) — machine
independent — so it doubles as a cross-run regression fence: ``--gate``
re-runs the smallest tier and hard-fails unless

- the double-run fingerprints are byte-identical (determinism),
- the tier simulates >= 10^5 distinct background users, and
- it completes in under 5 minutes of wall clock

— the PR8 acceptance bar.  With ``--baseline BENCH_PR8.json`` the gate
also requires each tier's fingerprint to match the checked-in baseline
whenever that tier appears in it.

Usage::

    python benchmarks/perf/city_scale.py                   # full load
    python benchmarks/perf/city_scale.py --quick           # CI smoke
    python benchmarks/perf/city_scale.py --quick --gate \
        --baseline BENCH_PR8.json                          # CI fence
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fleet import run_campaign, usable_cpus  # noqa: E402
from repro.scale.shards import (  # noqa: E402
    city_coverage_campaign,
    city_users,
)

FULL = dict(budgets=("small", "metro"))
QUICK = dict(budgets=("small",))

#: The tier the acceptance gate runs (and double-runs) against.
GATE_BUDGET = "small"
#: PR8 acceptance bar: a gated run must simulate at least this many users.
GATE_MIN_USERS = 100_000
#: ...and finish within this much wall clock (seconds).
GATE_MAX_SECONDS = 300.0


def run_budget(budget: str, workers: int) -> dict:
    campaign = city_coverage_campaign(budget)
    t0 = time.perf_counter()
    result = run_campaign(campaign, workers=workers, cache=None)
    elapsed = time.perf_counter() - t0
    agg = result.aggregate
    users = city_users(agg)
    stats = {
        "budget": budget,
        "shards": campaign.n_shards,
        "seconds": elapsed,
        "background_users": users,
        "users_per_sec": users / elapsed if elapsed > 0 else float("inf"),
        "sessions": agg.counts.get("sessions", 0),
        "promoted_sessions": agg.counts.get("scale.promoted_sessions", 0),
        "mean_utilization": agg.moments["scale.utilization"].mean,
        "fingerprint": hashlib.sha256(
            agg.to_json().encode("utf-8")).hexdigest(),
    }
    print(f"   {budget:>6}: {campaign.n_shards:4d} shards  {elapsed:6.2f}s  "
          f"{users:>9,} users  {stats['users_per_sec']:>11,.0f} users/s",
          flush=True)
    return stats


def apply_gate(tiers: dict, workers: int, baseline: dict | None) -> dict:
    """Double-run the gate tier and evaluate the PR8 acceptance checks."""
    first = tiers[GATE_BUDGET]
    second = run_budget(GATE_BUDGET, workers)
    checks = [
        {
            "check": "double-run fingerprints byte-identical",
            "value": second["fingerprint"],
            "ok": second["fingerprint"] == first["fingerprint"],
        },
        {
            "check": f"background users >= {GATE_MIN_USERS}",
            "value": first["background_users"],
            "ok": first["background_users"] >= GATE_MIN_USERS,
        },
        {
            "check": f"wall clock < {GATE_MAX_SECONDS:.0f}s",
            "value": max(first["seconds"], second["seconds"]),
            "ok": max(first["seconds"], second["seconds"]) < GATE_MAX_SECONDS,
        },
    ]
    for budget, stats in tiers.items():
        want = (baseline or {}).get(budget, {}).get("fingerprint")
        if want is not None:
            checks.append({
                "check": f"{budget} fingerprint matches baseline",
                "value": stats["fingerprint"],
                "ok": stats["fingerprint"] == want,
            })
    return {"applied": True, "checks": checks,
            "pass": all(c["ok"] for c in checks)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR8.json"),
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="enforce the PR8 acceptance checks "
                             "(double-run determinism, user floor, wall cap)")
    parser.add_argument("--baseline", default=None,
                        help="with --gate: checked-in BENCH_PR8.json whose "
                             "tier fingerprints must reproduce")
    parser.add_argument("-w", "--workers", type=int, default=0,
                        help="fleet workers (default: usable cores)")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    workers = args.workers or usable_cpus()

    print(f"== city_scale (hybrid-fidelity population throughput) ==\n"
          f"   cpu_count {os.cpu_count()}, usable {usable_cpus()}, "
          f"workers {workers}", flush=True)
    tiers = {budget: run_budget(budget, workers)
             for budget in cfg["budgets"]}

    gate = {"applied": False, "checks": [], "pass": True}
    if args.gate:
        baseline = None
        if args.baseline:
            payload = json.loads(pathlib.Path(args.baseline).read_text())
            baseline = payload["benchmarks"]["city_scale"]["tiers"]
        gate = apply_gate(tiers, workers, baseline)

    payload = {
        "bench": "PR8-city-scale",
        "config": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "benchmarks": {"city_scale": {"workers": workers, "tiers": tiers,
                                      "gate": gate}},
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.gate:
        for c in gate["checks"]:
            print(f"gate: {c['check']}: {'PASS' if c['ok'] else 'FAIL'}")
        if not gate["pass"]:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
