#!/usr/bin/env python
"""Perf-benchmark runner: emits a machine-readable ``BENCH_*.json``.

Runs every workload in ``workloads.py`` against the current engine and,
where the workload is engine-parametric, against the verbatim pre-
overhaul engine in ``_legacy_engine.py`` — so the reported speedups are
measured in the *same* process on the *same* machine.

Usage::

    python benchmarks/perf/run_benchmarks.py                # full load
    python benchmarks/perf/run_benchmarks.py --quick        # CI smoke
    python benchmarks/perf/run_benchmarks.py --out BENCH_PR2.json

The output schema is documented in docs/PERF.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(HERE))

from _legacy_engine import LegacySimulator  # noqa: E402
import workloads  # noqa: E402

from repro.simnet.engine import Simulator  # noqa: E402

FULL = {
    "event_throughput": dict(n_events=300_000),
    "rearm_heavy": dict(n_conns=100, duration=1.0),
    "tcp_transfer": dict(nbytes=2_000_000, windows=20),
    "a10_scale": 1.0,
    "repeats": 3,
}
QUICK = {
    "event_throughput": dict(n_events=60_000),
    "rearm_heavy": dict(n_conns=40, duration=0.5),
    "tcp_transfer": dict(nbytes=500_000, windows=10),
    "a10_scale": 0.4,
    "repeats": 2,
}


def best_of(fn, repeats, *args, **kwargs):
    """Min wall time over ``repeats`` runs (stats from the fastest)."""
    best = None
    for _ in range(repeats):
        elapsed, stats = fn(*args, **kwargs)
        if best is None or elapsed < best[0]:
            best = (elapsed, stats)
    return best


def compare(fn, repeats, **kwargs):
    new_t, new_s = best_of(fn, repeats, Simulator, **kwargs)
    old_t, old_s = best_of(fn, repeats, LegacySimulator, **kwargs)
    return {
        "new": {"seconds": new_t, **new_s},
        "legacy": {"seconds": old_t, **old_s},
        "speedup": old_t / new_t if new_t > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR2.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    repeats = cfg["repeats"]

    results = {}

    print("== event_throughput ==", flush=True)
    results["event_throughput"] = compare(
        workloads.event_throughput, repeats, **cfg["event_throughput"])
    print(f"   speedup {results['event_throughput']['speedup']:.2f}x")

    print("== rearm_heavy (cancelled-timer churn) ==", flush=True)
    results["rearm_heavy"] = compare(
        workloads.rearm_heavy, repeats, **cfg["rearm_heavy"])
    print(f"   speedup {results['rearm_heavy']['speedup']:.2f}x")

    print("== tcp_transfer (TCP over DuplexLink) ==", flush=True)
    results["tcp_transfer"] = compare(
        workloads.tcp_transfer, repeats, **cfg["tcp_transfer"])
    print(f"   speedup {results['tcp_transfer']['speedup']:.2f}x")
    new_fp = results["tcp_transfer"]["new"]["fingerprint"]
    old_fp = results["tcp_transfer"]["legacy"]["fingerprint"]
    if new_fp != old_fp:
        print(f"ERROR: tcp_transfer outcome diverged between engines: "
              f"{new_fp} vs {old_fp}", file=sys.stderr)
        return 1
    print("   outcome identical on both engines (determinism preserved)")

    print("== a10_failover ==", flush=True)
    a10_t, a10_s = best_of(workloads.a10_failover, repeats, cfg["a10_scale"])
    results["a10_failover"] = {"seconds": a10_t, **a10_s}
    print(f"   {a10_t:.2f}s wall, fingerprint {a10_s['fingerprint'][:12]}…")

    payload = {
        "bench": "PR2-event-engine",
        "config": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": results,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    # Fleet parallel-efficiency lives in its own harness since PR7:
    # `benchmarks/perf/fleet_scaling.py` emits BENCH_PR7.json and gates
    # the workers x batching scaling matrix on multi-core hosts.

    ok = results["rearm_heavy"]["speedup"] >= 2.0
    print(f"rearm_heavy acceptance (>=2.0x): "
          f"{'PASS' if ok else 'FAIL'} ({results['rearm_heavy']['speedup']:.2f}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
