"""Verbatim copy of the pre-overhaul discrete-event engine.

This is the `Simulator` as it stood before the hot-path overhaul
(lazy-deletion compaction, O(1) pending, reschedule-in-place, tuple
heap): cancelled events stay in the heap until their deadline passes,
``pending`` is an O(n) scan, and every event carries an args/kwargs
pair.  The perf harness runs the same workloads against this class and
the current :class:`repro.simnet.engine.Simulator` in the same process
to measure the speedup — keeping the comparison honest across machines.

A ``reschedule``/``reschedule_at`` shim (plain cancel+push, the
pre-overhaul idiom at every RTO call-site) lets unmodified transport
code run on top of this engine.

Do not import this from production code.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional


class LegacyEvent:
    """A scheduled callback (pre-overhaul layout)."""

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled")

    def __init__(self, time, seq, fn, args, kwargs) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "LegacyEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class LegacySimulator:
    """Pre-overhaul deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0, **_ignored) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> LegacyEvent:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args, **kwargs)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    **kwargs: Any) -> LegacyEvent:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = LegacyEvent(time, next(self._seq), fn, args, kwargs)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: LegacyEvent) -> None:
        event.cancel()

    # Shim: the pre-overhaul code had no reschedule API — every re-arm
    # was a cancel + fresh push, leaving a dead entry in the heap.
    def reschedule(self, event: LegacyEvent, delay: float) -> LegacyEvent:
        return self.reschedule_at(event, self.now + delay)

    def reschedule_at(self, event: LegacyEvent, time: float) -> LegacyEvent:
        event.cancel()
        return self.schedule_at(time, event.fn, *event.args, **event.kwargs)

    # -- execution -----------------------------------------------------
    def step(self) -> bool:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        fired = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def heap_size(self) -> int:
        return len(self._heap)

    def child_rng(self, tag: str) -> random.Random:
        return random.Random(f"{self.seed}:{tag}")
