#!/usr/bin/env python
"""Compare a fresh perf run against a checked-in baseline.

Guards two classes of metric:

- **speedup ratios** (new engine vs. legacy engine, measured in the
  same process): machine-independent, so a fresh CI run is comparable
  to a baseline recorded elsewhere.  Fails when a ratio drops more than
  ``--tolerance`` (default 25%) below the baseline.
- **determinism fingerprints**: the A10 fixed-seed outcome must match
  the baseline byte for byte, and the TCP transfer must end in the
  identical state on both engines.

Absolute throughputs (events/sec) are *not* compared across runs by
default — they track the host machine, not the code — but are printed
for the trajectory record.  Use ``--strict-absolute`` to compare them
too (only meaningful on a pinned runner).

Usage::

    python benchmarks/perf/check_regression.py FRESH.json --baseline BENCH_PR2.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RATIO_KEYS = ("event_throughput", "rearm_heavy", "tcp_transfer")
ABSOLUTE_KEYS = (("event_throughput", "new", "events_per_sec"),
                 ("rearm_heavy", "new", "events_per_sec"),
                 ("tcp_transfer", "new", "events_per_sec"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="JSON produced by run_benchmarks.py")
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--strict-absolute", action="store_true",
                        help="also compare absolute events/sec")
    args = parser.parse_args(argv)

    fresh = json.loads(pathlib.Path(args.fresh).read_text())["benchmarks"]
    base = json.loads(pathlib.Path(args.baseline).read_text())["benchmarks"]
    failures = []

    for key in RATIO_KEYS:
        got = fresh[key]["speedup"]
        want = base[key]["speedup"]
        floor = want * (1.0 - args.tolerance)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{key:>20s}: speedup {got:6.2f}x (baseline {want:.2f}x, "
              f"floor {floor:.2f}x) {status}")
        if got < floor:
            failures.append(f"{key} speedup {got:.2f}x < floor {floor:.2f}x")

    # The rearm workload carries the headline acceptance bar.
    if fresh["rearm_heavy"]["speedup"] < 2.0:
        failures.append(
            f"rearm_heavy speedup {fresh['rearm_heavy']['speedup']:.2f}x "
            "below the 2.0x acceptance bar")

    # Determinism: both engines agreed within the fresh run...
    tf = fresh["tcp_transfer"]
    if tf["new"]["fingerprint"] != tf["legacy"]["fingerprint"]:
        failures.append("tcp_transfer outcome diverged between engines")
    # ...and, when the load configuration matches, the fixed-seed A10
    # outcome must reproduce the baseline exactly.
    fresh_cfg = json.loads(pathlib.Path(args.fresh).read_text()).get("config")
    base_cfg = json.loads(pathlib.Path(args.baseline).read_text()).get("config")
    if fresh_cfg == base_cfg:
        if fresh["a10_failover"]["fingerprint"] != base["a10_failover"]["fingerprint"]:
            failures.append("a10_failover fingerprint diverged from baseline")
        else:
            print(f"{'a10_failover':>20s}: fingerprint matches baseline")
    else:
        print(f"{'a10_failover':>20s}: config differs "
              f"({fresh_cfg} vs {base_cfg}); fingerprint not compared")

    if args.strict_absolute:
        for bench, side, metric in ABSOLUTE_KEYS:
            got = fresh[bench][side][metric]
            want = base[bench][side][metric]
            floor = want * (1.0 - args.tolerance)
            if got < floor:
                failures.append(
                    f"{bench}.{side}.{metric} {got:.0f} < floor {floor:.0f}")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
