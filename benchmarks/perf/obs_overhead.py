#!/usr/bin/env python
"""Observability overhead benchmark: emits ``BENCH_PR5.json``.

Measures what attaching the :mod:`repro.obs` layer costs a simulation,
as a gate CI can hold:

- ``disabled`` — the instrumented offload loop with no observer
  attached.  The hooks compile down to a ``self.obs is not None``
  attribute check per event, so this is the cost every un-instrumented
  run pays for the subsystem's existence.
- ``enabled`` — the same loop with the full stack attached: span
  tracer + frame observer, metrics registry, queue and link monitors.
  The end-of-run export (collectors + Chrome-trace JSON) is timed and
  reported separately — it runs once, off the simulation's clock.
- ``span_ops`` — a tracer micro-benchmark (start/finish pairs per
  second), the unit cost behind the ratio above.

The gate: ``enabled`` may cost at most ``--max-overhead`` (default 5%)
over ``disabled``, measured best-of-``--repeats`` (min wall time — the
least noisy estimator on shared CI runners).  Both runs also assert the
frame outcomes are identical, so instrumentation provably does not
perturb the simulation.

Usage::

    python benchmarks/perf/obs_overhead.py                # full load
    python benchmarks/perf/obs_overhead.py --quick        # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

FULL = {"frames": 400, "span_pairs": 200_000, "repeats": 5}
QUICK = {"frames": 120, "span_pairs": 50_000, "repeats": 3}


def mar_session(frames: int, instrument: bool):
    """One full MAR session; returns (wall, export_wall, fingerprint).

    The workload is the paper's actual traffic mix, not a bare frame
    loop: a MARTP session (video, sensor and metadata streams with
    congestion control — the continuous background of every MAR user)
    sharing one access path with a traced ``gaming`` full-frame offload
    loop (32 kB uploads → 27 uplink fragments per frame).  Tracing
    instruments the frame pipeline; the overhead ratio is measured
    against everything a session simulates.  Only the simulation loop
    is timed against the gate; the end-of-run export is reported
    separately (cold path, runs once).
    """
    from repro.core import OffloadSession, ScenarioBuilder, mos_score
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import CLOUD, SMARTPHONE
    from repro.mar.offload import FullOffload, OffloadExecutor
    from repro.obs import (MetricsRegistry, Tracer, attach_frame_observer,
                           chrome_trace_json, collect_links, collect_martp)
    from repro.simnet.monitor import LinkMonitor, QueueMonitor

    app = APP_ARCHETYPES["gaming"]
    scenario = ScenarioBuilder(seed=11).single_path(rtt=0.036, up_bps=40e6,
                                                    down_bps=80e6)
    session = OffloadSession(scenario)
    sim, net = scenario.sim, scenario.net
    executor = OffloadExecutor(net, "client", "server", app,
                               FullOffload(), SMARTPHONE,
                               server_device=CLOUD)
    duration = frames * app.frame_budget
    tracer = registry = None
    if instrument:
        tracer = Tracer(sim)
        registry = MetricsRegistry()
        attach_frame_observer(executor, tracer)
        # Monitors sample at their default intervals (50 ms queue,
        # 500 ms link) — the configuration every obs scenario ships.
        uplink = net.path_links("client", "server")[0]
        QueueMonitor(sim, uplink.queue, horizon=duration + 1.0,
                     registry=registry, name="uplink")
        LinkMonitor(sim, uplink, horizon=duration + 1.0,
                    registry=registry)

    t0 = time.perf_counter()
    executor.start(n_frames=frames)
    report = session.run(duration)
    elapsed = time.perf_counter() - t0

    export = 0.0
    if instrument:
        t0 = time.perf_counter()
        collect_martp(registry, session.sender, session.receiver)
        collect_links(registry, net, elapsed=sim.now)
        chrome_trace_json(tracer)
        export = time.perf_counter() - t0

    result = executor.result
    fingerprint = (result.frames_completed,
                   round(result.mean_offloaded_latency, 9),
                   round(result.deadline_hit_rate, 9),
                   round(mos_score(report), 9))
    return elapsed, export, fingerprint


def span_ops(pairs: int) -> float:
    """Start/finish throughput of the tracer itself (ops/second)."""
    from repro.obs import Tracer
    from repro.simnet.engine import Simulator

    tracer = Tracer(Simulator(seed=1))
    t0 = time.perf_counter()
    for _ in range(pairs):
        tracer.finish(tracer.start_span("op"))
    elapsed = time.perf_counter() - t0
    tracer.spans.clear()
    return pairs / elapsed if elapsed > 0 else float("inf")


def best_of(fn, repeats, *args):
    best = None
    for _ in range(repeats):
        gc.collect()
        out = fn(*args)
        key = out[0] if isinstance(out, tuple) else -out
        if best is None or key < best[0]:
            best = (key, out)
    return best[1]


def interleaved_best(frames: int, repeats: int):
    """Best disabled/enabled session times, measured interleaved.

    Alternating the two variants within each repeat (instead of timing
    all of one then all of the other) decorrelates the ratio from
    allocator and CPU-frequency drift — the dominant noise source on
    shared CI runners.  One untimed warm-up pair primes imports and
    code caches before anything counts.
    """
    mar_session(frames, False)
    mar_session(frames, True)
    best = {False: None, True: None}
    for _ in range(repeats):
        for instrument in (False, True):
            gc.collect()
            out = mar_session(frames, instrument)
            if best[instrument] is None or out[0] < best[instrument][0]:
                best[instrument] = out
    return best[False], best[True]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR5.json"),
                        help="output JSON path")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail if enabled/disabled - 1 exceeds this "
                             "(default: 0.05)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of repeat count")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    repeats = args.repeats if args.repeats is not None else cfg["repeats"]
    frames = cfg["frames"]

    print(f"== obs overhead ({frames} frames, best of {repeats}, "
          f"interleaved) ==", flush=True)
    (off_t, _, off_fp), (on_t, export_t, on_fp) = \
        interleaved_best(frames, repeats)
    overhead = on_t / off_t - 1.0 if off_t > 0 else 0.0
    print(f"   disabled {off_t * 1e3:7.1f} ms   enabled {on_t * 1e3:7.1f} ms"
          f"   overhead {overhead:+.1%}   export {export_t * 1e3:.1f} ms")

    if on_fp != off_fp:
        print(f"ERROR: instrumentation changed the simulation outcome: "
              f"{off_fp} vs {on_fp}", file=sys.stderr)
        return 1
    print("   frame outcomes identical with and without instrumentation")

    ops = best_of(span_ops, repeats, cfg["span_pairs"])
    print(f"== span_ops ==\n   {ops / 1e6:.2f} M start/finish pairs per "
          f"second")

    payload = {
        "bench": "PR5-obs-overhead",
        "config": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {
            "mar_session": {
                "frames": frames,
                "disabled_seconds": off_t,
                "enabled_seconds": on_t,
                "export_seconds": export_t,
                "overhead": overhead,
            },
            "span_ops": {"pairs_per_second": ops},
        },
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if overhead > args.max_overhead:
        print(f"ERROR: tracer overhead {overhead:.1%} exceeds the "
              f"{args.max_overhead:.0%} budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
