#!/usr/bin/env python
"""Observability overhead benchmarks: ``BENCH_PR5.json`` + ``BENCH_PR10.json``.

Measures what attaching the observability layers costs a simulation,
as gates CI can hold:

PR5 (``--only pr5``):

- ``disabled`` — the instrumented offload loop with no observer
  attached.  The hooks compile down to a ``self.obs is not None``
  attribute check per event, so this is the cost every un-instrumented
  run pays for the subsystem's existence.
- ``enabled`` — the same loop with the full stack attached: span
  tracer + frame observer, metrics registry, queue and link monitors.
  The end-of-run export (collectors + Chrome-trace JSON) is timed and
  reported separately — it runs once, off the simulation's clock.
- ``span_ops`` — a tracer micro-benchmark (start/finish pairs per
  second), the unit cost behind the ratio above.

PR10 (``--only pr10``) extends the same methodology to the runtime
telemetry layer:

- ``engine_profiler`` — the MAR session with an
  :class:`~repro.obs.profile.EngineProfiler` attached vs plain.  The
  deterministic counts-only configuration is *gated*; the timed
  configuration (sampled wall attribution, what ``repro obs
  --profile`` arms) is reported alongside but not gated — exact
  per-handler attribution inherently costs per-event interpreter
  work, and it is an opt-in diagnostic, not an always-on layer.  The
  frame fingerprints must be identical in every configuration — the
  profiler provably does not perturb the simulation.
- ``fleet_telemetry`` — a serial fleet campaign with the telemetry bus
  armed vs plain.  *Gated.*  The merged aggregate JSON must be
  byte-identical — the telemetry side-channel provably never touches
  a result byte.
- ``flight_recorder`` — the same campaign with the crash flight
  recorder armed too.  *Informational, not gated*: retaining a ring of
  recent events defeats allocator locality, so the recorder costs real
  percent — it is armed per-run for fault hunts, never always-on.
  Byte-identity of the merged aggregate is still asserted.

Every gate: the instrumented variant may cost at most
``--max-overhead`` (default 5%) over its baseline, measured
interleaved best-of-``--repeats`` (min wall time — the least noisy
estimator on shared CI runners).  The PR10 loads are lighter than
PR5's, so their gates combine two estimators (floor ratio and median
within-window ratio, taking the smaller — see
:func:`robust_overhead`) to stay stable under runner contention.

Usage::

    python benchmarks/perf/obs_overhead.py                # both, full load
    python benchmarks/perf/obs_overhead.py --quick        # CI smoke
    python benchmarks/perf/obs_overhead.py --only pr10    # telemetry gate only
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

FULL = {"frames": 400, "span_pairs": 200_000, "repeats": 6,
        "fleet_seeds": 3, "fleet_frames": 150}
QUICK = {"frames": 120, "span_pairs": 50_000, "repeats": 4,
         "fleet_seeds": 2, "fleet_frames": 100}


def mar_session(frames: int, instrument: bool, profile: bool = False):
    """One full MAR session; returns (wall, export_wall, fingerprint).

    The workload is the paper's actual traffic mix, not a bare frame
    loop: a MARTP session (video, sensor and metadata streams with
    congestion control — the continuous background of every MAR user)
    sharing one access path with a traced ``gaming`` full-frame offload
    loop (32 kB uploads → 27 uplink fragments per frame).  Tracing
    instruments the frame pipeline; the overhead ratio is measured
    against everything a session simulates.  Only the simulation loop
    is timed against the gate; the end-of-run export is reported
    separately (cold path, runs once).
    """
    from repro.core import OffloadSession, ScenarioBuilder, mos_score
    from repro.mar.application import APP_ARCHETYPES
    from repro.mar.devices import CLOUD, SMARTPHONE
    from repro.mar.offload import FullOffload, OffloadExecutor
    from repro.obs import (MetricsRegistry, Tracer, attach_frame_observer,
                           chrome_trace_json, collect_links, collect_martp)
    from repro.simnet.monitor import LinkMonitor, QueueMonitor

    app = APP_ARCHETYPES["gaming"]
    scenario = ScenarioBuilder(seed=11).single_path(rtt=0.036, up_bps=40e6,
                                                    down_bps=80e6)
    session = OffloadSession(scenario)
    sim, net = scenario.sim, scenario.net
    if profile:
        # "counts" is the deterministic counters-only configuration;
        # "timed" (or True) adds sampled wall attribution — what
        # `repro obs --profile` arms.
        from repro.obs import EngineProfiler

        clock = None if profile == "counts" else time.perf_counter
        sim.profiler = EngineProfiler(clock=clock)
    executor = OffloadExecutor(net, "client", "server", app,
                               FullOffload(), SMARTPHONE,
                               server_device=CLOUD)
    duration = frames * app.frame_budget
    tracer = registry = None
    if instrument:
        tracer = Tracer(sim)
        registry = MetricsRegistry()
        attach_frame_observer(executor, tracer)
        # Monitors sample at their default intervals (50 ms queue,
        # 500 ms link) — the configuration every obs scenario ships.
        uplink = net.path_links("client", "server")[0]
        QueueMonitor(sim, uplink.queue, horizon=duration + 1.0,
                     registry=registry, name="uplink")
        LinkMonitor(sim, uplink, horizon=duration + 1.0,
                    registry=registry)

    t0 = time.perf_counter()
    executor.start(n_frames=frames)
    report = session.run(duration)
    elapsed = time.perf_counter() - t0

    export = 0.0
    if instrument:
        t0 = time.perf_counter()
        collect_martp(registry, session.sender, session.receiver)
        collect_links(registry, net, elapsed=sim.now)
        chrome_trace_json(tracer)
        export = time.perf_counter() - t0

    result = executor.result
    fingerprint = (result.frames_completed,
                   round(result.mean_offloaded_latency, 9),
                   round(result.deadline_hit_rate, 9),
                   round(mos_score(report), 9))
    return elapsed, export, fingerprint


def span_ops(pairs: int) -> float:
    """Start/finish throughput of the tracer itself (ops/second)."""
    from repro.obs import Tracer
    from repro.simnet.engine import Simulator

    tracer = Tracer(Simulator(seed=1))
    t0 = time.perf_counter()
    for _ in range(pairs):
        tracer.finish(tracer.start_span("op"))
    elapsed = time.perf_counter() - t0
    tracer.spans.clear()
    return pairs / elapsed if elapsed > 0 else float("inf")


def best_of(fn, repeats, *args):
    best = None
    for _ in range(repeats):
        gc.collect()
        out = fn(*args)
        key = out[0] if isinstance(out, tuple) else -out
        if best is None or key < best[0]:
            best = (key, out)
    return best[1]


def interleaved_pair(baseline, variant, repeats: int):
    """Best baseline/variant times, measured interleaved.

    Alternating the two variants within each repeat (instead of timing
    all of one then all of the other) decorrelates the ratio from
    allocator and CPU-frequency drift — the dominant noise source on
    shared CI runners.  The pair's *order* flips every repeat, because
    the drift is monotone within a process (heap growth): a fixed
    baseline-then-variant order would systematically tax whichever ran
    second.  One untimed warm-up pair primes imports and code caches
    before anything counts.  Each callable returns a tuple whose first
    element is the wall time.
    """
    best, _ = interleaved_samples((baseline, variant), repeats)
    return best[0], best[1]


def interleaved_samples(fns, repeats: int):
    """Floors plus per-window ratios for N interleaved callables.

    Returns ``(best, ratios)``: ``best[i]`` is callable *i*'s fastest
    output, and ``ratios[i]`` holds one ``t_i / t_0`` sample per
    repeat, computed *within* that repeat's window — the runs it
    compares executed back-to-back, so slow drift cancels out of the
    ratio even when it moves the absolute floor.
    """
    for fn in fns:
        fn()
    best = [None] * len(fns)
    ratios = [[] for _ in fns]
    for rep in range(repeats):
        order = list(enumerate(fns))
        if rep % 2:
            order = order[::-1]
        window = [None] * len(fns)
        for i, fn in order:
            gc.collect()
            out = fn()
            window[i] = out
            if best[i] is None or out[0] < best[i][0]:
                best[i] = out
        for i in range(1, len(fns)):
            ratios[i].append(window[i][0] / window[0][0])
    return best, ratios


def median(values):
    s = sorted(values)
    n = len(s)
    return s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2])


def robust_overhead(best, ratios, i: int) -> float:
    """Overhead of variant *i* over variant 0, noise-robustly.

    Two estimators: the **floor ratio** (best-of each variant — fails
    high when the variant never lands in a quiet window the baseline
    hit) and the **median window ratio** (fails high when contention
    contaminates most windows).  They fail in opposite directions, so
    the smaller is reported: a genuine regression moves both, while a
    noise artifact moves only one.
    """
    floor = best[i][0] / best[0][0] - 1.0
    med = median(ratios[i]) - 1.0
    return min(floor, med)


def interleaved_best(frames: int, repeats: int):
    """Best disabled/enabled session times, measured interleaved."""
    return interleaved_pair(lambda: mar_session(frames, False),
                            lambda: mar_session(frames, True), repeats)


def fleet_run(seeds: int, frames: int, telemetry: bool = False,
              flight_dir=None):
    """One serial fleet campaign; returns (wall, aggregate JSON).

    ``telemetry=True`` arms the telemetry bus (shard/merge/cache
    events, document finalization); a ``flight_dir`` additionally arms
    the crash flight recorder (engine trace hook + per-shard spill).
    """
    from repro.fleet import Campaign, TelemetryCollector, run_campaign

    campaign = Campaign(name="bench-telemetry", scenario="table2_offload",
                        seeds=seeds, base_seed=3,
                        grid={"rtt": [0.012, 0.036, 0.072, 0.120]},
                        params={"n_frames": frames})
    collector = TelemetryCollector() if telemetry else None
    t0 = time.perf_counter()
    result = run_campaign(campaign, telemetry=collector,
                          flight_dir=flight_dir)
    elapsed = time.perf_counter() - t0
    return elapsed, result.aggregate.to_json()


def run_pr5(cfg, repeats, max_overhead, out_path) -> int:
    frames = cfg["frames"]
    print(f"== obs overhead ({frames} frames, best of {repeats}, "
          f"interleaved) ==", flush=True)
    (off_t, _, off_fp), (on_t, export_t, on_fp) = \
        interleaved_best(frames, repeats)
    overhead = on_t / off_t - 1.0 if off_t > 0 else 0.0
    print(f"   disabled {off_t * 1e3:7.1f} ms   enabled {on_t * 1e3:7.1f} ms"
          f"   overhead {overhead:+.1%}   export {export_t * 1e3:.1f} ms")

    if on_fp != off_fp:
        print(f"ERROR: instrumentation changed the simulation outcome: "
              f"{off_fp} vs {on_fp}", file=sys.stderr)
        return 1
    print("   frame outcomes identical with and without instrumentation")

    ops = best_of(span_ops, repeats, cfg["span_pairs"])
    print(f"== span_ops ==\n   {ops / 1e6:.2f} M start/finish pairs per "
          f"second")

    payload = {
        "bench": "PR5-obs-overhead",
        "config": "quick" if cfg is QUICK else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {
            "mar_session": {
                "frames": frames,
                "disabled_seconds": off_t,
                "enabled_seconds": on_t,
                "export_seconds": export_t,
                "overhead": overhead,
            },
            "span_ops": {"pairs_per_second": ops},
        },
    }
    out = pathlib.Path(out_path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if overhead > max_overhead:
        print(f"ERROR: tracer overhead {overhead:.1%} exceeds the "
              f"{max_overhead:.0%} budget", file=sys.stderr)
        return 1
    return 0


def run_pr10(cfg, repeats, max_overhead, out_path) -> int:
    import tempfile

    # The PR10 loads are lighter than PR5's (120-400 frame sessions,
    # sub-second campaigns) while the effects measured are a few
    # percent; floors need more samples to converge on noisy shared
    # runners than PR5's heavier single pair does.
    repeats = max(repeats, 8)
    frames = cfg["frames"]
    print(f"== engine profiler overhead ({frames} frames, best of "
          f"{repeats}, interleaved) ==", flush=True)
    best, ratios = interleaved_samples((
        lambda: mar_session(frames, False),
        lambda: mar_session(frames, False, profile="counts"),
        lambda: mar_session(frames, False, profile="timed"),
    ), repeats)
    (plain_t, _, plain_fp), (cnt_t, _, cnt_fp), (tmd_t, _, tmd_fp) = best
    cnt_overhead = robust_overhead(best, ratios, 1)
    tmd_overhead = robust_overhead(best, ratios, 2)
    print(f"   plain {plain_t * 1e3:7.1f} ms   counts "
          f"{cnt_t * 1e3:7.1f} ms ({cnt_overhead:+.1%}, gated)   timed "
          f"{tmd_t * 1e3:7.1f} ms ({tmd_overhead:+.1%}, informational)")
    if cnt_fp != plain_fp or tmd_fp != plain_fp:
        print(f"ERROR: the profiler changed the simulation outcome: "
              f"{plain_fp} vs {cnt_fp} / {tmd_fp}", file=sys.stderr)
        return 1
    print("   frame outcomes identical with and without the profiler")

    seeds, fleet_frames = cfg["fleet_seeds"], cfg["fleet_frames"]
    n_shards = seeds * 4
    print(f"== fleet telemetry overhead ({n_shards} serial shards, best of "
          f"{repeats}, interleaved) ==", flush=True)
    fbest, fratios = interleaved_samples((
        lambda: fleet_run(seeds, fleet_frames),
        lambda: fleet_run(seeds, fleet_frames, telemetry=True),
    ), repeats)
    (base_t, base_agg), (tel_t, tel_agg) = fbest
    tel_overhead = robust_overhead(fbest, fratios, 1)
    print(f"   plain {base_t * 1e3:7.1f} ms   telemetry "
          f"{tel_t * 1e3:7.1f} ms   overhead {tel_overhead:+.1%}")
    if tel_agg != base_agg:
        print("ERROR: telemetry changed the merged aggregate bytes",
              file=sys.stderr)
        return 1
    print("   merged aggregates byte-identical with the telemetry bus armed")

    # Flight recorder: informational, not gated.  Retaining a ring of
    # recent events defeats allocator locality on allocation-heavy
    # workloads, so arming it costs real percent — it is a crash-
    # forensics instrument (armed by --flight-dir / --inject-fault),
    # not an always-on layer.  What IS held to a hard standard is
    # byte-identity: armed or not, the merged aggregate cannot move.
    print(f"== flight recorder overhead ({n_shards} serial shards, "
          f"informational) ==", flush=True)
    with tempfile.TemporaryDirectory() as flight_dir:
        gbest, gratios = interleaved_samples((
            lambda: fleet_run(seeds, fleet_frames),
            lambda: fleet_run(seeds, fleet_frames, telemetry=True,
                              flight_dir=flight_dir),
        ), repeats)
    (fbase_t, fbase_agg), (flight_t, flight_agg) = gbest
    flight_overhead = robust_overhead(gbest, gratios, 1)
    print(f"   plain {fbase_t * 1e3:7.1f} ms   telemetry+flight "
          f"{flight_t * 1e3:7.1f} ms   overhead {flight_overhead:+.1%}")
    if flight_agg != fbase_agg:
        print("ERROR: the flight recorder changed the merged aggregate bytes",
              file=sys.stderr)
        return 1
    print("   merged aggregates byte-identical with the flight recorder "
          "armed")

    worst = max(cnt_overhead, tel_overhead)
    payload = {
        "bench": "PR10-telemetry-overhead",
        "config": "quick" if cfg is QUICK else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {
            "engine_profiler": {
                "frames": frames,
                "plain_seconds": plain_t,
                "counts_seconds": cnt_t,
                "timed_seconds": tmd_t,
                "overhead": cnt_overhead,
                "timed_overhead": tmd_overhead,
                "timed_gated": False,
            },
            "fleet_telemetry": {
                "shards": n_shards,
                "plain_seconds": base_t,
                "telemetry_seconds": tel_t,
                "overhead": tel_overhead,
            },
            "flight_recorder": {
                "shards": n_shards,
                "plain_seconds": fbase_t,
                "flight_seconds": flight_t,
                "overhead": flight_overhead,
                "gated": False,
            },
        },
        "gate": {
            "max_overhead": max_overhead,
            "worst_overhead": worst,
            "pass": worst <= max_overhead,
        },
    }
    out = pathlib.Path(out_path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if worst > max_overhead:
        print(f"ERROR: telemetry overhead {worst:.1%} exceeds the "
              f"{max_overhead:.0%} budget", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--only", choices=("pr5", "pr10", "all"),
                        default="all",
                        help="which gate(s) to run (default: all)")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR5.json"),
                        help="PR5 output JSON path")
    parser.add_argument("--out10", default=str(REPO / "BENCH_PR10.json"),
                        help="PR10 output JSON path")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail if instrumented/baseline - 1 exceeds this "
                             "(default: 0.05)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of repeat count")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    repeats = args.repeats if args.repeats is not None else cfg["repeats"]

    status = 0
    if args.only in ("pr5", "all"):
        status = run_pr5(cfg, repeats, args.max_overhead, args.out) or status
    if args.only in ("pr10", "all"):
        status = run_pr10(cfg, repeats, args.max_overhead,
                          args.out10) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
