#!/usr/bin/env python
"""Fleet parallel-scaling benchmark -> ``BENCH_PR7.json``.

Runs a fixed cell-offload campaign serially and across a workers x
batching matrix (unbatched ``batch_size=1`` vs auto-batched warm-pool
dispatch), recording wall time, speedup, and parallel efficiency for
each cell, plus a fingerprint asserting every configuration merged the
byte-identical aggregate (the fleet determinism contract).

Metadata records **both** ``os.cpu_count()`` (the machine) and
``usable_cpus()`` (the scheduling-affinity mask): BENCH_PR3's negative
scaling was measured with 4 workers on a ``cpu_count: 1`` box, and the
two numbers disagreeing is exactly the oversubscription signal.

Usage::

    python benchmarks/perf/fleet_scaling.py                # full load
    python benchmarks/perf/fleet_scaling.py --quick        # CI smoke
    python benchmarks/perf/fleet_scaling.py --gate         # enforce scaling

``--gate`` is the CI regression fence: on hosts with >= 2 usable cores
it hard-fails unless the auto-batched 2-worker run achieves speedup
>= 1.0 (i.e. parallelism must never again be slower than serial); with
``--strict`` it additionally requires efficiency >= 0.6 at 4 workers on
>= 4-core hosts.  On single-core hosts the scaling gate records itself
as skipped — the determinism check is enforced unconditionally.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fleet import Campaign, run_campaign, usable_cpus  # noqa: E402

FULL = dict(seeds=16, duration=1.0, worker_counts=(2, 4), repeats=2)
QUICK = dict(seeds=8, duration=0.5, worker_counts=(2, 4), repeats=1)

#: Floor for the 2-worker auto-batched speedup on multi-core hosts.
GATE_SPEEDUP_2W = 1.0
#: Floor for 4-worker parallel efficiency (``--strict``, >= 4 cores).
GATE_EFFICIENCY_4W = 0.6


def _campaign(seeds: int, duration: float) -> Campaign:
    return Campaign(
        name="fleet_scaling", scenario="cell_offload", seeds=seeds,
        base_seed=7, grid={"rtt": [0.008, 0.036, 0.072, 0.120]},
        params={"duration": duration, "up_bps": 12e6},
    )


def _timed(campaign: Campaign, repeats: int, **kwargs):
    """Best-of-N wall time; returns (seconds, result-of-best-run)."""
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = run_campaign(campaign, **kwargs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    return best


def run_matrix(cfg: dict) -> dict:
    import hashlib

    campaign = _campaign(cfg["seeds"], cfg["duration"])
    repeats = cfg["repeats"]

    serial_t, serial = _timed(campaign, repeats, workers=1)
    reference = serial.aggregate.to_json()
    identical = True
    start_method = None

    def row(elapsed: float, workers: int) -> dict:
        speedup = serial_t / elapsed if elapsed > 0 else float("inf")
        return {"seconds": elapsed, "speedup": speedup,
                "efficiency": speedup / workers}

    workers_out = {"1": {**row(serial_t, 1), "mode": "serial"}}
    for w in cfg["worker_counts"]:
        cells = {}
        for mode, batch_size in (("unbatched", 1), ("batched", None)):
            elapsed, result = _timed(campaign, repeats, workers=w,
                                     batch_size=batch_size)
            identical = identical and result.aggregate.to_json() == reference
            start_method = result.start_method or start_method
            cells[mode] = {**row(elapsed, w),
                           "n_batches": result.n_batches,
                           "max_buffered": result.max_buffered}
            print(f"   {w} worker(s) {mode:>9}: {elapsed:6.2f}s  "
                  f"speedup {cells[mode]['speedup']:.2f}x  "
                  f"efficiency {cells[mode]['efficiency']:.0%}", flush=True)
        workers_out[str(w)] = cells

    total = serial_t + sum(cell["seconds"]
                           for w, cells in workers_out.items() if w != "1"
                           for cell in cells.values())
    return {
        "shards": campaign.n_shards,
        "seconds": total,
        "workers": workers_out,
        "aggregates_identical": identical,
        "fingerprint": hashlib.sha256(reference.encode()).hexdigest(),
        "start_method": start_method,
    }


def apply_gate(stats: dict, usable: int, strict: bool) -> dict:
    """Evaluate the scaling gate; returns a record for the JSON output."""
    checks = []
    if usable >= 2:
        speedup = stats["workers"]["2"]["batched"]["speedup"]
        checks.append({
            "check": f"2-worker batched speedup >= {GATE_SPEEDUP_2W}",
            "value": speedup,
            "ok": speedup >= GATE_SPEEDUP_2W,
        })
    if strict and usable >= 4 and "4" in stats["workers"]:
        eff = stats["workers"]["4"]["batched"]["efficiency"]
        checks.append({
            "check": f"4-worker batched efficiency >= {GATE_EFFICIENCY_4W}",
            "value": eff,
            "ok": eff >= GATE_EFFICIENCY_4W,
        })
    return {
        "applied": bool(checks),
        "skipped_reason": (None if checks
                           else f"only {usable} usable core(s)"),
        "checks": checks,
        "pass": all(c["ok"] for c in checks),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI smoke runs")
    parser.add_argument("--out", default=str(REPO / "BENCH_PR7.json"),
                        help="output JSON path")
    parser.add_argument("--gate", action="store_true",
                        help="fail on scaling regression (>=2 usable cores)")
    parser.add_argument("--strict", action="store_true",
                        help="with --gate: also require efficiency >= "
                             f"{GATE_EFFICIENCY_4W} at 4 workers (>=4 cores)")
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL
    usable = usable_cpus()

    print(f"== fleet_scaling (campaign parallel efficiency) ==\n"
          f"   cpu_count {os.cpu_count()}, usable {usable}", flush=True)
    stats = run_matrix(cfg)
    gate = apply_gate(stats, usable, args.strict)

    payload = {
        "bench": "PR7-fleet-scaling",
        "config": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "benchmarks": {"fleet_scaling": {**stats, "gate": gate}},
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if not stats["aggregates_identical"]:
        print("ERROR: fleet aggregates diverged between configurations",
              file=sys.stderr)
        return 1
    if args.gate:
        if not gate["applied"]:
            print(f"scaling gate skipped: {gate['skipped_reason']} "
                  "(determinism check still enforced)")
        else:
            for c in gate["checks"]:
                print(f"gate: {c['check']}: "
                      f"{'PASS' if c['ok'] else 'FAIL'} ({c['value']:.2f})")
            if not gate["pass"]:
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
