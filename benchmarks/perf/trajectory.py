#!/usr/bin/env python
"""Merge the committed ``BENCH_*.json`` baselines into one perf trajectory.

Each PR that touched a performance-sensitive layer committed a
full-config benchmark baseline at the repo root (``BENCH_PR2.json``,
``BENCH_PR3.json``, ...).  They share metadata (``bench``, ``config``,
``python``, ``platform``) but each has its own ``benchmarks`` shape, so
comparing "how did we do over time" means opening seven files with
seven schemas.  This script knows all of them: it extracts the headline
metric(s) from every baseline it finds, prints one table, and can
rewrite the matching section of ``docs/PERF.md`` in place (between the
``<!-- perf-trajectory:begin -->`` / ``end`` markers) so the docs table
never drifts from the committed JSON.

Absolute numbers (events/s, users/s) track the host the baseline was
recorded on — the trajectory is for spotting *relative* movement
(overheads creeping up, speedups eroding) and for having every headline
number in one place.  Fresh CI artifacts (``*.fresh.json``) are
deliberately excluded: the trajectory reads committed baselines only.

Usage::

    python benchmarks/perf/trajectory.py                 # print table
    python benchmarks/perf/trajectory.py --write-docs    # update docs/PERF.md
    python benchmarks/perf/trajectory.py --out traj.json # CI artifact
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DOCS_PATH = REPO_ROOT / "docs" / "PERF.md"

BEGIN_MARK = "<!-- perf-trajectory:begin -->"
END_MARK = "<!-- perf-trajectory:end -->"


def _pct(value: float) -> str:
    return f"{value * 100.0:+.1f}%"


def _rate(value: float) -> str:
    return f"{value:,.0f}"


# ----------------------------------------------------------------------
# Per-baseline extractors: file stem -> list of (metric, value, note)
# ----------------------------------------------------------------------
def _extract_pr2(b: dict) -> list:
    rows = [
        ("engine speedup vs legacy (rearm_heavy)",
         f"{b['rearm_heavy']['speedup']:.2f}x", "bar: >= 2.0x"),
        ("engine speedup vs legacy (event_throughput)",
         f"{b['event_throughput']['speedup']:.2f}x", ""),
        ("engine events/s (event_throughput)",
         _rate(b["event_throughput"]["new"]["events_per_sec"]),
         "host-absolute"),
    ]
    return rows


def _extract_fleet_scaling(b: dict) -> list:
    workers = b["fleet_scaling"]["workers"]
    two = workers.get("2", {})
    # PR7 split the 2-worker cell into batched/unbatched; PR3 did not.
    if "batched" in two:
        speedup = two["batched"]["speedup"]
        note = "batched dispatch"
    else:
        speedup = two.get("speedup")
        note = ""
    rows = []
    if speedup is not None:
        rows.append(("fleet 2-worker speedup", f"{speedup:.2f}x", note))
    rows.append(("fleet aggregates identical",
                 str(b["fleet_scaling"]["aggregates_identical"]).lower(),
                 "determinism"))
    return rows


def _extract_pr5(b: dict) -> list:
    return [
        ("obs stack overhead (tracer+registry+monitor)",
         _pct(b["mar_session"]["overhead"]), "gate: <= +5%"),
        ("obs span pairs/s",
         _rate(b["span_ops"]["pairs_per_second"]), "host-absolute"),
    ]


def _extract_pr8(b: dict) -> list:
    tiers = b["city_scale"]["tiers"]
    return [
        (f"city-scale users/s ({tier})",
         _rate(tiers[tier]["users_per_sec"]), "host-absolute")
        for tier in sorted(tiers)
    ]


def _extract_pr9(b: dict) -> list:
    lint = b["lint_speed"]
    return [
        ("simlint files/s (serial)",
         f"{lint['serial']['files_per_sec']:.1f}", "host-absolute"),
        ("simlint findings identical serial vs parallel",
         str(lint["findings_identical"]).lower(), "determinism"),
    ]


def _extract_pr10(b: dict) -> list:
    prof = b["engine_profiler"]
    tel = b["fleet_telemetry"]
    flight = b["flight_recorder"]
    return [
        ("engine profiler overhead (counts)",
         _pct(prof["overhead"]), "gate: <= +5%"),
        ("engine profiler overhead (timed, stride-sampled)",
         _pct(prof["timed_overhead"]), "informational"),
        ("fleet telemetry bus overhead",
         _pct(tel["overhead"]), "gate: <= +5%"),
        ("flight recorder overhead (armed)",
         _pct(flight["overhead"]), "informational"),
    ]


#: file stem -> extractor over the file's ``benchmarks`` dict.
EXTRACTORS = {
    "BENCH_PR2": _extract_pr2,
    "BENCH_PR3": _extract_fleet_scaling,
    "BENCH_PR5": _extract_pr5,
    "BENCH_PR7": _extract_fleet_scaling,
    "BENCH_PR8": _extract_pr8,
    "BENCH_PR9": _extract_pr9,
    "BENCH_PR10": _extract_pr10,
}


def _stem_order(stem: str) -> int:
    match = re.search(r"(\d+)$", stem)
    return int(match.group(1)) if match else 0


def collect(root: pathlib.Path) -> list:
    """Read every committed baseline under ``root`` into table rows.

    Returns ``[{pr, bench, metric, value, note}, ...]``.  Missing files
    are fine (not every PR commits a baseline — there is no PR6);
    unreadable or unknown-shaped files are reported on stderr and
    skipped rather than failing the trajectory.
    """
    rows = []
    paths = sorted(root.glob("BENCH_*.json"),
                   key=lambda p: _stem_order(p.stem))
    for path in paths:
        if path.name.endswith(".fresh.json"):
            continue
        extract = EXTRACTORS.get(path.stem)
        if extract is None:
            print(f"trajectory: no extractor for {path.name}, skipped",
                  file=sys.stderr)
            continue
        try:
            doc = json.loads(path.read_text())
            extracted = extract(doc["benchmarks"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"trajectory: cannot read {path.name}: {exc!r}",
                  file=sys.stderr)
            continue
        for metric, value, note in extracted:
            rows.append({
                "pr": path.stem.replace("BENCH_", ""),
                "bench": doc.get("bench", "?"),
                "metric": metric,
                "value": value,
                "note": note,
            })
    return rows


def render_markdown(rows: list) -> str:
    lines = [
        "| PR | benchmark | metric | value | note |",
        "| -- | --------- | ------ | ----- | ---- |",
    ]
    for row in rows:
        lines.append("| {pr} | `{bench}` | {metric} | {value} | {note} |"
                     .format(**row))
    return "\n".join(lines)


def splice_docs(docs_path: pathlib.Path, table: str) -> bool:
    """Replace the marker-delimited table in PERF.md; True on change."""
    text = docs_path.read_text()
    begin = text.index(BEGIN_MARK)
    end = text.index(END_MARK)
    if end < begin:
        raise ValueError("perf-trajectory markers out of order")
    new = (text[:begin + len(BEGIN_MARK)] + "\n" + table + "\n"
           + text[end:])
    if new == text:
        return False
    docs_path.write_text(new)
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="directory holding the BENCH_*.json baselines")
    parser.add_argument("--write-docs", action="store_true",
                        help=f"rewrite the table in {DOCS_PATH.name} between "
                             "the perf-trajectory markers")
    parser.add_argument("--check-docs", action="store_true",
                        help="fail if the docs table is stale (CI mode)")
    parser.add_argument("--out", help="also write the rows as JSON (CI "
                        "artifact)")
    args = parser.parse_args(argv)

    rows = collect(pathlib.Path(args.root))
    if not rows:
        print("trajectory: no committed BENCH_*.json baselines found",
              file=sys.stderr)
        return 1
    table = render_markdown(rows)
    print(table)

    if args.out:
        payload = {"trajectory": rows}
        pathlib.Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.out}")

    if args.write_docs or args.check_docs:
        text = DOCS_PATH.read_text()
        if BEGIN_MARK not in text or END_MARK not in text:
            print(f"trajectory: markers missing from {DOCS_PATH}",
                  file=sys.stderr)
            return 1
        if args.check_docs:
            begin = text.index(BEGIN_MARK) + len(BEGIN_MARK)
            end = text.index(END_MARK)
            if text[begin:end].strip() != table.strip():
                print("trajectory: docs table is stale — run "
                      "`python benchmarks/perf/trajectory.py --write-docs`",
                      file=sys.stderr)
                return 1
            print("\ndocs table is current")
        else:
            changed = splice_docs(DOCS_PATH, table)
            print(f"\n{DOCS_PATH}: {'updated' if changed else 'already current'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
