"""A7 — extension: head-of-line blocking across transports (§V-C).

The paper's survey concludes "there does not seem to be an optimal
network protocol solution for Mobile AR".  This benchmark makes the
comparison concrete for the defining MAR pattern — a thin
latency-critical control stream multiplexed with a fat video stream
over one lossy uplink:

- **TCP**: one ordered byte stream; a lost video segment blocks every
  control message behind it (head-of-line blocking across streams);
- **QUIC-like**: separate streams; loss on the video stream never
  delays control, but control messages lost on the wire still pay a
  retransmission RTT (in-stream reliability);
- **MARTP**: classful — control is its own critical class *and* video
  is never retransmitted at all, so the control path sees neither kind
  of blocking.

Expected shape: control-message p95 latency orders MARTP ≤ QUIC < TCP,
with TCP's p95 inflated by multiple RTTs of blocking.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.analysis.stats import percentile
from repro.core.protocol import MartpReceiver, MartpSender, PathEndpoint
from repro.core.scheduler import PathState
from repro.core.traffic import Priority, StreamSpec, TrafficClass
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.quic import QuicConnection
from repro.transport.tcp import TcpConnection, TcpListener
from repro.transport.udp import UdpSocket

LOSS = 0.02
RTT = 0.030
UP_BPS = 8e6
CONTROL_BYTES = 200
CONTROL_INTERVAL = 0.05
VIDEO_CHUNK = 6000
VIDEO_INTERVAL = 0.033          # ~1.45 Mb/s video
DURATION = 30.0


def build_path(seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    # Loss only on the data direction, like A2, to isolate transport
    # behaviour from feedback loss.
    net.add_link("client", "server", UP_BPS, delay=RTT / 2, loss=LOSS,
                 queue=DropTailQueue(500))
    net.add_link("server", "client", 50e6, delay=RTT / 2)
    net.build_routes()
    return sim, net


def drive(sim, send_control, send_video):
    n_control = int(DURATION / CONTROL_INTERVAL)
    for i in range(n_control):
        sim.schedule(i * CONTROL_INTERVAL, send_control, i)
    n_video = int(DURATION / VIDEO_INTERVAL)
    for i in range(n_video):
        sim.schedule(i * VIDEO_INTERVAL, send_video)
    return n_control


def run_tcp(seed=151):
    sim, net = build_path(seed)
    delivered = {"bytes": 0}
    latencies = []
    boundaries = []   # (end_offset, sent_at, recorded?)

    def on_data(nbytes):
        delivered["bytes"] += nbytes
        while boundaries and boundaries[0][0] <= delivered["bytes"]:
            end, sent_at = boundaries.pop(0)
            latencies.append(sim.now - sent_at)

    TcpListener(net["server"], 80,
                on_accept=lambda c: setattr(c, "on_data", on_data))
    conn = TcpConnection(net["client"], 5000, "server", 80)
    offset = {"total": 0}

    def send_control(i):
        if conn.state != "established":
            return
        offset["total"] += CONTROL_BYTES
        boundaries.append((offset["total"], sim.now))
        conn.send(CONTROL_BYTES)

    def send_video():
        if conn.state != "established":
            return
        offset["total"] += VIDEO_CHUNK
        conn.send(VIDEO_CHUNK)

    conn.connect()
    n = drive(sim, send_control, send_video)
    sim.run(until=DURATION + 5.0)
    return latencies, n


def run_quic(seed=151):
    sim, net = build_path(seed)
    latencies = []
    sends = []      # (end_offset, sent_at)
    state = {"delivered": 0}

    def on_stream_data(stream_id, nbytes):
        if stream_id != 1:
            return
        state["delivered"] += nbytes
        while sends and sends[0][0] <= state["delivered"]:
            end, sent_at = sends.pop(0)
            latencies.append(sim.now - sent_at)

    QuicConnection(net["server"], 443, "client", 5000,
                   on_stream_data=on_stream_data)
    client = QuicConnection(net["client"], 5000, "server", 443)
    client.connect(resumed=True)
    offset = {"control": 0}

    def send_control(i):
        offset["control"] += CONTROL_BYTES
        sends.append((offset["control"], sim.now))
        client.send_stream(1, CONTROL_BYTES)

    def send_video():
        client.send_stream(2, VIDEO_CHUNK)

    n = drive(sim, send_control, send_video)
    sim.run(until=DURATION + 5.0)
    return latencies, n


def run_martp(seed=151):
    sim, net = build_path(seed)
    control = StreamSpec(
        stream_id=0, name="control", traffic_class=TrafficClass.CRITICAL,
        priority=Priority.HIGHEST, nominal_rate_bps=64_000,
        min_rate_bps=64_000, message_bytes=CONTROL_BYTES, deadline=2.0,
    )
    video = StreamSpec(
        stream_id=1, name="video", traffic_class=TrafficClass.FULL_BEST_EFFORT,
        priority=Priority.LOWEST, nominal_rate_bps=2e6,
        message_bytes=1200, deadline=0.2,
    )
    latencies = []
    MartpReceiver(net["server"], 7000, [control, video],
                  on_message=lambda sid, seq, lat: latencies.append(lat)
                  if sid == 0 else None)
    endpoint = PathEndpoint(state=PathState(name="wifi"),
                            socket=UdpSocket(net["client"], 6000),
                            dst="server", dst_port=7000)
    sender = MartpSender([endpoint], [control, video])
    sender.start()

    def send_control(i):
        sender.submit(0, CONTROL_BYTES)

    def send_video():
        remaining = VIDEO_CHUNK
        while remaining > 0:
            sender.submit(1, min(1200, remaining))
            remaining -= 1200

    n = drive(sim, send_control, send_video)
    sim.run(until=DURATION + 5.0)
    return latencies, n


def test_a7_transport_hol_comparison(benchmark, record_result):
    outcome = run_once(benchmark, lambda: {
        "TCP (single ordered stream)": run_tcp(),
        "QUIC-like (per-stream order)": run_quic(),
        "MARTP (classful)": run_martp(),
    })

    rows = []
    stats = {}
    for name, (latencies, n_sent) in outcome.items():
        p50 = percentile(latencies, 50)
        p95 = percentile(latencies, 95)
        p99 = percentile(latencies, 99)
        stats[name] = (p50, p95, p99, len(latencies) / n_sent)
        rows.append([
            name, format_time(p50), format_time(p95), format_time(p99),
            f"{len(latencies) / n_sent:.1%}",
        ])
    table = ascii_table(
        ["transport", "control p50", "p95", "p99", "delivered"],
        rows,
        title=(f"A7 — control-message latency multiplexed with video "
               f"({LOSS:.0%} loss, {RTT * 1000:.0f} ms RTT)"),
    )
    record_result("A7_transport_comparison", table)

    tcp = stats["TCP (single ordered stream)"]
    quic = stats["QUIC-like (per-stream order)"]
    martp = stats["MARTP (classful)"]
    one_way = RTT / 2
    # Everyone delivers essentially everything (all are reliable here).
    for name, s in stats.items():
        assert s[3] > 0.97, name
    # Medians are all near the propagation floor.
    assert tcp[0] < one_way * 4
    # The tails separate: TCP's p95 suffers cross-stream HOL blocking.
    assert tcp[1] > quic[1] * 1.5
    assert tcp[1] > martp[1] * 1.5
    # MARTP's tail is no worse than QUIC's (nothing ever blocks control).
    assert martp[1] <= quic[1] * 1.25
