"""A6 — extension: cache/prefetch effect on P_local+externalDB (§III-B).

"Caching and prefetching mechanisms can reduce the network overhead of
P_local+externalDB."  A pedestrian repeats a commute through
geo-anchored content; three cache policies produce three hit ratios
(the x parameter), which feed straight into the execution-delay
equation.

Expected shape: Markov prediction lifts the hit ratio well above
demand-only caching, at a tiny speculative-byte cost.  Blanket
neighbour prefetch, by contrast, *pollutes* the byte-bounded cache —
speculative objects evict useful ones and the hit ratio lands *below*
demand-only (it only catches up when the cache is large enough to hold
everything).  The resulting hit ratios feed the x parameter of
P_local+externalDB and decide whether the orientation archetype meets
its deadline on a smartphone.
"""

from conftest import run_once

from repro.analysis.report import ascii_table, format_time
from repro.mar.application import APP_ARCHETYPES
from repro.mar.compute import ExecutionBudget, local_with_db_delay
from repro.mar.devices import SMARTPHONE
from repro.mar.prefetch import GridWorld, PrefetchingCache
from repro.wireless.mobility import Waypoint

ORIENTATION = APP_ARCHETYPES["orientation"]
NET = ExecutionBudget(bandwidth_up_bps=10e6, bandwidth_down_bps=25e6, latency=0.030)
CACHE_BYTES = 4_000_000


def commute(repeats=8):
    path = []
    t = 0.0
    for _ in range(repeats):
        for x in range(0, 1500, 50):
            path.append(Waypoint(t, float(x), 100.0))
            t += 1.0
        for x in range(1500, 0, -50):
            path.append(Waypoint(t, float(x), 100.0))
            t += 1.0
    return path


def run_policies():
    world = GridWorld(cell_size=150.0, objects_per_cell=5,
                      object_bytes=100_000, seed=3)
    path = commute()
    out = {}
    for policy in ("none", "neighbours", "markov"):
        cache = PrefetchingCache(world, CACHE_BYTES, policy=policy)
        hit = cache.run_trace(path)
        out[policy] = (hit, cache.prefetched_bytes)
    return out


def test_a6_prefetch_policies(benchmark, record_result):
    outcome = run_once(benchmark, run_policies)

    rows = []
    for policy, (hit, prefetched) in outcome.items():
        delay = local_with_db_delay(SMARTPHONE, ORIENTATION, NET,
                                    cache_hit_ratio=hit)
        rows.append([
            policy,
            f"{hit:.1%}",
            f"{prefetched / 1e6:.1f} MB",
            format_time(delay),
            "yes" if delay < ORIENTATION.deadline else "no",
        ])
    table = ascii_table(
        ["policy", "hit ratio (x)", "speculative bytes",
         "P_local+externalDB", "meets deadline"],
        rows,
        title="A6 — prefetching and the x parameter (commuter, orientation app)",
    )
    record_result("A6_prefetch", table)

    hit_none = outcome["none"][0]
    hit_neigh = outcome["neighbours"][0]
    hit_markov = outcome["markov"][0]
    # Markov prediction lifts the hit ratio substantially.
    assert hit_markov > hit_none + 0.1
    # Blanket neighbour prefetch pollutes a byte-bounded cache.
    assert hit_neigh < hit_none
    # And spends orders of magnitude more speculative bytes.
    assert outcome["markov"][1] < outcome["neighbours"][1] / 5
    # The delay equation orders with the hit ratio.
    d_none = local_with_db_delay(SMARTPHONE, ORIENTATION, NET, hit_none)
    d_markov = local_with_db_delay(SMARTPHONE, ORIENTATION, NET, hit_markov)
    assert d_markov < d_none
