"""E5 — Section VI-D: the three multipath usage policies.

1. "WiFi all the time, 4G for handover" — LTE only bridges brief
   handover gaps (cheapest, but long WiFi outages go dark);
2. "WiFi most of the time, 4G when WiFi is not available" — LTE covers
   every outage (near-100 % service, modest LTE usage);
3. "WiFi and 4G" — both simultaneously (best latency/quality, most
   metered bytes).

A WiFi availability pattern with one short handover gap (1 s) and one
long outage (8 s) plays against all three policies.

Expected shape: metered-byte fraction orders 1 < 2 < 3; delivery during
the long outage orders 1 < 2 <= 3; overall MOS orders 1 <= 2 <= 3.
"""

from conftest import run_once

from repro.analysis.report import ascii_table
from repro.core.metrics import mos_score
from repro.core.scheduler import MultipathPolicy
from repro.core.session import OffloadSession, ScenarioBuilder

DURATION = 60.0
#: (start, end) of WiFi outages: one long outage, one handover blip.
OUTAGES = [(20.0, 28.0), (42.0, 43.0)]
#: Policy 1 bridges gaps up to this long on LTE.
HANDOVER_BRIDGE = 2.0


def run_policy(policy, seed=71):
    scenario = ScenarioBuilder(seed=seed).multipath()
    session = OffloadSession(scenario, policy=policy)
    scheduler = session.sender.scheduler

    for start, end in OUTAGES:
        scenario.sim.schedule(start, scheduler.set_usable, "wifi", False)
        scenario.sim.schedule(end, scheduler.set_usable, "wifi", True)
        if policy is MultipathPolicy.WIFI_ONLY_HANDOVER and end - start > HANDOVER_BRIDGE:
            # Policy 1 stops paying for LTE once it is clearly not a
            # handover: LTE bridges only the first seconds of an outage.
            scenario.sim.schedule(start + HANDOVER_BRIDGE,
                                  scheduler.set_usable, "lte", False)
            scenario.sim.schedule(end, scheduler.set_usable, "lte", True)

    report = session.run(DURATION)
    return session, report


def test_e5_multipath_policies(benchmark, record_result):
    policies = [
        MultipathPolicy.WIFI_ONLY_HANDOVER,
        MultipathPolicy.WIFI_PREFERRED,
        MultipathPolicy.AGGREGATE,
    ]
    outcome = run_once(benchmark, lambda: {p: run_policy(p) for p in policies})

    rows = []
    stats = {}
    for policy, (session, report) in outcome.items():
        metered = session.sender.scheduler.metered_fraction()
        ref = report.per_class[2]
        stats[policy] = (metered, ref.delivery_ratio, mos_score(report))
        rows.append([
            policy.value,
            f"{metered:.1%}",
            f"{ref.delivery_ratio:.1%}",
            f"{ref.in_time_ratio:.1%}",
            f"{report.mean_video_quality:.2f}",
            f"{mos_score(report):.2f}",
        ])
    table = ascii_table(
        ["policy", "metered bytes", "ref delivery", "ref in-time",
         "video quality", "MOS"],
        rows,
        title="Section VI-D — multipath policies under WiFi outages",
    )
    record_result("E5_multipath_policies", table)

    m1 = stats[MultipathPolicy.WIFI_ONLY_HANDOVER]
    m2 = stats[MultipathPolicy.WIFI_PREFERRED]
    m3 = stats[MultipathPolicy.AGGREGATE]
    # Metered usage: handover-only < wifi-preferred < aggregate.
    assert m1[0] < m2[0] < m3[0]
    # Service continuity: policy 1 loses data in the long outage.
    assert m1[1] < m2[1]
    # Aggregate delivers at least as well as wifi-preferred.
    assert m3[1] >= m2[1] - 0.02
    # QoE ordering.
    assert m1[2] <= m2[2] + 0.05
    assert m2[2] <= m3[2] + 0.1
