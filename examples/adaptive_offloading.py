#!/usr/bin/env python3
"""Adaptive offloading end to end: vision-driven triggers plus a
decision engine that switches strategy when the network turns.

Part 1 — Glimpse's real trigger rule: an AR pipeline tracks synthetic
camera frames under slow, then fast, camera motion; the adaptive
strategy offloads only when tracking actually degrades, and the trigger
rate follows the motion.

Part 2 — live strategy switching: a session starts on a 12 ms-RTT WiFi
path; at t = 4 s the path degrades to 300 ms.  The decision engine's
ping-fed RTT estimate crosses the feasibility line and the strategy
flips mid-session.  The paper's §V-C verdict — no static choice is
right — played out at runtime.
"""

import numpy as np

from repro.analysis.report import ascii_table, format_time
from repro.mar.adaptive import AdaptiveExecutor, AdaptiveTrackingOffload
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.vision.pipeline import ArPipeline
from repro.vision.synthetic import make_scene, random_homography, warp_image


def vision_driven_triggers() -> None:
    scene = make_scene(240, 320, seed=12)
    rng = np.random.default_rng(0)
    rows = []
    for label, translation in (("slow pan", 1.0), ("walking", 8.0),
                               ("fast turn", 30.0)):
        strategy = AdaptiveTrackingOffload(ArPipeline(scene))
        frame = scene
        for _ in range(15):
            h = random_homography(seed=int(rng.integers(1e6)),
                                  max_translation=translation,
                                  max_rotation=translation / 800.0)
            frame = warp_image(frame, h)
            strategy.observe_frame(frame)
        rows.append([label, f"{translation:.0f} px/frame",
                     f"{strategy.trigger_rate:.0%}",
                     f"{strategy.triggers}/{strategy.triggers + strategy.tracked}"])
    print(ascii_table(
        ["camera motion", "magnitude", "offload rate", "triggers"],
        rows,
        title="Part 1 — Glimpse-style triggers follow actual tracking quality",
    ))


def live_strategy_switching() -> None:
    sim = Simulator(seed=9)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 80e6, 20e6, delay=0.006)
    net.build_routes()

    executor = AdaptiveExecutor(net, "client", "server",
                                APP_ARCHETYPES["orientation"], SMARTPHONE,
                                decide_interval=0.5)
    links = net.path_links("client", "server") + net.path_links("server", "client")

    def degrade():
        for link in links:
            link.delay = 0.150

    sim.schedule(4.0, degrade)
    result = executor.run(n_frames=300)

    print("\nPart 2 — live switching when the path degrades at t = 4 s")
    print(f"  strategies used, in order: {' -> '.join(executor.strategies_used())}")
    print(f"  final RTT estimate:        {format_time(executor.engine.rtt_estimate)}")
    print(f"  frames completed:          {result.frames_completed}/300")
    print(f"  mean frame latency:        {format_time(result.mean_latency)}")
    timeline = executor.strategy_timeline
    switches = [
        (t, name) for (t, name), (_, prev) in zip(timeline[1:], timeline)
        if name != prev
    ]
    for t, name in switches:
        print(f"  t={t:5.1f} s: switched to {name}")


def main() -> None:
    vision_driven_triggers()
    live_strategy_switching()


if __name__ == "__main__":
    main()
