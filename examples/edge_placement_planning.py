#!/usr/bin/env python3
"""Edge-datacenter planning for a metro area (Section VI-F).

Given a city of MAR users with per-application latency budgets and a
grid of candidate sites, find the minimum set of edge datacenters such
that every user's offloading deadline holds, then assign users and
report loading.  Compares the greedy, local-search and LP-rounding
solvers against the LP lower bound across AR application classes.
"""

from repro.analysis.report import ascii_table, format_time
from repro.edge import (
    CityTopology,
    PlacementProblem,
    assign_users,
    solve_greedy,
    solve_local_search,
    solve_lp_rounding,
)

#: Application classes and the one-way latency budget each leaves the
#: network after compute and serialization (derived per Section III).
APP_CLASSES = [
    ("browser overlays (100 ms budget)", 0.012),
    ("interactive AR (75 ms budget)", 0.008),
    ("AR gaming (50 ms budget)", 0.006),
    ("holy-grail AR (7 ms e2e)", 0.0045),
]


def main() -> None:
    rows = []
    for label, budget in APP_CLASSES:
        city = CityTopology.random_city(
            n_users=200, n_sites=36, latency_budget=budget,
            budget_jitter=0.1, seed=17,
        )
        if not city.feasible():
            rows.append([label, format_time(budget), "-", "-", "-", "infeasible"])
            continue
        problem = PlacementProblem(city)
        greedy = solve_greedy(problem)
        local = solve_local_search(problem)
        lp = solve_lp_rounding(problem)
        best = min((greedy, local, lp), key=lambda r: r.n_datacenters)
        assignment = assign_users(city, best.chosen)
        rows.append([
            label,
            format_time(budget),
            f"{greedy.n_datacenters} / {local.n_datacenters} / {lp.n_datacenters}",
            f"{lp.lower_bound:.1f}",
            f"{assignment.mean_latency() * 1e3:.2f} ms",
            ", ".join(best.site_names(problem)[:6])
            + ("..." if best.n_datacenters > 6 else ""),
        ])

    print(ascii_table(
        ["application class", "latency budget", "|C| greedy/local/LP",
         "LP bound", "mean user latency", "sites (best solution)"],
        rows,
        title="Edge datacenter placement for a 30x30 km metro (200 users, 36 sites)",
    ))
    print("\nReading: tighter AR deadlines multiply the infrastructure bill —")
    print("the 'holy grail' class needs several times the datacenters of a")
    print("browser-overlay deployment, which is the economics behind VI-F.")


if __name__ == "__main__":
    main()
