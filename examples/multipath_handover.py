#!/usr/bin/env python3
"""Multipath MAR across a city walk: WiFi availability comes from a
coverage/handover model, LTE fills the gaps per the Section VI-D
policies.

A random-waypoint pedestrian crosses an urban AP deployment; the
resulting WiFi usability trace (closed APs, association delays,
handover gaps) drives the MARTP scheduler's view of the WiFi path.
Each policy runs over the same 3-minute excerpt of the walk.
"""

from repro.analysis.report import ascii_table
from repro.core import MultipathPolicy, OffloadSession, ScenarioBuilder, mos_score
from repro.wireless.handover import CoverageMap
from repro.wireless.mobility import RandomWaypoint

EXCERPT = 180  # seconds of the walk to replay


def wifi_usability_trace(seed: int = 15):
    """Per-second WiFi usability along a city walk."""
    coverage = CoverageMap.urban(seed=seed)
    walk = RandomWaypoint(seed=seed).trajectory(EXCERPT, tick=1.0)
    trace = coverage.connectivity(walk)
    return [tick.usable for tick in trace.ticks]


HANDOVER_BRIDGE = 3  # seconds of LTE bridging policy 1 tolerates


def run_policy(policy: MultipathPolicy, usable_per_second):
    scenario = ScenarioBuilder(seed=13).multipath()
    session = OffloadSession(scenario, policy=policy)
    scheduler = session.sender.scheduler
    previous = True
    outage_started = None
    for second, usable in enumerate(usable_per_second):
        if usable != previous:
            scenario.sim.schedule(float(second), scheduler.set_usable,
                                  "wifi", usable)
            if not usable:
                outage_started = second
            elif (policy is MultipathPolicy.WIFI_ONLY_HANDOVER
                  and outage_started is not None):
                scenario.sim.schedule(float(second), scheduler.set_usable,
                                      "lte", True)
            previous = usable
        # Policy 1: LTE only bridges the first seconds of an outage.
        if (policy is MultipathPolicy.WIFI_ONLY_HANDOVER
                and outage_started is not None and not usable
                and second - outage_started == HANDOVER_BRIDGE):
            scenario.sim.schedule(float(second), scheduler.set_usable,
                                  "lte", False)
    report = session.run(float(len(usable_per_second)))
    return session, report


def main() -> None:
    usable = wifi_usability_trace()
    coverage_fraction = sum(usable) / len(usable)
    print(f"Walk excerpt: {len(usable)} s, WiFi usable {coverage_fraction:.0%} "
          f"of the time ({sum(1 for a, b in zip(usable, usable[1:]) if a != b)} "
          "transitions)\n")

    rows = []
    for policy in MultipathPolicy:
        session, report = run_policy(policy, usable)
        ref = report.per_class[2]
        rows.append([
            policy.value,
            f"{session.sender.scheduler.metered_fraction():.1%}",
            f"{ref.delivery_ratio:.1%}",
            f"{report.mean_video_quality:.0%}",
            f"{mos_score(report):.2f}",
        ])
    print(ascii_table(
        ["policy", "LTE (metered) bytes", "ref-frame delivery",
         "video quality", "MOS"],
        rows,
        title="Section VI-D multipath policies over a real coverage trace",
    ))
    print("\nReading: policy 1 minimizes mobile-data cost, policy 3 maximizes "
          "quality;\npolicy 2 is the compromise the paper expects most users "
          "to pick.")


if __name__ == "__main__":
    main()
