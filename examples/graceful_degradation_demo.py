#!/usr/bin/env python3
"""Watch MARTP degrade gracefully while TCP saws its window (Figure 4).

The uplink steps 12 -> 4 -> 1.2 Mb/s.  MARTP sheds interframes first,
then sensor samples, then reference-frame quality — connection metadata
is never touched.  A TCP bulk flow on an identical path shows the
congestion-window sawtooth the paper contrasts this against.
"""

from repro.analysis.report import Figure, ascii_table, format_rate
from repro.analysis.stats import timeseries_bins
from repro.core import OffloadSession, ScenarioBuilder
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.queues import DropTailQueue
from repro.transport.tcp import TcpConnection, TcpListener

PHASES = [(0.0, 12e6), (15.0, 4e6), (30.0, 1.2e6)]
DURATION = 45.0


def run_martp():
    scenario = ScenarioBuilder(seed=41).single_path(rtt=0.020, up_bps=PHASES[0][1])
    uplink = scenario.net.path_links("client", "server")[0]
    for start, rate in PHASES[1:]:
        scenario.sim.schedule(start, lambda r=rate: setattr(uplink, "rate_bps", r))
    session = OffloadSession(scenario)
    report = session.run(DURATION)
    return session, report


def run_tcp():
    sim = Simulator(seed=41)
    net = Network(sim)
    net.add_host("client")
    net.add_host("server")
    net.add_duplex("server", "client", 50e6, PHASES[0][1], delay=0.010,
                   queue_up=DropTailQueue(300))
    net.build_routes()
    uplink = net.path_links("client", "server")[0]
    for start, rate in PHASES[1:]:
        sim.schedule(start, lambda r=rate: setattr(uplink, "rate_bps", r))
    TcpListener(net["server"], 81)
    conn = TcpConnection(net["client"], 6000, "server", 81)
    conn.on_established = conn.send_forever
    conn.connect()
    sim.run(until=DURATION)
    return conn


def main() -> None:
    session, report = run_martp()
    tcp = run_tcp()

    fig = Figure(
        "TCP cwnd vs MARTP per-class allocations (uplink steps at 15 s and 30 s)",
        x_label="time (s)", y_label="fraction of nominal",
    )
    cwnd_max = max(c for _, c in tcp.cwnd_trace)
    fig.add_series("tcp cwnd", timeseries_bins(
        [(t, c / cwnd_max) for t, c in tcp.cwnd_trace], 0.5))
    for sid, label in ((3, "interframes"), (2, "ref frames"), (1, "sensors")):
        nominal = session.sender.degradation.spec(sid).nominal_rate_bps
        points = [(t, rates[sid] / nominal)
                  for t, rates in session.sender.offered_rate_trace()]
        fig.add_series(label, timeseries_bins(points, 0.5))
    print(fig.render())
    print()

    rows = [
        [r.name, f"{r.delivery_ratio:.1%}", f"{r.in_time_ratio:.1%}",
         format_rate(r.achieved_rate_bps)]
        for r in report.per_class.values()
    ]
    print(ascii_table(
        ["stream", "delivered", "in time", "achieved rate"],
        rows,
        title="Outcome after two congestion episodes",
    ))
    print(f"\nmetadata intact through both episodes: {report.critical_intact}")
    print(f"video degraded to {report.mean_video_quality:.0%} of nominal — "
          "degraded but never interrupted.")


if __name__ == "__main__":
    main()
