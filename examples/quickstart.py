#!/usr/bin/env python3
"""Quickstart: run an MAR offloading session over MARTP in ~30 lines.

Builds an emulated WiFi path to a cloud server, runs the four-stream
MAR workload (connection metadata, sensor data, video reference frames,
video interframes) through the MARTP protocol for 15 simulated seconds,
and prints the per-class quality-of-service report.
"""

from repro.analysis.report import ascii_table, format_rate, format_time
from repro.core import OffloadSession, ScenarioBuilder, mos_score


def main() -> None:
    # 1. A network scenario: cloud server over WiFi, 36 ms RTT
    #    (Table II's "cloud server / WiFi" row), 12 Mb/s uplink.
    scenario = ScenarioBuilder(seed=7).single_path(
        rtt=0.036, down_bps=50e6, up_bps=12e6,
    )

    # 2. An offloading session: the Figure 4 stream set over MARTP.
    session = OffloadSession(scenario)

    # 3. Run 15 seconds of simulated traffic.
    report = session.run(duration=15.0)

    # 4. Inspect the outcome.
    rows = [
        [
            r.name,
            r.traffic_class.value,
            f"P{int(r.priority)}",
            f"{r.delivery_ratio:.1%}",
            f"{r.in_time_ratio:.1%}",
            format_time(r.mean_latency),
        ]
        for r in report.per_class.values()
    ]
    print(ascii_table(
        ["stream", "class", "priority", "delivered", "in time", "mean latency"],
        rows,
        title="MARTP session over cloud-WiFi (36 ms RTT, 12 Mb/s uplink)",
    ))
    print()
    print(f"protocol budget converged to {format_rate(session.sender.budget_bps)}")
    print(f"video quality sustained at  {report.mean_video_quality:.0%}")
    print(f"critical data intact:       {report.critical_intact}")
    print(f"session MOS estimate:       {mos_score(report):.2f} / 5")


if __name__ == "__main__":
    main()
