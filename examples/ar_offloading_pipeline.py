#!/usr/bin/env python3
"""End-to-end AR pipeline: real (synthetic-scene) computer vision plus
simulated offloading, comparing the strategies the paper surveys.

What happens here:

1. A synthetic textured scene acts as the "reference image" a MAR
   browser anchors virtual content to.
2. A simulated camera produces frames by warping the scene with small
   random homographies (ground truth known).
3. The vision pipeline — Harris corners, binary descriptors, matching,
   RANSAC homography, Glimpse-style tracking — actually runs on every
   frame, producing per-stage compute costs in megacycles.
4. Those costs drive offloading sessions over an emulated network for
   each strategy: local-only, full offload, CloudRidAR's feature split,
   and Glimpse's tracking split.
"""

import numpy as np

from repro.analysis.report import ascii_table, format_time
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import CLOUD, SMART_GLASSES, SMARTPHONE
from repro.mar.offload import (
    FeatureOffload,
    FullOffload,
    LocalOnly,
    OffloadExecutor,
    TrackingOffload,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.vision import ArPipeline, make_scene, random_homography, warp_image


def measure_vision_costs(n_frames: int = 12) -> dict:
    """Run the real pipeline on synthetic frames; report stage costs."""
    scene = make_scene(240, 320, seed=3)
    pipeline = ArPipeline(scene, max_corners=250, seed=1)

    recog_costs, track_costs, recognized = [], [], 0
    for i in range(n_frames):
        frame = warp_image(scene, random_homography(seed=100 + i))
        result = pipeline.process_frame(frame)
        recog_costs.append(result.costs.total)
        if result.recognized:
            recognized += 1
            _, costs = pipeline.track_frame(frame)
            track_costs.append(costs.total)
    return {
        "recognition_mc": float(np.mean(recog_costs)),
        "tracking_mc": float(np.mean(track_costs)) if track_costs else 0.0,
        "recognition_rate": recognized / n_frames,
    }


def run_strategies(app, device, rtt: float = 0.036):
    strategies = [
        LocalOnly(),
        FullOffload(),
        FeatureOffload(),
        TrackingOffload(trigger_interval=10),
    ]
    rows = []
    for strategy in strategies:
        sim = Simulator(seed=11)
        net = Network(sim)
        net.add_host("client")
        net.add_host("server")
        net.add_duplex("server", "client", 80e6, 20e6, delay=rtt / 2)
        net.build_routes()
        executor = OffloadExecutor(net, "client", "server", app, strategy,
                                   device, server_device=CLOUD)
        result = executor.run(n_frames=150)
        rows.append([
            strategy.name,
            format_time(result.mean_latency),
            format_time(result.percentile(95)),
            f"{result.deadline_hit_rate:.0%}",
            f"{strategy.mean_uplink_bps(app) / 1e6:.2f} Mb/s",
        ])
    return rows


def main() -> None:
    print("== Stage costs from the real vision pipeline ==")
    costs = measure_vision_costs()
    print(f"  full recognition: {costs['recognition_mc']:.1f} Mcycles/frame")
    print(f"  Glimpse tracking: {costs['tracking_mc']:.1f} Mcycles/frame "
          f"({costs['recognition_mc'] / max(costs['tracking_mc'], 1e-9):.0f}x cheaper)")
    print(f"  recognition success on warped frames: {costs['recognition_rate']:.0%}")
    print()

    app = APP_ARCHETYPES["gaming"]
    for device in (SMART_GLASSES, SMARTPHONE):
        print(f"== Offloading strategies: {app.name!r} on {device.name} "
              f"(cloud over 36 ms WiFi) ==")
        rows = run_strategies(app, device)
        print(ascii_table(
            ["strategy", "frame latency", "p95", "deadline hit", "uplink load"],
            rows,
        ))
        print()


if __name__ == "__main__":
    main()
