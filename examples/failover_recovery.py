#!/usr/bin/env python3
"""Crash, blackout, recover: resilient offloading end to end.

Builds a client with a primary edge server, a backup edge server and a
cloud fallback, then breaks things on purpose:

- t=5 s  the primary edge server crashes (restarts at t=15 s),
- t=10 s the radio link blacks out for 3 s — *nothing* is reachable.

The ResilientOffloadExecutor detects the crash via heartbeats, fails
over to the backup, trips its circuit breaker to local-only compute
during the blackout, and resumes offloading once connectivity returns.
Every frame is served in every phase — the Section VI-B requirement
that an AR app "function with degraded performance even if no network
connectivity is available".
"""

from repro.analysis.report import format_time, resilience_table
from repro.core import ScenarioBuilder
from repro.mar.application import APP_ARCHETYPES
from repro.mar.devices import SMARTPHONE
from repro.mar.offload import FullOffload, ResilientOffloadExecutor
from repro.simnet.faults import FaultInjector, FaultPlan

APP = APP_ARCHETYPES["orientation"]
DURATION = 25.0


def main() -> None:
    # 1. Topology: client -- AP -- {edge0 (primary), edge1 (backup), cloud}.
    scenario = ScenarioBuilder(seed=42).edge_failover()

    # 2. A declarative fault plan, scheduled on the simulator.
    radio = [link for link in scenario.net.links if "client" in link.name]
    FaultInjector(scenario.net).apply(
        FaultPlan()
        .server_crash(5.0, 10.0, [scenario.server])   # primary dies for 10 s
        .blackout(10.0, 3.0, radio)                   # then the radio goes dark
    )

    # 3. The resilient executor: heartbeats, retries, failover, breaker.
    executor = ResilientOffloadExecutor(
        scenario.net, "client", scenario.all_servers, APP,
        FullOffload(), SMARTPHONE,
    )
    result = executor.run(n_frames=int(DURATION * APP.fps), settle=3.0)
    report = executor.resilience_report()

    # 4. What happened.
    print(resilience_table([("crash+blackout", report)],
                           title="Resilience metrics"))
    print()
    print(f"frames served:     {result.frames_completed}/{result.frames_sent}")
    print(f"detection time:    {format_time(report.mean_detection_time)}")
    print(f"MTTR:              {format_time(report.mttr)}")
    print(f"availability:      {report.availability:.1%}")
    print()
    print("service-mode timeline:")
    for t, mode in executor.metrics.mode_timeline:
        print(f"  t={t:6.2f}s  {mode.value}")


if __name__ == "__main__":
    main()
