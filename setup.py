"""Setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` with pip configured for legacy installs) fall back
to ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
